"""The device catalogue: Virtex and its fabric-compatible successors.

The paper: "The array sizes for Virtex range from 16x24 CLBs to 64x96
CLBs."  These are the real Virtex family CLB arrays (rows x columns) from
the Programmable Logic Data Book the paper cites.

Section 5 portability, realised: "it can be extended to support future
Xilinx architectures.  The API would not need to change."  Spartan-II —
released shortly after the paper — reused the Virtex routing fabric at
smaller array sizes, so supporting it here is exactly the catalogue
extension the paper predicts: new parts, same architecture class, zero
router changes (see ``tests/test_portability.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DevicePart", "PARTS", "part", "part_names", "family_parts"]


@dataclass(frozen=True, slots=True)
class DevicePart:
    """One catalogue member (Virtex or a fabric-compatible family)."""

    name: str
    rows: int  #: CLB rows
    cols: int  #: CLB columns
    family: str = "Virtex"

    @property
    def clbs(self) -> int:
        return self.rows * self.cols


PARTS: dict[str, DevicePart] = {
    p.name: p
    for p in (
        DevicePart("XCV50", 16, 24),
        DevicePart("XCV100", 20, 30),
        DevicePart("XCV150", 24, 36),
        DevicePart("XCV200", 28, 42),
        DevicePart("XCV300", 32, 48),
        DevicePart("XCV400", 40, 60),
        DevicePart("XCV600", 48, 72),
        DevicePart("XCV800", 56, 84),
        DevicePart("XCV1000", 64, 96),
        # Spartan-II: the Virtex fabric at commodity sizes (Section 5)
        DevicePart("XC2S15", 8, 12, family="Spartan-II"),
        DevicePart("XC2S30", 12, 18, family="Spartan-II"),
        DevicePart("XC2S50", 16, 24, family="Spartan-II"),
        DevicePart("XC2S100", 20, 30, family="Spartan-II"),
        DevicePart("XC2S150", 24, 36, family="Spartan-II"),
        DevicePart("XC2S200", 28, 42, family="Spartan-II"),
    )
}


def part(name: str) -> DevicePart:
    """Look up a family member by name (e.g. ``"XCV50"``)."""
    try:
        return PARTS[name]
    except KeyError:
        raise KeyError(
            f"unknown Virtex part {name!r}; known parts: {', '.join(PARTS)}"
        ) from None


def part_names(family: str | None = "Virtex") -> tuple[str, ...]:
    """Catalogue part names, smallest array first.

    Defaults to the Virtex family (what the paper covers); pass a family
    name for others, or ``None`` for everything.
    """
    return tuple(
        n for n, p in PARTS.items() if family is None or p.family == family
    )


def family_parts(family: str) -> tuple[DevicePart, ...]:
    """All parts of one family."""
    return tuple(p for p in PARTS.values() if p.family == family)
