"""The Virtex architecture description class.

The paper (Section 3): "There is a Java class in which all of the
architecture information is held.  In this class each wire is defined by a
unique integer.  Also in this class the possible template values are
defined, along with which template value each wire can be classified
under. ... Also in this Java class is a description of each wire,
including how long it is, its direction, which wires can drive it, and
which wires it can drive."

:class:`VirtexArch` is that class.  It combines

* the per-tile wire **name space** (:mod:`repro.arch.wires`),
* the **template classification** (:mod:`repro.arch.templates`),
* the name-level **connectivity tables** (:mod:`repro.arch.connectivity`),
* the **device geometry** (rows x cols of CLBs, :mod:`repro.arch.devices`),

and resolves tile-relative wire *names* to device-global canonical wire
*instances* (plain ints), handling the aliasing where one physical wire
has different names at its two ends (``SingleEast[5]`` at ``(5,7)`` is
``SingleWest[5]`` at ``(5,8)``).

Canonical instance space
------------------------
Each tile *owns* ``N_OWNED = 120`` wires: its 42 local resources, its 24
east-going and 24 north-going singles, its 12 east-going and 12
north-going hexes, and 3 + 3 IOB pad wires (valid on perimeter tiles
only).  South/west names alias the neighbouring tile's north/east wires.
Long lines are owned per row/column, global nets per device.  A
canonical id is::

    tile wires : (row * cols + col) * N_OWNED + slot
    LONG_H     : long_h_base + row * 12 + index
    LONG_V     : long_v_base + col * 12 + index
    GCLK       : gclk_base + index

Routers are written against this class only, which is what gives the API
the portability property of the paper's Section 5.
"""

from __future__ import annotations

from . import connectivity, devices, templates, wires
from .wires import Direction, WireClass

__all__ = ["VirtexArch", "N_OWNED"]

# Owned-slot layout within one tile.
_LOCAL_COUNT = 42  # OUT + slice outs + slice ins + ctl: names 0..41 == slots
_SLOT_SINGLE_E = 42
_SLOT_SINGLE_N = 66
_SLOT_HEX_E = 90
_SLOT_HEX_N = 102
_SLOT_IOB_IN = 114
_SLOT_IOB_OUT = 117
N_OWNED = 120

_NS = wires.N_SINGLES_PER_DIR
_NH = wires.N_HEXES_PER_DIR
_NL = wires.N_LONGS

# Name-id bases, resolved once for fast arithmetic in hot paths.
_SE0 = wires.SINGLE_E[0]
_SN0 = wires.SINGLE_N[0]
_SS0 = wires.SINGLE_S[0]
_SW0 = wires.SINGLE_W[0]
_HE0 = wires.HEX_E[0]
_HN0 = wires.HEX_N[0]
_HS0 = wires.HEX_S[0]
_HW0 = wires.HEX_W[0]
_LH0 = wires.LONG_H[0]
_LV0 = wires.LONG_V[0]
_GC0 = wires.GCLK[0]
_DW0 = wires.DIRECT_W_OUT[0]
_II0 = wires.IOB_IN[0]
_IO0 = wires.IOB_OUT[0]
_N_NAMES = wires.N_NAMES


class VirtexArch:
    """Architecture description for one Virtex family member.

    Parameters
    ----------
    part:
        A part name (``"XCV50"``) or a :class:`~repro.arch.devices.DevicePart`.
    """

    def __init__(self, part: str | devices.DevicePart = "XCV50") -> None:
        if isinstance(part, str):
            part = devices.part(part)
        self.part = part
        self.rows: int = part.rows
        self.cols: int = part.cols
        self.n_tiles = self.rows * self.cols
        self._tile_wires_end = self.n_tiles * N_OWNED
        self._long_h_base = self._tile_wires_end
        self._long_v_base = self._long_h_base + self.rows * _NL
        self._gclk_base = self._long_v_base + self.cols * _NL
        #: total size of the canonical wire-instance space
        self.n_wires = self._gclk_base + wires.N_GCLK
        #: memoized ``primary_name(canon)[:2]`` (see :meth:`tile_coords`)
        self._tile_coords_cache: dict[int, tuple[int, int]] = {}

    # -- basic geometry ----------------------------------------------------

    def in_bounds(self, row: int, col: int) -> bool:
        """True if ``(row, col)`` is a CLB of this device."""
        return 0 <= row < self.rows and 0 <= col < self.cols

    def is_perimeter(self, row: int, col: int) -> bool:
        """True if the tile borders the IOB ring (device perimeter)."""
        return self.in_bounds(row, col) and (
            row in (0, self.rows - 1) or col in (0, self.cols - 1)
        )

    def tiles(self):
        """Iterate over all ``(row, col)`` CLB coordinates."""
        for r in range(self.rows):
            for c in range(self.cols):
                yield r, c

    # -- static wire metadata (delegates to the shared tables) --------------

    @staticmethod
    def wire_info(name: int) -> wires.WireInfo:
        return wires.wire_info(name)

    @staticmethod
    def wire_name(name: int) -> str:
        return wires.wire_name(name)

    @staticmethod
    def template_value(name: int) -> templates.TemplateValue:
        return templates.template_value_of(name)

    @staticmethod
    def drives(name: int) -> tuple[int, ...]:
        """Name-level fan-out of a wire name (same-tile PIP targets)."""
        return connectivity.DRIVES[name]

    @staticmethod
    def driven_by(name: int) -> tuple[int, ...]:
        """Name-level fan-in of a wire name (same-tile PIP sources)."""
        return connectivity.DRIVEN_BY[name]

    @staticmethod
    def pip_exists(from_name: int, to_name: int) -> bool:
        return connectivity.pip_exists(from_name, to_name)

    # -- canonicalisation ----------------------------------------------------

    def canonicalize(self, row: int, col: int, name: int) -> int | None:
        """Resolve wire ``name`` at tile ``(row, col)`` to a canonical id.

        Returns ``None`` when the named wire does not exist there: the tile
        is out of bounds, the wire would leave the array (edge effects), or
        a long line has no access point at this tile ("long lines can be
        accessed every 6 blocks").
        """
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            return None
        if name < _LOCAL_COUNT:  # OUT, slice pins, control pins
            return (row * self.cols + col) * N_OWNED + name
        if name < _SN0:  # SINGLE_E
            if col + 1 >= self.cols:
                return None
            return (row * self.cols + col) * N_OWNED + _SLOT_SINGLE_E + (name - _SE0)
        if name < _SS0:  # SINGLE_N
            if row + 1 >= self.rows:
                return None
            return (row * self.cols + col) * N_OWNED + _SLOT_SINGLE_N + (name - _SN0)
        if name < _SW0:  # SINGLE_S -> south neighbour's SINGLE_N
            if row - 1 < 0:
                return None
            return ((row - 1) * self.cols + col) * N_OWNED + _SLOT_SINGLE_N + (name - _SS0)
        if name < _HE0:  # SINGLE_W -> west neighbour's SINGLE_E
            if col - 1 < 0:
                return None
            return (row * self.cols + col - 1) * N_OWNED + _SLOT_SINGLE_E + (name - _SW0)
        if name < _HN0:  # HEX_E
            if col + 6 >= self.cols:
                return None
            return (row * self.cols + col) * N_OWNED + _SLOT_HEX_E + (name - _HE0)
        if name < _HS0:  # HEX_N
            if row + 6 >= self.rows:
                return None
            return (row * self.cols + col) * N_OWNED + _SLOT_HEX_N + (name - _HN0)
        if name < _HW0:  # HEX_S -> wire owned six tiles south
            if row - 6 < 0:
                return None
            return ((row - 6) * self.cols + col) * N_OWNED + _SLOT_HEX_N + (name - _HS0)
        if name < _LH0:  # HEX_W -> wire owned six tiles west
            if col - 6 < 0:
                return None
            return (row * self.cols + col - 6) * N_OWNED + _SLOT_HEX_E + (name - _HW0)
        if name < _LV0:  # LONG_H: access every 6 columns, staggered by index
            i = name - _LH0
            if col % 6 != i % 6:
                return None
            return self._long_h_base + row * _NL + i
        if name < _GC0:  # LONG_V
            i = name - _LV0
            if row % 6 != i % 6:
                return None
            return self._long_v_base + col * _NL + i
        if name < _DW0:  # GCLK: present everywhere
            return self._gclk_base + (name - _GC0)
        if name < _II0:  # DIRECT_W_OUT -> west neighbour's OUT wire
            if col - 1 < 0:
                return None
            return (row * self.cols + col - 1) * N_OWNED + (name - _DW0)
        if name < _N_NAMES:  # IOB pads: perimeter tiles only
            if not self.is_perimeter(row, col):
                return None
            if name < _IO0:
                return (row * self.cols + col) * N_OWNED + _SLOT_IOB_IN + (name - _II0)
            return (row * self.cols + col) * N_OWNED + _SLOT_IOB_OUT + (name - _IO0)
        raise ValueError(f"invalid wire name {name}")

    def wire_exists(self, canon: int) -> bool:
        """True if this canonical id names a physical wire of the device.

        The flat id space reserves an east/north single and hex slot in
        every tile; near the east/north edges those wires would leave the
        array and are not instantiated (edge behaviour, see DESIGN.md).
        """
        if not 0 <= canon < self.n_wires:
            return False
        row, col, name = self.primary_name(canon)
        return self.canonicalize(row, col, name) == canon

    def is_tile_wire(self, canon: int) -> bool:
        """True if ``canon`` is a tile-owned wire (not a long or global)."""
        return 0 <= canon < self._tile_wires_end

    def owner_tile(self, canon: int) -> tuple[int, int]:
        """Owning tile ``(row, col)`` of a tile-owned canonical wire."""
        tile = canon // N_OWNED
        return divmod(tile, self.cols)

    def owned_slot(self, canon: int) -> int:
        """Owned-slot number (0..113) of a tile-owned canonical wire."""
        return canon % N_OWNED

    def wire_class_of(self, canon: int) -> WireClass:
        """Resource class of a canonical wire instance."""
        if canon < self._tile_wires_end:
            return wires.wire_info(self.primary_name(canon)[2]).wire_class
        if canon < self._long_v_base:
            return WireClass.LONG_H
        if canon < self._gclk_base:
            return WireClass.LONG_V
        return WireClass.GCLK

    def primary_name(self, canon: int) -> tuple[int, int, int]:
        """The canonical (owning-end) ``(row, col, name)`` of a wire instance."""
        if canon < self._tile_wires_end:
            tile, slot = divmod(canon, N_OWNED)
            row, col = divmod(tile, self.cols)
            if slot < _LOCAL_COUNT:
                return row, col, slot
            if slot < _SLOT_SINGLE_N:
                return row, col, _SE0 + (slot - _SLOT_SINGLE_E)
            if slot < _SLOT_HEX_E:
                return row, col, _SN0 + (slot - _SLOT_SINGLE_N)
            if slot < _SLOT_HEX_N:
                return row, col, _HE0 + (slot - _SLOT_HEX_E)
            if slot < _SLOT_IOB_IN:
                return row, col, _HN0 + (slot - _SLOT_HEX_N)
            if slot < _SLOT_IOB_OUT:
                return row, col, _II0 + (slot - _SLOT_IOB_IN)
            return row, col, _IO0 + (slot - _SLOT_IOB_OUT)
        if canon < self._long_v_base:
            row, i = divmod(canon - self._long_h_base, _NL)
            return row, i % 6, _LH0 + i
        if canon < self._gclk_base:
            col, i = divmod(canon - self._long_v_base, _NL)
            return i % 6, col, _LV0 + i
        return 0, 0, _GC0 + (canon - self._gclk_base)

    def tile_coords(self, canon: int) -> tuple[int, int]:
        """Memoized owning-tile ``(row, col)`` of a wire instance.

        Equal to ``primary_name(canon)[:2]``; target-tile gathering and
        PathFinder's sink-ordering distance keys call this per wire per
        search, so the result is cached per instance.
        """
        cache = self._tile_coords_cache
        v = cache.get(canon)
        if v is None:
            r, c, _ = self.primary_name(canon)
            v = cache[canon] = (r, c)
        return v

    def presences(self, canon: int) -> list[tuple[int, int, int]]:
        """All ``(row, col, name)`` through which this wire is visible.

        A single appears at both of its endpoints under opposite names; a
        hex at both endpoints six tiles apart; an OUT wire also appears at
        the east neighbour as a direct connection; long lines appear at
        every access tile of their row/column.  Global nets are special
        cased (they are visible everywhere) and report their name at tile
        (0, 0) only — router code handles them via dedicated paths.
        """
        if canon < self._tile_wires_end:
            tile, slot = divmod(canon, N_OWNED)
            row, col = divmod(tile, self.cols)
            if slot < wires.N_OUT:  # OUT: own tile + direct at east neighbour
                out: list[tuple[int, int, int]] = [(row, col, slot)]
                if col + 1 < self.cols:
                    out.append((row, col + 1, _DW0 + slot))
                return out
            if slot < _LOCAL_COUNT:
                return [(row, col, slot)]
            if slot < _SLOT_SINGLE_N:
                i = slot - _SLOT_SINGLE_E
                return [(row, col, _SE0 + i), (row, col + 1, _SW0 + i)]
            if slot < _SLOT_HEX_E:
                i = slot - _SLOT_SINGLE_N
                return [(row, col, _SN0 + i), (row + 1, col, _SS0 + i)]
            if slot < _SLOT_HEX_N:
                i = slot - _SLOT_HEX_E
                return [(row, col, _HE0 + i), (row, col + 6, _HW0 + i)]
            if slot < _SLOT_IOB_IN:
                i = slot - _SLOT_HEX_N
                return [(row, col, _HN0 + i), (row + 6, col, _HS0 + i)]
            if slot < _SLOT_IOB_OUT:
                return [(row, col, _II0 + (slot - _SLOT_IOB_IN))]
            return [(row, col, _IO0 + (slot - _SLOT_IOB_OUT))]
        if canon < self._long_v_base:
            row, i = divmod(canon - self._long_h_base, _NL)
            return [(row, c, _LH0 + i) for c in range(i % 6, self.cols, 6)]
        if canon < self._gclk_base:
            col, i = divmod(canon - self._long_v_base, _NL)
            return [(r, col, _LV0 + i) for r in range(i % 6, self.rows, 6)]
        return [(0, 0, _GC0 + (canon - self._gclk_base))]

    # -- drivability ---------------------------------------------------------

    def drivable(self, row: int, col: int, name: int) -> bool:
        """Can a PIP located at ``(row, col)`` drive wire ``name``?

        Encodes the bidirectionality rules of Section 2: singles and long
        lines may be driven from any access point; even-indexed hexes are
        bidirectional ("some hexes are bi-directional") while odd-indexed
        hexes may only be driven from their origin end; pure sources
        (slice outputs, globals) and alias views of a neighbour's OMUX are
        never PIP-driven.
        """
        info = wires.wire_info(name)
        cls = info.wire_class
        if cls in (
            WireClass.SLICE_OUT,
            WireClass.GCLK,
            WireClass.DIRECT,
            WireClass.IOB_IN,
        ):
            return False
        if cls is WireClass.HEX and name >= _HS0 and info.index % 2 == 1:
            # odd hexes are unidirectional: the S/W alias is the far end
            return False
        return self.canonicalize(row, col, name) is not None

    def pip_legal_at(
        self, row: int, col: int, from_name: int, to_name: int
    ) -> str | None:
        """Offline legality of configuring a PIP at ``(row, col)``.

        The static mirror of the checks :meth:`Device.turn_on
        <repro.device.fabric.Device.turn_on>` performs before touching
        state, for tooling that validates artifacts *without* a device
        (``repro analyze``).  Returns ``None`` when the PIP could be
        configured on an empty fabric, else a reason code:
        ``"unknown-name"``, ``"missing-pip"``, ``"missing-from"``,
        ``"missing-to"``, ``"undrivable"`` or ``"self-drive"``.
        """
        if not (0 <= from_name < _N_NAMES and 0 <= to_name < _N_NAMES):
            return "unknown-name"
        if not connectivity.pip_exists(from_name, to_name):
            return "missing-pip"
        canon_from = self.canonicalize(row, col, from_name)
        if canon_from is None:
            return "missing-from"
        canon_to = self.canonicalize(row, col, to_name)
        if canon_to is None:
            return "missing-to"
        if not self.drivable(row, col, to_name):
            return "undrivable"
        if canon_from == canon_to:
            return "self-drive"
        return None

    def is_bidirectional(self, name: int) -> bool:
        """True if the named wire class can be driven from both ends."""
        info = wires.wire_info(name)
        if info.wire_class is WireClass.SINGLE:
            return True
        if info.wire_class is WireClass.HEX:
            return info.index % 2 == 0
        return info.wire_class in (WireClass.LONG_H, WireClass.LONG_V)

    # -- costs ----------------------------------------------------------------

    def wire_length(self, name: int, *, span_hint: int | None = None) -> int:
        """Physical length in CLBs of the named wire (longs span the chip)."""
        info = wires.wire_info(name)
        if info.length >= 0:
            return info.length
        if info.wire_class is WireClass.LONG_H:
            return self.cols if span_hint is None else span_hint
        if info.wire_class is WireClass.LONG_V:
            return self.rows if span_hint is None else span_hint
        return 0  # globals

    def wire_cost(self, name: int) -> float:
        """Base router cost of using the named wire (resource economy)."""
        cls = wires.wire_info(name).wire_class
        return _BASE_COST[cls]


#: Router base costs per resource class: cheap local hops, singles at unit
#: cost, hexes discounted per-CLB (they cover 6 CLBs for less than 6
#: singles), longs cheap per unit distance but with a high commitment cost.
_BASE_COST = {
    WireClass.OUT: 0.5,
    WireClass.SLICE_OUT: 0.0,
    WireClass.SLICE_IN: 0.5,
    WireClass.CTL_IN: 0.5,
    WireClass.SINGLE: 1.0,
    WireClass.HEX: 3.5,
    WireClass.LONG_H: 8.0,
    WireClass.LONG_V: 8.0,
    WireClass.GCLK: 0.0,
    WireClass.DIRECT: 0.3,
    WireClass.IOB_IN: 0.0,
    WireClass.IOB_OUT: 0.5,
}
