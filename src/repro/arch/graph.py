"""Compiled routing graph: flat CSR adjacency over canonical wires.

Every search level in this repro (maze, greedy fanout, bus, PathFinder)
used to re-expand the wire graph through the per-node Python generator
``Device.fanout_pips``, paying ``presences()`` + ``canonicalize()`` on
every edge of every search.  :class:`RoutingGraph` precompiles that
fanout relation once per device *geometry* into flat ``array``-backed
CSR storage:

* ``off[canon]`` / ``deg[canon]`` — index and length of the wire's edge
  run (``off`` is -1 until the node is materialized);
* ``e_to`` / ``e_src`` — canonical target / source wire per edge;
* ``e_row`` / ``e_col`` / ``e_from`` / ``e_toname`` — the PIP metadata
  (``(row, col, from_name, to_name)``) needed to apply a plan;
* ``e_cost`` — the target wire's base router cost, pre-resolved.

Nodes materialize lazily on first expansion (a one-shot cross-chip
route on a large part pays no up-front compile) and are shared: graphs
are cached per part name, so every ``Device("XCV50")`` in the process
reuses the same adjacency.  :meth:`RoutingGraph.compile` forces a full
build for steady-state benchmarking.

Fault models are *not* baked into the adjacency (they are mutable and
per-device); instead :meth:`RoutingGraph.fault_edge_mask` derives a flat
per-edge blocked mask — vectorised over the fault model's wire masks and
hashed stuck-open population — cached per (graph token, fault-model
version).  The token is a stable ``(part, generation)`` identity, so a
garbage-collected graph whose ``id()`` CPython later reuses can never
serve a stale mask to a fresh graph.

For OS-level parallel routing (the process-backend PathFinder) a fully
compiled graph can be **exported once into a POSIX shared-memory
segment** (:func:`shared_graph_export`) and **attached zero-copy** by
worker processes (:func:`attach_shared_graph`): the CSR columns become
``memoryview`` casts straight into the mapped segment, so a spawn/fork
worker pays neither a recompile nor a copy of the ~tens-of-MB adjacency.
Exports are cached per part and unlinked at interpreter exit (or
explicitly via :func:`release_shared_exports`).
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
import weakref
from array import array
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from . import connectivity, wires
from .virtex import _BASE_COST, VirtexArch
from .wires import WireClass

__all__ = [
    "NAME_DRIVABLE",
    "DRIVES_DRIVABLE",
    "NAME_COST",
    "RoutingGraph",
    "routing_graph",
    "SharedGraphExport",
    "shared_graph_export",
    "attach_shared_graph",
    "release_shared_exports",
]

# Name-level drivability: pure sources, globals and the direct-connect
# alias of a neighbour's OMUX can never be the target of a PIP; odd hexes
# cannot be driven through their far-end (south/west) alias names.
_HS0 = wires.HEX_S[0]


def _name_drivable(name: int) -> bool:
    info = wires.wire_info(name)
    cls = info.wire_class
    if cls in (
        WireClass.SLICE_OUT,
        WireClass.GCLK,
        WireClass.DIRECT,
        WireClass.IOB_IN,
    ):
        return False
    if cls is WireClass.HEX and name >= _HS0 and info.index % 2 == 1:
        return False
    return True


NAME_DRIVABLE: tuple[bool, ...] = tuple(
    _name_drivable(n) for n in range(wires.N_NAMES)
)

#: Name-level fan-out restricted to drivable targets, precomputed once.
DRIVES_DRIVABLE: tuple[tuple[int, ...], ...] = tuple(
    tuple(t for t in connectivity.DRIVES[n] if NAME_DRIVABLE[t])
    for n in range(wires.N_NAMES)
)

#: Base router cost per wire name (flat: no WireClass lookup in hot loops).
NAME_COST: tuple[float, ...] = tuple(
    _BASE_COST[wires.wire_info(n).wire_class] for n in range(wires.N_NAMES)
)

_M64 = (1 << 64) - 1


def _splitmix64_np(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64, bit-identical to ``faults._splitmix64``."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class FaultEdgeMask:
    """Flat per-edge fault mask aligned with a graph's edge arrays.

    ``mask[e]`` is 1 when edge ``e`` must be skipped by a fault-aware
    search: its target wire is dead/pre-driven, or the PIP itself is
    stuck open (explicitly or by the hashed random population).  The
    bytearray grows in place via :meth:`sync` as the graph materializes
    more nodes, so kernels may keep a direct reference to ``mask``.

    The graph is held through a *weak* reference: a mask cached on a
    long-lived :class:`~repro.device.faults.FaultModel` must not keep a
    transient graph (and its multi-MB edge arrays) alive forever, and a
    dead reference marks the cache entry for pruning.
    """

    __slots__ = ("_graph_ref", "faults", "version", "mask")

    def __init__(self, graph: "RoutingGraph", faults) -> None:
        self._graph_ref = weakref.ref(graph)
        self.faults = faults
        self.version = getattr(faults, "version", 0)
        self.mask = bytearray()
        self.sync()

    @property
    def graph(self) -> "RoutingGraph | None":
        """The graph this mask indexes, or None once it was collected."""
        return self._graph_ref()

    def sync(self) -> None:
        """Extend the mask to cover all currently-materialized edges."""
        g = self._graph_ref()
        if g is None:  # graph collected; the cache entry is dead
            return
        n = len(g.e_to)
        lo = len(self.mask)
        if n <= lo:
            return
        f = self.faults
        dst = np.frombuffer(g.e_to, dtype=np.int64, count=n)[lo:]
        bad = f.unusable[dst].copy()
        threshold = f._stuck_open_threshold
        if threshold:
            if threshold > _M64:
                bad[:] = True
            else:
                src = np.frombuffer(g.e_src, dtype=np.int64, count=n)[lo:]
                inner = _splitmix64_np(
                    (src.astype(np.uint64) << np.uint64(24))
                    ^ dst.astype(np.uint64)
                )
                key = _splitmix64_np(
                    np.uint64((f._stuck_open_seed << 1) & _M64) ^ inner
                )
                bad |= key < np.uint64(threshold)
        self.mask += bad.astype(np.uint8).tobytes()
        if f._stuck_open:
            explicit = f._stuck_open
            e_src, e_to = g.e_src, g.e_to
            for e in range(lo, n):
                if (e_src[e], e_to[e]) in explicit:
                    self.mask[e] = 1


#: Monotonic generation counter: together with the part name it forms a
#: stable graph identity token (``id()`` values are reused by CPython).
_GRAPH_GENERATION = itertools.count()


class RoutingGraph:
    """CSR adjacency of one architecture's fanout relation."""

    def __init__(self, arch: VirtexArch) -> None:
        self.arch = arch
        #: stable identity: survives ``id()`` reuse after garbage collection
        self.token: tuple[str, int] = (arch.part.name, next(_GRAPH_GENERATION))
        n = arch.n_wires
        self.n_nodes = n
        #: edge-run start per node; -1 until the node is materialized
        self.off = array("q", [-1]) * n
        #: edge-run length per node (valid once ``off`` is set)
        self.deg = array("i", bytes(4 * n))
        self.e_to = array("q")
        self.e_src = array("q")
        self.e_row = array("i")
        self.e_col = array("i")
        self.e_from = array("i")
        self.e_toname = array("i")
        self.e_cost = array("d")
        self._lock = threading.Lock()
        self._n_materialized = 0
        self._tiles: tuple[list[int], list[int], list[int]] | None = None
        self._coords: tuple[np.ndarray, np.ndarray] | None = None
        self._np_cols: tuple[int, tuple] | None = None
        self._min_edge_cost: float | None = None

    @property
    def n_edges(self) -> int:
        return len(self.e_to)

    @property
    def n_materialized(self) -> int:
        """Nodes whose adjacency has been compiled so far."""
        return self._n_materialized

    def _materialize(self, canon: int) -> int:
        """Compile one node's edge run; returns its offset."""
        with self._lock:
            o = self.off[canon]
            if o >= 0:
                return o
            arch = self.arch
            e_to = self.e_to
            e_src = self.e_src
            e_row = self.e_row
            e_col = self.e_col
            e_from = self.e_from
            e_toname = self.e_toname
            e_cost = self.e_cost
            canonicalize = arch.canonicalize
            o = len(e_to)
            cnt = 0
            for row, col, name in arch.presences(canon):
                for to_name in DRIVES_DRIVABLE[name]:
                    canon_to = canonicalize(row, col, to_name)
                    if canon_to is None:
                        continue
                    e_row.append(row)
                    e_col.append(col)
                    e_from.append(name)
                    e_toname.append(to_name)
                    e_to.append(canon_to)
                    e_src.append(canon)
                    e_cost.append(NAME_COST[to_name])
                    cnt += 1
            self.deg[canon] = cnt
            self._n_materialized += 1
            # publish the offset last: readers holding no lock see either
            # -1 (and take the lock) or a fully-written edge run
            self.off[canon] = o
            return o

    def compile(self) -> "RoutingGraph":
        """Materialize every node (steady-state / benchmark mode)."""
        off = self.off
        for canon in range(self.n_nodes):
            if off[canon] < 0:
                self._materialize(canon)
        return self

    def neighbors(self, canon: int) -> list[tuple[int, int, int, int, int]]:
        """``(row, col, from_name, to_name, canon_to)`` per edge of a node.

        Convenience accessor mirroring ``Device.fanout_pips`` (and in the
        same order); hot paths should index the flat arrays directly.
        """
        o = self.off[canon]
        if o < 0:
            o = self._materialize(canon)
        return [
            (
                self.e_row[e],
                self.e_col[e],
                self.e_from[e],
                self.e_toname[e],
                self.e_to[e],
            )
            for e in range(o, o + self.deg[canon])
        ]

    # -- primary-tile arrays (vectorised arch.primary_name) -----------------

    def tiles(self) -> tuple[list[int], list[int], list[int]]:
        """``(row, col, name)`` of every canonical wire, as flat lists.

        Computed vectorised on first use; replaces per-wire
        ``arch.primary_name`` calls in heuristic hot paths.
        """
        if self._tiles is None:
            self._tiles = self._compute_tiles()
        return self._tiles

    def _compute_tiles(self) -> tuple[list[int], list[int], list[int]]:
        from .virtex import (
            N_OWNED,
            _SLOT_HEX_E,
            _SLOT_HEX_N,
            _SLOT_IOB_IN,
            _SLOT_IOB_OUT,
            _SLOT_SINGLE_E,
            _SLOT_SINGLE_N,
        )

        arch = self.arch
        n = arch.n_wires
        rows = np.zeros(n, dtype=np.int64)
        cols = np.zeros(n, dtype=np.int64)
        names = np.zeros(n, dtype=np.int64)
        te = arch._tile_wires_end
        ids = np.arange(te, dtype=np.int64)
        tile, slot = np.divmod(ids, N_OWNED)
        rows[:te], cols[:te] = np.divmod(tile, arch.cols)
        names[:te] = np.select(
            [
                slot < _SLOT_SINGLE_E,
                slot < _SLOT_SINGLE_N,
                slot < _SLOT_HEX_E,
                slot < _SLOT_HEX_N,
                slot < _SLOT_IOB_IN,
                slot < _SLOT_IOB_OUT,
            ],
            [
                slot,
                wires.SINGLE_E[0] + slot - _SLOT_SINGLE_E,
                wires.SINGLE_N[0] + slot - _SLOT_SINGLE_N,
                wires.HEX_E[0] + slot - _SLOT_HEX_E,
                wires.HEX_N[0] + slot - _SLOT_HEX_N,
                wires.IOB_IN[0] + slot - _SLOT_IOB_IN,
            ],
            default=wires.IOB_OUT[0] + slot - _SLOT_IOB_OUT,
        )
        nl = wires.N_LONGS
        lh = np.arange(arch._long_v_base - arch._long_h_base, dtype=np.int64)
        r, i = np.divmod(lh, nl)
        rows[arch._long_h_base : arch._long_v_base] = r
        cols[arch._long_h_base : arch._long_v_base] = i % 6
        names[arch._long_h_base : arch._long_v_base] = wires.LONG_H[0] + i
        lv = np.arange(arch._gclk_base - arch._long_v_base, dtype=np.int64)
        c, i = np.divmod(lv, nl)
        rows[arch._long_v_base : arch._gclk_base] = i % 6
        cols[arch._long_v_base : arch._gclk_base] = c
        names[arch._long_v_base : arch._gclk_base] = wires.LONG_V[0] + i
        names[arch._gclk_base :] = wires.GCLK[0] + np.arange(
            n - arch._gclk_base, dtype=np.int64
        )
        return rows.tolist(), cols.tolist(), names.tolist()

    def coords(self) -> tuple[np.ndarray, np.ndarray]:
        """Primary-tile ``(rows, cols)`` int64 arrays per canonical wire.

        The vectorised companion of :meth:`tiles` for geometric sweeps
        (net bounding boxes, spatial partition cuts): one fancy-indexed
        gather replaces a ``tile_coords`` call per wire.  Derived from
        the same table as :meth:`tiles`, so the two can never disagree;
        needs no edge materialization.  Cached per graph.
        """
        if self._coords is None:
            rows, cols, _ = self.tiles()
            self._coords = (
                np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
            )
        return self._coords

    def bbox_map(
        self, wire_groups: Sequence[Sequence[int]]
    ) -> list[tuple[int, int, int, int]]:
        """Tile bounding box ``(r0, c0, r1, c1)`` per group of wires.

        The node-range mapping a spatial partitioner cuts against: each
        group (typically one net's source + sinks) maps to the smallest
        tile rectangle containing all of its wires.  Groups must be
        non-empty.
        """
        rows, cols = self.coords()
        out: list[tuple[int, int, int, int]] = []
        for ws in wire_groups:
            ids = np.fromiter(ws, dtype=np.int64, count=len(ws))
            r = rows[ids]
            c = cols[ids]
            out.append((int(r.min()), int(c.min()), int(r.max()), int(c.max())))
        return out

    # -- flat numpy views (batched kernel) -----------------------------------

    def np_columns(self) -> tuple:
        """Zero-copy numpy views of the CSR columns, for vectorized search.

        Returns ``(off, deg, e_to, e_cost, e_toname, e_row, e_col)``.
        Forces a full :meth:`compile` first — the views alias the backing
        buffers, and an ``array`` reallocating mid-batch under a lazy
        materialization would leave them dangling.  Cached per edge
        count, so a graph grown since the last call re-derives fresh
        views (compiled graphs never grow again).
        """
        if self._n_materialized < self.n_nodes:
            self.compile()
        n_edges = len(self.e_to)
        cached = self._np_cols
        if cached is not None and cached[0] == n_edges:
            return cached[1]
        cols = (
            np.asarray(self.off),
            np.asarray(self.deg),
            np.asarray(self.e_to),
            np.asarray(self.e_cost),
            np.asarray(self.e_toname),
            np.asarray(self.e_row),
            np.asarray(self.e_col),
        )
        self._np_cols = (n_edges, cols)
        return cols

    def min_edge_cost(self) -> float:
        """Smallest edge cost in the compiled graph.

        The batched kernel's level-synchronous engine rests on this: in
        a Dijkstra search (no A* bias), every frontier entry cheaper
        than ``frontier_min + min_edge_cost`` can be expanded in the
        same vectorized round, because no relaxation this round can
        produce a cost below that bound — the safe-prefix property.
        Cached per compiled graph (costs are static fabric data).
        """
        if self._min_edge_cost is None:
            cols = self.np_columns()  # force-compile; costs cover all edges
            e_cost = cols[3]
            self._min_edge_cost = float(e_cost.min()) if len(e_cost) else 0.0
        return self._min_edge_cost

    # -- fault masking --------------------------------------------------------

    def fault_edge_mask(self, faults) -> FaultEdgeMask:
        """Per-edge blocked mask for a fault model, cached by version.

        Keyed by the graph's stable :attr:`token`, **not** by ``id()``:
        CPython reuses object ids, so an id-keyed entry surviving a
        collected graph could silently serve a stale mask to an
        unrelated new graph.  Entries whose graph has been collected are
        pruned on the way through.
        """
        cache = getattr(faults, "_edge_masks", None)
        if cache is None:
            cache = faults._edge_masks = {}
        m = cache.get(self.token)
        if m is None or m.version != getattr(faults, "version", 0):
            for key in [k for k, v in cache.items() if v.graph is None]:
                del cache[key]
            m = FaultEdgeMask(self, faults)
            cache[self.token] = m
        else:
            m.sync()
        return m


#: Process-wide graph cache: one compiled graph per part geometry.
_GRAPH_CACHE: dict[str, RoutingGraph] = {}
_CACHE_LOCK = threading.Lock()


def routing_graph(arch: VirtexArch) -> RoutingGraph:
    """The shared :class:`RoutingGraph` of ``arch``'s part geometry."""
    key = arch.part.name
    g = _GRAPH_CACHE.get(key)
    if g is None:
        with _CACHE_LOCK:
            g = _GRAPH_CACHE.get(key)
            if g is None:
                g = RoutingGraph(arch)
                _GRAPH_CACHE[key] = g
    return g


# -- shared-memory export (process-backend parallel routing) ------------------

#: CSR columns shipped through shared memory, in layout order.
_SHARED_COLUMNS = (
    "off", "deg", "e_to", "e_src", "e_row", "e_col", "e_from", "e_toname",
    "e_cost",
)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without taking lifecycle ownership.

    On Python 3.13+ ``track=False`` skips resource-tracker registration
    entirely.  Before that, attaching re-registers the name — harmless
    inside one multiprocessing family, where parent and workers share a
    single tracker whose cache is a set (the duplicate deduplicates, and
    the owner's ``unlink`` performs the one unregister).  Explicitly
    unregistering here would be *wrong* for exactly that reason: it
    would race the owner's unlink into a double-unregister.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        return shared_memory.SharedMemory(name=name)


class SharedGraphExport:
    """Owner-side handle of one compiled graph image in shared memory.

    The graph is force-compiled, then every CSR column is copied once
    into a single segment (8-byte-aligned runs).  :attr:`meta` is a
    small picklable description — segment name, part, column layout —
    that worker processes feed to :func:`attach_shared_graph`.  The
    owner must :meth:`close` (unlink) the segment; attached readers only
    ever map it.
    """

    def __init__(self, graph: RoutingGraph) -> None:
        graph.compile()
        self.part = graph.arch.part.name
        layout: list[tuple[str, str, int, int]] = []
        pos = 0
        cols = [(name, getattr(graph, name)) for name in _SHARED_COLUMNS]
        for name, arr in cols:
            layout.append((name, arr.typecode, pos, len(arr)))
            pos += len(arr) * arr.itemsize
            pos = (pos + 7) & ~7  # 8-byte-align the next column
        while True:
            try:
                self.shm = shared_memory.SharedMemory(
                    create=True,
                    size=max(pos, 8),
                    name=(
                        f"jroute_{os.getpid()}_{self.part}_"
                        f"{next(_GRAPH_GENERATION)}"
                    ),
                )
                break
            except FileExistsError:  # stale segment from a recycled pid
                continue
        for (name, tc, off, cnt), (_, arr) in zip(layout, cols):
            dst = self.shm.buf[off : off + cnt * arr.itemsize]
            dst[:] = memoryview(arr).cast("B")
            dst.release()  # close() would refuse while views are exported
        self.meta = {
            "name": self.shm.name,
            "part": self.part,
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "layout": layout,
        }
        self._closed = False

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


#: Process-wide export cache: one shared-memory image per part.
_SHARED_EXPORTS: dict[str, SharedGraphExport] = {}


def shared_graph_export(arch: VirtexArch) -> SharedGraphExport:
    """The (cached) shared-memory export of ``arch``'s compiled graph.

    Created on first use per part and unlinked at interpreter exit (the
    ``atexit`` hook below), or earlier via
    :func:`release_shared_exports`.
    """
    key = arch.part.name
    exp = _SHARED_EXPORTS.get(key)
    if exp is None or exp._closed:
        graph = routing_graph(arch)  # before the lock: it locks too
        with _CACHE_LOCK:
            exp = _SHARED_EXPORTS.get(key)
            if exp is None or exp._closed:
                exp = SharedGraphExport(graph)
                _SHARED_EXPORTS[key] = exp
    return exp


@atexit.register
def release_shared_exports() -> None:
    """Unlink every cached shared-memory graph export (idempotent)."""
    while _SHARED_EXPORTS:
        _, exp = _SHARED_EXPORTS.popitem()
        exp.close()


def attach_shared_graph(meta: dict) -> RoutingGraph:
    """Zero-copy view of an exported graph inside a worker process.

    Returns a :class:`RoutingGraph` whose CSR columns are ``memoryview``
    casts straight into the mapped segment — no recompile, no copy; the
    graph arrives fully materialized.  The columns are read-only by
    construction on the worker side (workers never materialize).  The
    mapping lives as long as the returned graph (process exit unmaps).
    """
    shm = _attach_segment(meta["name"])
    g = RoutingGraph.__new__(RoutingGraph)
    g.arch = VirtexArch(meta["part"])
    g.token = (meta["part"], next(_GRAPH_GENERATION))
    g.n_nodes = meta["n_nodes"]
    itemsize = {"q": 8, "i": 4, "d": 8}
    for name, tc, off, cnt in meta["layout"]:
        setattr(g, name, shm.buf[off : off + cnt * itemsize[tc]].cast(tc))
    g._lock = threading.Lock()
    g._n_materialized = g.n_nodes
    g._tiles = None
    g._np_cols = None
    g._coords = None
    g._min_edge_cost = None
    g._shm = shm  # keep the mapping alive alongside the views
    return g
