"""Compiled routing graph: flat CSR adjacency over canonical wires.

Every search level in this repro (maze, greedy fanout, bus, PathFinder)
used to re-expand the wire graph through the per-node Python generator
``Device.fanout_pips``, paying ``presences()`` + ``canonicalize()`` on
every edge of every search.  :class:`RoutingGraph` precompiles that
fanout relation once per device *geometry* into flat ``array``-backed
CSR storage:

* ``off[canon]`` / ``deg[canon]`` — index and length of the wire's edge
  run (``off`` is -1 until the node is materialized);
* ``e_to`` / ``e_src`` — canonical target / source wire per edge;
* ``e_row`` / ``e_col`` / ``e_from`` / ``e_toname`` — the PIP metadata
  (``(row, col, from_name, to_name)``) needed to apply a plan;
* ``e_cost`` — the target wire's base router cost, pre-resolved.

Nodes materialize lazily on first expansion (a one-shot cross-chip
route on a large part pays no up-front compile) and are shared: graphs
are cached per part name, so every ``Device("XCV50")`` in the process
reuses the same adjacency.  :meth:`RoutingGraph.compile` forces a full
build for steady-state benchmarking.

Fault models are *not* baked into the adjacency (they are mutable and
per-device); instead :meth:`RoutingGraph.fault_edge_mask` derives a flat
per-edge blocked mask — vectorised over the fault model's wire masks and
hashed stuck-open population — cached per (graph, fault-model version).
"""

from __future__ import annotations

import threading
from array import array

import numpy as np

from . import connectivity, wires
from .virtex import _BASE_COST, VirtexArch
from .wires import WireClass

__all__ = [
    "NAME_DRIVABLE",
    "DRIVES_DRIVABLE",
    "NAME_COST",
    "RoutingGraph",
    "routing_graph",
]

# Name-level drivability: pure sources, globals and the direct-connect
# alias of a neighbour's OMUX can never be the target of a PIP; odd hexes
# cannot be driven through their far-end (south/west) alias names.
_HS0 = wires.HEX_S[0]


def _name_drivable(name: int) -> bool:
    info = wires.wire_info(name)
    cls = info.wire_class
    if cls in (
        WireClass.SLICE_OUT,
        WireClass.GCLK,
        WireClass.DIRECT,
        WireClass.IOB_IN,
    ):
        return False
    if cls is WireClass.HEX and name >= _HS0 and info.index % 2 == 1:
        return False
    return True


NAME_DRIVABLE: tuple[bool, ...] = tuple(
    _name_drivable(n) for n in range(wires.N_NAMES)
)

#: Name-level fan-out restricted to drivable targets, precomputed once.
DRIVES_DRIVABLE: tuple[tuple[int, ...], ...] = tuple(
    tuple(t for t in connectivity.DRIVES[n] if NAME_DRIVABLE[t])
    for n in range(wires.N_NAMES)
)

#: Base router cost per wire name (flat: no WireClass lookup in hot loops).
NAME_COST: tuple[float, ...] = tuple(
    _BASE_COST[wires.wire_info(n).wire_class] for n in range(wires.N_NAMES)
)

_M64 = (1 << 64) - 1


def _splitmix64_np(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64, bit-identical to ``faults._splitmix64``."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class FaultEdgeMask:
    """Flat per-edge fault mask aligned with a graph's edge arrays.

    ``mask[e]`` is 1 when edge ``e`` must be skipped by a fault-aware
    search: its target wire is dead/pre-driven, or the PIP itself is
    stuck open (explicitly or by the hashed random population).  The
    bytearray grows in place via :meth:`sync` as the graph materializes
    more nodes, so kernels may keep a direct reference to ``mask``.
    """

    __slots__ = ("graph", "faults", "version", "mask")

    def __init__(self, graph: "RoutingGraph", faults) -> None:
        self.graph = graph
        self.faults = faults
        self.version = getattr(faults, "version", 0)
        self.mask = bytearray()
        self.sync()

    def sync(self) -> None:
        """Extend the mask to cover all currently-materialized edges."""
        g = self.graph
        n = len(g.e_to)
        lo = len(self.mask)
        if n <= lo:
            return
        f = self.faults
        dst = np.frombuffer(g.e_to, dtype=np.int64, count=n)[lo:]
        bad = f.unusable[dst].copy()
        threshold = f._stuck_open_threshold
        if threshold:
            if threshold > _M64:
                bad[:] = True
            else:
                src = np.frombuffer(g.e_src, dtype=np.int64, count=n)[lo:]
                inner = _splitmix64_np(
                    (src.astype(np.uint64) << np.uint64(24))
                    ^ dst.astype(np.uint64)
                )
                key = _splitmix64_np(
                    np.uint64((f._stuck_open_seed << 1) & _M64) ^ inner
                )
                bad |= key < np.uint64(threshold)
        self.mask += bad.astype(np.uint8).tobytes()
        if f._stuck_open:
            explicit = f._stuck_open
            e_src, e_to = g.e_src, g.e_to
            for e in range(lo, n):
                if (e_src[e], e_to[e]) in explicit:
                    self.mask[e] = 1


class RoutingGraph:
    """CSR adjacency of one architecture's fanout relation."""

    def __init__(self, arch: VirtexArch) -> None:
        self.arch = arch
        n = arch.n_wires
        self.n_nodes = n
        #: edge-run start per node; -1 until the node is materialized
        self.off = array("q", [-1]) * n
        #: edge-run length per node (valid once ``off`` is set)
        self.deg = array("i", bytes(4 * n))
        self.e_to = array("q")
        self.e_src = array("q")
        self.e_row = array("i")
        self.e_col = array("i")
        self.e_from = array("i")
        self.e_toname = array("i")
        self.e_cost = array("d")
        self._lock = threading.Lock()
        self._n_materialized = 0
        self._tiles: tuple[list[int], list[int], list[int]] | None = None

    @property
    def n_edges(self) -> int:
        return len(self.e_to)

    @property
    def n_materialized(self) -> int:
        """Nodes whose adjacency has been compiled so far."""
        return self._n_materialized

    def _materialize(self, canon: int) -> int:
        """Compile one node's edge run; returns its offset."""
        with self._lock:
            o = self.off[canon]
            if o >= 0:
                return o
            arch = self.arch
            e_to = self.e_to
            e_src = self.e_src
            e_row = self.e_row
            e_col = self.e_col
            e_from = self.e_from
            e_toname = self.e_toname
            e_cost = self.e_cost
            canonicalize = arch.canonicalize
            o = len(e_to)
            cnt = 0
            for row, col, name in arch.presences(canon):
                for to_name in DRIVES_DRIVABLE[name]:
                    canon_to = canonicalize(row, col, to_name)
                    if canon_to is None:
                        continue
                    e_row.append(row)
                    e_col.append(col)
                    e_from.append(name)
                    e_toname.append(to_name)
                    e_to.append(canon_to)
                    e_src.append(canon)
                    e_cost.append(NAME_COST[to_name])
                    cnt += 1
            self.deg[canon] = cnt
            self._n_materialized += 1
            # publish the offset last: readers holding no lock see either
            # -1 (and take the lock) or a fully-written edge run
            self.off[canon] = o
            return o

    def compile(self) -> "RoutingGraph":
        """Materialize every node (steady-state / benchmark mode)."""
        off = self.off
        for canon in range(self.n_nodes):
            if off[canon] < 0:
                self._materialize(canon)
        return self

    def neighbors(self, canon: int) -> list[tuple[int, int, int, int, int]]:
        """``(row, col, from_name, to_name, canon_to)`` per edge of a node.

        Convenience accessor mirroring ``Device.fanout_pips`` (and in the
        same order); hot paths should index the flat arrays directly.
        """
        o = self.off[canon]
        if o < 0:
            o = self._materialize(canon)
        return [
            (
                self.e_row[e],
                self.e_col[e],
                self.e_from[e],
                self.e_toname[e],
                self.e_to[e],
            )
            for e in range(o, o + self.deg[canon])
        ]

    # -- primary-tile arrays (vectorised arch.primary_name) -----------------

    def tiles(self) -> tuple[list[int], list[int], list[int]]:
        """``(row, col, name)`` of every canonical wire, as flat lists.

        Computed vectorised on first use; replaces per-wire
        ``arch.primary_name`` calls in heuristic hot paths.
        """
        if self._tiles is None:
            self._tiles = self._compute_tiles()
        return self._tiles

    def _compute_tiles(self) -> tuple[list[int], list[int], list[int]]:
        from .virtex import (
            N_OWNED,
            _SLOT_HEX_E,
            _SLOT_HEX_N,
            _SLOT_IOB_IN,
            _SLOT_IOB_OUT,
            _SLOT_SINGLE_E,
            _SLOT_SINGLE_N,
        )

        arch = self.arch
        n = arch.n_wires
        rows = np.zeros(n, dtype=np.int64)
        cols = np.zeros(n, dtype=np.int64)
        names = np.zeros(n, dtype=np.int64)
        te = arch._tile_wires_end
        ids = np.arange(te, dtype=np.int64)
        tile, slot = np.divmod(ids, N_OWNED)
        rows[:te], cols[:te] = np.divmod(tile, arch.cols)
        names[:te] = np.select(
            [
                slot < _SLOT_SINGLE_E,
                slot < _SLOT_SINGLE_N,
                slot < _SLOT_HEX_E,
                slot < _SLOT_HEX_N,
                slot < _SLOT_IOB_IN,
                slot < _SLOT_IOB_OUT,
            ],
            [
                slot,
                wires.SINGLE_E[0] + slot - _SLOT_SINGLE_E,
                wires.SINGLE_N[0] + slot - _SLOT_SINGLE_N,
                wires.HEX_E[0] + slot - _SLOT_HEX_E,
                wires.HEX_N[0] + slot - _SLOT_HEX_N,
                wires.IOB_IN[0] + slot - _SLOT_IOB_IN,
            ],
            default=wires.IOB_OUT[0] + slot - _SLOT_IOB_OUT,
        )
        nl = wires.N_LONGS
        lh = np.arange(arch._long_v_base - arch._long_h_base, dtype=np.int64)
        r, i = np.divmod(lh, nl)
        rows[arch._long_h_base : arch._long_v_base] = r
        cols[arch._long_h_base : arch._long_v_base] = i % 6
        names[arch._long_h_base : arch._long_v_base] = wires.LONG_H[0] + i
        lv = np.arange(arch._gclk_base - arch._long_v_base, dtype=np.int64)
        c, i = np.divmod(lv, nl)
        rows[arch._long_v_base : arch._gclk_base] = i % 6
        cols[arch._long_v_base : arch._gclk_base] = c
        names[arch._long_v_base : arch._gclk_base] = wires.LONG_V[0] + i
        names[arch._gclk_base :] = wires.GCLK[0] + np.arange(
            n - arch._gclk_base, dtype=np.int64
        )
        return rows.tolist(), cols.tolist(), names.tolist()

    # -- fault masking --------------------------------------------------------

    def fault_edge_mask(self, faults) -> FaultEdgeMask:
        """Per-edge blocked mask for a fault model, cached by version."""
        cache = getattr(faults, "_edge_masks", None)
        if cache is None:
            cache = faults._edge_masks = {}
        m = cache.get(id(self))
        if m is None or m.version != getattr(faults, "version", 0):
            m = FaultEdgeMask(self, faults)
            cache[id(self)] = m
        else:
            m.sync()
        return m


#: Process-wide graph cache: one compiled graph per part geometry.
_GRAPH_CACHE: dict[str, RoutingGraph] = {}
_CACHE_LOCK = threading.Lock()


def routing_graph(arch: VirtexArch) -> RoutingGraph:
    """The shared :class:`RoutingGraph` of ``arch``'s part geometry."""
    key = arch.part.name
    g = _GRAPH_CACHE.get(key)
    if g is None:
        with _CACHE_LOCK:
            g = _GRAPH_CACHE.get(key)
            if g is None:
                g = RoutingGraph(arch)
                _GRAPH_CACHE[key] = g
    return g
