"""Template values: direction + resource-type classification of wires.

The paper (Section 3): "A template value is defined as a value describing a
direction and a resource type.  For example, a template value of NORTH6
describes any hex wire in the north direction, a template value of NORTH1
describes any single wire in the north direction."

The architecture description class records *which template value each wire
can be classified under*; that classification is :func:`template_value_of`.
"""

from __future__ import annotations

import enum
import functools

from . import wires
from .wires import Direction, WireClass

__all__ = [
    "TemplateValue",
    "template_value_of",
    "names_with_template_value",
    "presence_names",
    "legal_transition",
    "step_displacement",
]


class TemplateValue(enum.IntEnum):
    """The template vocabulary of the paper's Section 3.1 examples."""

    OUTMUX = 0   #: an OMUX output wire
    CLBOUT = 1   #: a logic-block output pin
    CLBIN = 2    #: a logic-block input pin (incl. control pins)
    EAST1 = 3    #: single heading east
    NORTH1 = 4
    SOUTH1 = 5
    WEST1 = 6
    EAST6 = 7    #: hex heading east
    NORTH6 = 8
    SOUTH6 = 9
    WEST6 = 10
    LONGH = 11   #: horizontal long line
    LONGV = 12   #: vertical long line
    GLOBAL = 13  #: dedicated global net
    DIRECT = 14  #: direct connection from the adjacent CLB
    PADIN = 15   #: input-pad wire driving into the fabric
    PADOUT = 16  #: output-pad wire driven by the fabric


_SINGLE_BY_DIR = {
    Direction.EAST: TemplateValue.EAST1,
    Direction.NORTH: TemplateValue.NORTH1,
    Direction.SOUTH: TemplateValue.SOUTH1,
    Direction.WEST: TemplateValue.WEST1,
}

_HEX_BY_DIR = {
    Direction.EAST: TemplateValue.EAST6,
    Direction.NORTH: TemplateValue.NORTH6,
    Direction.SOUTH: TemplateValue.SOUTH6,
    Direction.WEST: TemplateValue.WEST6,
}


def template_value_of(name: int) -> TemplateValue:
    """Classify a wire name under its template value."""
    info = wires.wire_info(name)
    cls = info.wire_class
    if cls is WireClass.OUT:
        return TemplateValue.OUTMUX
    if cls is WireClass.SLICE_OUT:
        return TemplateValue.CLBOUT
    if cls in (WireClass.SLICE_IN, WireClass.CTL_IN):
        return TemplateValue.CLBIN
    if cls is WireClass.SINGLE:
        return _SINGLE_BY_DIR[info.direction]
    if cls is WireClass.HEX:
        return _HEX_BY_DIR[info.direction]
    if cls is WireClass.LONG_H:
        return TemplateValue.LONGH
    if cls is WireClass.LONG_V:
        return TemplateValue.LONGV
    if cls is WireClass.GCLK:
        return TemplateValue.GLOBAL
    if cls is WireClass.DIRECT:
        return TemplateValue.DIRECT
    if cls is WireClass.IOB_IN:
        return TemplateValue.PADIN
    if cls is WireClass.IOB_OUT:
        return TemplateValue.PADOUT
    raise ValueError(f"unclassifiable wire name {name}")  # pragma: no cover


_BY_VALUE: dict[TemplateValue, tuple[int, ...]] = {}
for _n in range(wires.N_NAMES):
    _BY_VALUE.setdefault(template_value_of(_n), tuple())
    _BY_VALUE[template_value_of(_n)] = _BY_VALUE[template_value_of(_n)] + (_n,)


def names_with_template_value(value: TemplateValue) -> tuple[int, ...]:
    """All wire names classified under ``value``."""
    return _BY_VALUE.get(value, ())


# -- offline step legality ------------------------------------------------------
#
# A template step "drive a wire of value B" is only realisable when some
# architecture PIP leads from a wire of the previous step's value A (seen
# under any of its presence names — a directional wire carries the
# opposite name at its far end) to a drivable wire classified under B.
# The 17x17 matrix of such transitions is derivable once from the
# connectivity tables; ``repro analyze`` uses it to reject templates that
# no fabric location can ever realise (e.g. a hex directly before a CLB
# input) without running a router.

#: name-level far-end alias of each directional wire name (absent for
#: wires that carry one name everywhere)
_FAR_END: dict[int, int] = {}
for _i in range(wires.N_SINGLES_PER_DIR):
    _FAR_END[wires.SINGLE_E[_i]] = wires.SINGLE_W[_i]
    _FAR_END[wires.SINGLE_W[_i]] = wires.SINGLE_E[_i]
    _FAR_END[wires.SINGLE_N[_i]] = wires.SINGLE_S[_i]
    _FAR_END[wires.SINGLE_S[_i]] = wires.SINGLE_N[_i]
for _i in range(wires.N_HEXES_PER_DIR):
    _FAR_END[wires.HEX_E[_i]] = wires.HEX_W[_i]
    _FAR_END[wires.HEX_W[_i]] = wires.HEX_E[_i]
    _FAR_END[wires.HEX_N[_i]] = wires.HEX_S[_i]
    _FAR_END[wires.HEX_S[_i]] = wires.HEX_N[_i]
for _i in range(wires.N_OUT):
    # an OMUX output is visible at the east neighbour as a direct input
    _FAR_END[wires.OUT[_i]] = wires.DIRECT_W_OUT[_i]


@functools.lru_cache(maxsize=None)
def presence_names(value: TemplateValue) -> tuple[int, ...]:
    """All wire names under which a wire of ``value`` may be visible.

    A signal driven onto a ``NORTH1`` single sits on a ``SingleSouth``
    name at the far tile, so the presence set of NORTH1 includes the
    SOUTH1 names; PIP fan-out must be considered from every presence
    name, not just the classified ones.
    """
    seen: list[int] = []
    for n in names_with_template_value(value):
        for m in (n, _FAR_END.get(n)):
            if m is not None and m not in seen:
                seen.append(m)
    return tuple(seen)


@functools.lru_cache(maxsize=None)
def legal_transition(a: TemplateValue, b: TemplateValue) -> bool:
    """Does any architecture PIP realise step ``a`` → step ``b``?

    True when some presence name of ``a`` drives some drivable wire name
    classified under ``b``.  Necessary (not sufficient — geometry can
    still refuse at a specific tile) for a template containing the
    consecutive values ``a, b`` to be routable anywhere on the fabric.
    """
    from .connectivity import DRIVES
    from .graph import NAME_DRIVABLE

    return any(
        template_value_of(t) is b and NAME_DRIVABLE[t]
        for f in presence_names(a)
        for t in DRIVES[f]
    )

#: per-step tile displacement of the fixed-displacement template values
#: (data-dependent values — longs, globals — are absent)
_STEP_DELTA: dict[TemplateValue, tuple[int, int]] = {
    TemplateValue.NORTH1: (1, 0),
    TemplateValue.SOUTH1: (-1, 0),
    TemplateValue.NORTH6: (6, 0),
    TemplateValue.SOUTH6: (-6, 0),
    TemplateValue.EAST1: (0, 1),
    TemplateValue.WEST1: (0, -1),
    TemplateValue.EAST6: (0, 6),
    TemplateValue.WEST6: (0, -6),
    TemplateValue.DIRECT: (0, 1),
}


def step_displacement(value: TemplateValue) -> tuple[int, int] | None:
    """Fixed ``(drow, dcol)`` of one template step, or None when the
    displacement is data-dependent (long lines, globals)."""
    if value in (
        TemplateValue.LONGH,
        TemplateValue.LONGV,
        TemplateValue.GLOBAL,
    ):
        return None
    return _STEP_DELTA.get(value, (0, 0))
