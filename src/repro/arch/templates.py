"""Template values: direction + resource-type classification of wires.

The paper (Section 3): "A template value is defined as a value describing a
direction and a resource type.  For example, a template value of NORTH6
describes any hex wire in the north direction, a template value of NORTH1
describes any single wire in the north direction."

The architecture description class records *which template value each wire
can be classified under*; that classification is :func:`template_value_of`.
"""

from __future__ import annotations

import enum

from . import wires
from .wires import Direction, WireClass

__all__ = ["TemplateValue", "template_value_of", "names_with_template_value"]


class TemplateValue(enum.IntEnum):
    """The template vocabulary of the paper's Section 3.1 examples."""

    OUTMUX = 0   #: an OMUX output wire
    CLBOUT = 1   #: a logic-block output pin
    CLBIN = 2    #: a logic-block input pin (incl. control pins)
    EAST1 = 3    #: single heading east
    NORTH1 = 4
    SOUTH1 = 5
    WEST1 = 6
    EAST6 = 7    #: hex heading east
    NORTH6 = 8
    SOUTH6 = 9
    WEST6 = 10
    LONGH = 11   #: horizontal long line
    LONGV = 12   #: vertical long line
    GLOBAL = 13  #: dedicated global net
    DIRECT = 14  #: direct connection from the adjacent CLB
    PADIN = 15   #: input-pad wire driving into the fabric
    PADOUT = 16  #: output-pad wire driven by the fabric


_SINGLE_BY_DIR = {
    Direction.EAST: TemplateValue.EAST1,
    Direction.NORTH: TemplateValue.NORTH1,
    Direction.SOUTH: TemplateValue.SOUTH1,
    Direction.WEST: TemplateValue.WEST1,
}

_HEX_BY_DIR = {
    Direction.EAST: TemplateValue.EAST6,
    Direction.NORTH: TemplateValue.NORTH6,
    Direction.SOUTH: TemplateValue.SOUTH6,
    Direction.WEST: TemplateValue.WEST6,
}


def template_value_of(name: int) -> TemplateValue:
    """Classify a wire name under its template value."""
    info = wires.wire_info(name)
    cls = info.wire_class
    if cls is WireClass.OUT:
        return TemplateValue.OUTMUX
    if cls is WireClass.SLICE_OUT:
        return TemplateValue.CLBOUT
    if cls in (WireClass.SLICE_IN, WireClass.CTL_IN):
        return TemplateValue.CLBIN
    if cls is WireClass.SINGLE:
        return _SINGLE_BY_DIR[info.direction]
    if cls is WireClass.HEX:
        return _HEX_BY_DIR[info.direction]
    if cls is WireClass.LONG_H:
        return TemplateValue.LONGH
    if cls is WireClass.LONG_V:
        return TemplateValue.LONGV
    if cls is WireClass.GCLK:
        return TemplateValue.GLOBAL
    if cls is WireClass.DIRECT:
        return TemplateValue.DIRECT
    if cls is WireClass.IOB_IN:
        return TemplateValue.PADIN
    if cls is WireClass.IOB_OUT:
        return TemplateValue.PADOUT
    raise ValueError(f"unclassifiable wire name {name}")  # pragma: no cover


_BY_VALUE: dict[TemplateValue, tuple[int, ...]] = {}
for _n in range(wires.N_NAMES):
    _BY_VALUE.setdefault(template_value_of(_n), tuple())
    _BY_VALUE[template_value_of(_n)] = _BY_VALUE[template_value_of(_n)] + (_n,)


def names_with_template_value(value: TemplateValue) -> tuple[int, ...]:
    """All wire names classified under ``value``."""
    return _BY_VALUE.get(value, ())
