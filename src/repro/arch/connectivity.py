"""Name-level GRM connectivity tables (the routing-database substitute).

The real Virtex general routing matrix (GRM) PIP patterns are part of
Xilinx's proprietary routing database, which the original JRoute consumed
through JBits.  This module *substitutes* that database with deterministic
sparse index maps whose **class-level legality follows the paper's
Section 2 verbatim**:

* "Logic block outputs drive all length interconnects"  (via the OMUX)
* "longs can drive hexes only"
* "hexes drive singles and other hexes"
* "singles drive logic block inputs, vertical long lines, and other singles"
* global nets drive clock pins only
* local resources: direct connections to the horizontally adjacent CLB and
  feedback to inputs in the same block

Within each legal class pair, the *index pattern* (which SINGLE_E index a
given OUT wire reaches, etc.) is a fixed arithmetic spreading function.
These functions were chosen to (a) be deterministic, (b) give fan-outs of
the same order as the Virtex GRM, and (c) cover every index of the target
class across the source class, so no wire is unreachable by construction.

All tables here are *name-level*: they describe PIPs between two wire
names at the same tile.  Whether a specific PIP exists at a specific tile
additionally depends on the device bounds and drivability rules enforced
by :mod:`repro.device`.
"""

from __future__ import annotations

from . import wires
from .wires import (
    CTL_IN_BASE,
    DIRECT_W_OUT,
    GCLK,
    IOB_IN,
    IOB_OUT,
    N_IOB_PER_TILE,
    HEX_E,
    HEX_N,
    HEX_S,
    HEX_W,
    LONG_H,
    LONG_V,
    N_CTL_IN,
    N_HEXES_PER_DIR,
    N_LONGS,
    N_NAMES,
    N_OUT,
    N_SINGLES_PER_DIR,
    N_SLICE_IN,
    N_SLICE_OUT,
    OUT,
    S0_CLK,
    S1_CLK,
    SINGLE_E,
    SINGLE_N,
    SINGLE_S,
    SINGLE_W,
    SLICE_IN_BASE,
    SLICE_OUT_BASE,
    Direction,
)

__all__ = [
    "DRIVES",
    "DRIVEN_BY",
    "PIP_LIST",
    "PIP_SLOT",
    "N_PIP_SLOTS",
    "drives",
    "driven_by",
    "pip_exists",
    "pip_slot",
]

# Direction order used by the spreading formulas.
_DIRS = (Direction.EAST, Direction.NORTH, Direction.SOUTH, Direction.WEST)
_SINGLES = {
    Direction.EAST: SINGLE_E,
    Direction.NORTH: SINGLE_N,
    Direction.SOUTH: SINGLE_S,
    Direction.WEST: SINGLE_W,
}
_HEXES = {
    Direction.EAST: HEX_E,
    Direction.NORTH: HEX_N,
    Direction.SOUTH: HEX_S,
    Direction.WEST: HEX_W,
}
_DIR_INDEX = {d: i for i, d in enumerate(_DIRS)}

#: Pool of CLB input names a general-purpose wire may terminate on
#: (slice LUT/BX/BY inputs plus CE/SR control pins; CLK pins are reachable
#: from general routing too, as on the device, and from the global nets).
_INPUT_POOL = tuple(range(SLICE_IN_BASE, SLICE_IN_BASE + N_SLICE_IN)) + tuple(
    range(CTL_IN_BASE, CTL_IN_BASE + N_CTL_IN)
)
_N_INPUT_POOL = len(_INPUT_POOL)

#: Single-to-single turn strides, indexed [from_dir][to_dir] in E,N,S,W
#: order.  Values avoid 12 (which would collapse the k=2 target onto the
#: k=0 target) and include 19 for west->north so that SingleWest[5] drives
#: SingleNorth[0], matching the paper's Section 3.1 example.
_SINGLE_TURN_STRIDE = (
    (1, 5, 7, 11),   # from EAST to E,N,S,W
    (13, 1, 17, 7),  # from NORTH
    (19, 23, 1, 5),  # from SOUTH
    (7, 19, 11, 1),  # from WEST
)


def _build_tables() -> dict[int, tuple[int, ...]]:
    drives: dict[int, set[int]] = {n: set() for n in range(N_NAMES)}

    # -- slice outputs -> OMUX -------------------------------------------
    # Each slice output reaches 4 of the 8 OUT wires; the offsets mix
    # parities so every OUT is driven by 4 distinct slice outputs, and
    # S1_YQ (o = 7) reaches Out[1] as in the paper's Section 3.1 example.
    for o in range(N_SLICE_OUT):
        src = SLICE_OUT_BASE + o
        for k in (0, 2, 5, 7):
            drives[src].add(OUT[(o + k) % N_OUT])

    # -- OMUX -> all interconnect lengths (paper: outputs drive all) ------
    for j in range(N_OUT):
        src = OUT[j]
        for d in _DIRS:
            di = _DIR_INDEX[d]
            # 6 singles per direction, spread over the 24 indices
            # (Out[1] reaches SingleEast[5], per the paper's example)
            for m in (0, 2, 8, 10, 16, 18):
                drives[src].add(_SINGLES[d][(3 * j + 5 * di + m) % N_SINGLES_PER_DIR])
            # 2 hexes per direction
            for m in (0, 4):
                drives[src].add(_HEXES[d][(j + 3 * di + m) % N_HEXES_PER_DIR])
        # 2 horizontal + 2 vertical long-line taps
        drives[src].add(LONG_H[j % N_LONGS])
        drives[src].add(LONG_H[(j + 6) % N_LONGS])
        drives[src].add(LONG_V[(j + 3) % N_LONGS])
        drives[src].add(LONG_V[(j + 9) % N_LONGS])
        # feedback to inputs in the same logic block (local resource)
        for m in (0, 7, 13):
            drives[src].add(_INPUT_POOL[(2 * j + m) % _N_INPUT_POOL])

    # -- direct connections from the west neighbour's OMUX ----------------
    for j in range(N_OUT):
        src = DIRECT_W_OUT[j]
        for m in (1, 6, 11):
            drives[src].add(_INPUT_POOL[(2 * j + m) % _N_INPUT_POOL])

    # -- singles -> inputs, vertical longs, singles ------------------------
    for d in _DIRS:
        di = _DIR_INDEX[d]
        for i in range(N_SINGLES_PER_DIR):
            src = _SINGLES[d][i]
            # 3 CLB input taps (SingleSouth[0] reaches S0F3, per the paper)
            for m in (0, 7, 20):
                drives[src].add(_INPUT_POOL[(i + 4 * di + m) % _N_INPUT_POOL])
            # 2 vertical long-line taps ("singles drive ... vertical longs")
            drives[src].add(LONG_V[(i + di) % N_LONGS])
            drives[src].add(LONG_V[(i + di + 6) % N_LONGS])
            # 3 singles in every direction: straight-through (k = 0) plus
            # two turns at a per-direction-pair stride
            for d2 in _DIRS:
                dj = _DIR_INDEX[d2]
                stride = _SINGLE_TURN_STRIDE[di][dj]
                for k in (0, 1, 2):
                    tgt = _SINGLES[d2][(i + k * stride) % N_SINGLES_PER_DIR]
                    if tgt != src:
                        drives[src].add(tgt)

    # -- hexes -> singles and other hexes ----------------------------------
    for d in _DIRS:
        di = _DIR_INDEX[d]
        for i in range(N_HEXES_PER_DIR):
            src = _HEXES[d][i]
            for d2 in _DIRS:
                dj = _DIR_INDEX[d2]
                q = (3 * di + 5 * dj) % N_SINGLES_PER_DIR
                drives[src].add(_SINGLES[d2][(2 * i + q) % N_SINGLES_PER_DIR])
                drives[src].add(_SINGLES[d2][(2 * i + q + 12) % N_SINGLES_PER_DIR])
                r = (di + 2 * dj + 1) % N_HEXES_PER_DIR
                for rr in (r, r + 5):
                    tgt = _HEXES[d2][(i + rr) % N_HEXES_PER_DIR]
                    if tgt != src:
                        drives[src].add(tgt)

    # -- longs -> hexes only ------------------------------------------------
    for i in range(N_LONGS):
        for d in (Direction.EAST, Direction.WEST, Direction.NORTH, Direction.SOUTH):
            drives[LONG_H[i]].add(_HEXES[d][i % N_HEXES_PER_DIR])
            drives[LONG_H[i]].add(_HEXES[d][(i + 6) % N_HEXES_PER_DIR])
            drives[LONG_V[i]].add(_HEXES[d][(i + 3) % N_HEXES_PER_DIR])
            drives[LONG_V[i]].add(_HEXES[d][(i + 9) % N_HEXES_PER_DIR])

    # -- global clock nets -> clock pins only -------------------------------
    for g in GCLK:
        drives[g].add(S0_CLK)
        drives[g].add(S1_CLK)

    # -- IOBs (Section 6 future work, implemented) ---------------------------
    # An input pad drives into the general routing like a logic output:
    # singles in every direction plus a pair of hexes (the perimeter tile
    # filters which of these physically exist).
    for k in range(N_IOB_PER_TILE):
        src = IOB_IN[k]
        for d in _DIRS:
            di = _DIR_INDEX[d]
            for m in (0, 6, 13, 19):
                drives[src].add(_SINGLES[d][(7 * k + 5 * di + m) % N_SINGLES_PER_DIR])
            drives[src].add(_HEXES[d][(3 * k + di) % N_HEXES_PER_DIR])
    # An output pad is reached like a logic input: from singles (a third of
    # them each) and from the OMUX for the registered fast-output path.
    for d in _DIRS:
        di = _DIR_INDEX[d]
        for i in range(N_SINGLES_PER_DIR):
            drives[_SINGLES[d][i]].add(IOB_OUT[(i + di) % N_IOB_PER_TILE])
    for j in range(N_OUT):
        drives[OUT[j]].add(IOB_OUT[j % N_IOB_PER_TILE])

    # Hex wires must not drive the same physical wire they are (no
    # self loops exist at name level because a hex name never appears in
    # its own drive set by construction); sanity-check that here.
    for n, ds in drives.items():
        assert n not in ds, f"self-drive generated for {wires.wire_name(n)}"

    return {n: tuple(sorted(ds)) for n, ds in drives.items()}


#: ``DRIVES[name]`` -> tuple of names this wire can drive at a tile.
DRIVES: dict[int, tuple[int, ...]] = _build_tables()

#: ``DRIVEN_BY[name]`` -> tuple of names that can drive this wire at a tile.
DRIVEN_BY: dict[int, tuple[int, ...]] = {}
for _src, _targets in DRIVES.items():
    for _t in _targets:
        DRIVEN_BY.setdefault(_t, ())
for _src, _targets in DRIVES.items():
    for _t in _targets:
        DRIVEN_BY[_t] = DRIVEN_BY[_t] + (_src,)
for _n in range(N_NAMES):
    DRIVEN_BY.setdefault(_n, ())
DRIVEN_BY = {n: tuple(sorted(v)) for n, v in DRIVEN_BY.items()}

#: Deterministic enumeration of every name-level PIP; its position is the
#: PIP's configuration-bit slot inside a tile's config region (see
#: :mod:`repro.jbits.bitstream`).
PIP_LIST: tuple[tuple[int, int], ...] = tuple(
    (src, dst) for src in sorted(DRIVES) for dst in DRIVES[src]
)
PIP_SLOT: dict[tuple[int, int], int] = {p: i for i, p in enumerate(PIP_LIST)}
N_PIP_SLOTS = len(PIP_LIST)


def drives(name: int) -> tuple[int, ...]:
    """Names this wire can drive through same-tile PIPs."""
    return DRIVES[name]


def driven_by(name: int) -> tuple[int, ...]:
    """Names that can drive this wire through same-tile PIPs."""
    return DRIVEN_BY[name]


def pip_exists(from_name: int, to_name: int) -> bool:
    """True if a name-level PIP ``from_name -> to_name`` exists."""
    return (from_name, to_name) in PIP_SLOT


def pip_slot(from_name: int, to_name: int) -> int:
    """Configuration-bit slot of a name-level PIP within a tile region."""
    return PIP_SLOT[(from_name, to_name)]
