"""Architecture description of the simulated Virtex-class fabric.

This package is the reproduction of the paper's "architecture description
file": wire name space (:mod:`~repro.arch.wires`), template classification
(:mod:`~repro.arch.templates`), GRM connectivity tables
(:mod:`~repro.arch.connectivity`, the proprietary-routing-database
substitute), the device catalogue (:mod:`~repro.arch.devices`), and the
:class:`~repro.arch.virtex.VirtexArch` facade that routers are written
against.
"""

from . import connectivity, devices, templates, wires
from .devices import PARTS, DevicePart, part, part_names
from .templates import TemplateValue, template_value_of
from .virtex import N_OWNED, VirtexArch
from .wires import Direction, WireClass, WireInfo, wire_info, wire_name

__all__ = [
    "connectivity",
    "devices",
    "templates",
    "wires",
    "PARTS",
    "DevicePart",
    "part",
    "part_names",
    "TemplateValue",
    "template_value_of",
    "N_OWNED",
    "VirtexArch",
    "Direction",
    "WireClass",
    "WireInfo",
    "wire_info",
    "wire_name",
]
