"""Wire name space of the simulated Virtex-class tile.

The paper describes a Java "architecture description" class in which *each
wire is defined by a unique integer*.  This module is that class's name
space: every routing resource a tile can refer to gets a small-integer
*name id*, together with static metadata (resource class, direction,
index within its class, and physical length in CLBs).

Names versus canonical wires
----------------------------
A *name* is tile-relative: ``SINGLE_E[5]`` at tile ``(5, 7)`` and
``SINGLE_W[5]`` at tile ``(5, 8)`` are two names for one physical wire
(exactly the aliasing used in the paper's Section 3.1 routing example).
Canonicalisation of names to physical wire instances lives in
:mod:`repro.device.resource`; this module only defines the per-tile name
ids and their classification.

Per-tile name layout (``N_NAMES`` total)::

    0   ..   7   OUT[0..7]          output multiplexer (OMUX) wires
    8   ..  15   slice outputs      S0_X S0_Y S0_XQ S0_YQ S1_X S1_Y S1_XQ S1_YQ
    16  ..  35   slice inputs       S0_F1..F4 S0_G1..G4 S0_BX S0_BY, then S1_*
    36  ..  41   control inputs     S0_CLK S0_CE S0_SR S1_CLK S1_CE S1_SR
    42  ..  65   SINGLE_E[0..23]    single-length lines heading east
    66  ..  89   SINGLE_N[0..23]
    90  .. 113   SINGLE_S[0..23]
    114 .. 137   SINGLE_W[0..23]
    138 .. 149   HEX_E[0..11]       hex-length lines (12 accessible per dir)
    150 .. 161   HEX_N[0..11]
    162 .. 173   HEX_S[0..11]
    174 .. 185   HEX_W[0..11]
    186 .. 197   LONG_H[0..11]      chip-spanning horizontal long lines
    198 .. 209   LONG_V[0..11]      chip-spanning vertical long lines
    210 .. 213   GCLK[0..3]         dedicated global (clock) nets
    214 .. 221   DIRECT_W_OUT[0..7] west neighbour's OUT wires as seen here
                                    (the "direct connection between
                                    horizontally adjacent CLBs" of Sec. 2)
    222 .. 224   IOB_IN[0..2]       pad-to-fabric wires (perimeter tiles only;
                                    the paper's Section 6 IOB future work)
    225 .. 227   IOB_OUT[0..2]      fabric-to-pad wires (perimeter tiles only)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "WireClass",
    "Direction",
    "WireInfo",
    "N_NAMES",
    "N_SINGLES_PER_DIR",
    "N_HEXES_PER_DIR",
    "N_LONGS",
    "N_OUT",
    "N_SLICE_OUT",
    "N_SLICE_IN",
    "N_CTL_IN",
    "N_GCLK",
    "OUT",
    "SLICE_OUT_BASE",
    "SLICE_IN_BASE",
    "CTL_IN_BASE",
    "SINGLE_E",
    "SINGLE_N",
    "SINGLE_S",
    "SINGLE_W",
    "HEX_E",
    "HEX_N",
    "HEX_S",
    "HEX_W",
    "LONG_H",
    "LONG_V",
    "GCLK",
    "DIRECT_W_OUT",
    "IOB_IN",
    "IOB_OUT",
    "N_IOB_PER_TILE",
    "S0_X",
    "S0_Y",
    "S0_XQ",
    "S0_YQ",
    "S1_X",
    "S1_Y",
    "S1_XQ",
    "S1_YQ",
    "S0F",
    "S0G",
    "S1F",
    "S1G",
    "S0_BX",
    "S0_BY",
    "S1_BX",
    "S1_BY",
    "S0_CLK",
    "S0_CE",
    "S0_SR",
    "S1_CLK",
    "S1_CE",
    "S1_SR",
    "WIRE_INFO",
    "wire_info",
    "wire_name",
    "parse_wire_name",
    "is_source_name",
    "is_sink_name",
    "ALL_SINK_NAMES",
    "ALL_SOURCE_NAMES",
]


class WireClass(enum.IntEnum):
    """Resource classes of the Virtex routing fabric (paper Section 2)."""

    OUT = 0        #: OMUX output wire; fans out of the CLB into the GRM
    SLICE_OUT = 1  #: logic-block output pin (X/Y/XQ/YQ of a slice)
    SLICE_IN = 2   #: logic-block input pin (LUT inputs, BX/BY)
    CTL_IN = 3     #: control input pin (CLK/CE/SR)
    SINGLE = 4     #: single-length general-purpose line
    HEX = 5        #: hex-length general-purpose line
    LONG_H = 6     #: horizontal long line
    LONG_V = 7     #: vertical long line
    GCLK = 8       #: dedicated global clock net
    DIRECT = 9     #: direct connection from the west neighbour's OMUX
    IOB_IN = 10    #: input-buffer output: a pad driving into the fabric
    IOB_OUT = 11   #: output-buffer input: the fabric driving a pad


class Direction(enum.IntEnum):
    """Signal directions.  NORTH increases ``row``, EAST increases ``col``.

    This matches the coordinate walk of the paper's running example:
    ``(5,7) --east--> (5,8) --north--> (6,8)``.
    """

    NONE = 0
    EAST = 1
    NORTH = 2
    SOUTH = 3
    WEST = 4
    HORIZONTAL = 5  #: long lines spanning a row
    VERTICAL = 6    #: long lines spanning a column

    @property
    def delta(self) -> tuple[int, int]:
        """(drow, dcol) step of one unit of travel in this direction."""
        return _DELTAS[self]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITES[self]


_DELTAS = {
    Direction.NONE: (0, 0),
    Direction.EAST: (0, 1),
    Direction.NORTH: (1, 0),
    Direction.SOUTH: (-1, 0),
    Direction.WEST: (0, -1),
    Direction.HORIZONTAL: (0, 0),
    Direction.VERTICAL: (0, 0),
}

_OPPOSITES = {
    Direction.NONE: Direction.NONE,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.HORIZONTAL: Direction.HORIZONTAL,
    Direction.VERTICAL: Direction.VERTICAL,
}


# ---------------------------------------------------------------------------
# Class sizes (paper Section 2 / Virtex data book numbers quoted there)
# ---------------------------------------------------------------------------

N_OUT = 8              #: OMUX width
N_SLICE_OUT = 8        #: two slices x (X, Y, XQ, YQ)
N_SLICE_IN = 20        #: two slices x (F1-4, G1-4, BX, BY)
N_CTL_IN = 6           #: two slices x (CLK, CE, SR)
N_SINGLES_PER_DIR = 24  #: "24 single length lines in each of the four directions"
N_HEXES_PER_DIR = 12    #: "only 12 in each direction can be accessed"
N_LONGS = 12            #: "12 long lines that run horizontal, or vertical"
N_GCLK = 4              #: "four dedicated global nets"
N_IOB_PER_TILE = 3      #: pads per perimeter CLB (Virtex pads per edge CLB)

# --- name id bases ---------------------------------------------------------

_base = 0


def _alloc(n: int) -> int:
    global _base
    b = _base
    # import-time only: name bases are allocated once, under the import
    # lock, before any thread can see this module
    _base += n  # repro: noqa RPR002
    return b


_OUT_BASE = _alloc(N_OUT)
SLICE_OUT_BASE = _alloc(N_SLICE_OUT)
SLICE_IN_BASE = _alloc(N_SLICE_IN)
CTL_IN_BASE = _alloc(N_CTL_IN)
_SINGLE_E_BASE = _alloc(N_SINGLES_PER_DIR)
_SINGLE_N_BASE = _alloc(N_SINGLES_PER_DIR)
_SINGLE_S_BASE = _alloc(N_SINGLES_PER_DIR)
_SINGLE_W_BASE = _alloc(N_SINGLES_PER_DIR)
_HEX_E_BASE = _alloc(N_HEXES_PER_DIR)
_HEX_N_BASE = _alloc(N_HEXES_PER_DIR)
_HEX_S_BASE = _alloc(N_HEXES_PER_DIR)
_HEX_W_BASE = _alloc(N_HEXES_PER_DIR)
_LONG_H_BASE = _alloc(N_LONGS)
_LONG_V_BASE = _alloc(N_LONGS)
_GCLK_BASE = _alloc(N_GCLK)
_DIRECT_BASE = _alloc(N_OUT)
_IOB_IN_BASE = _alloc(N_IOB_PER_TILE)
_IOB_OUT_BASE = _alloc(N_IOB_PER_TILE)
N_NAMES = _base

# --- name arrays, indexable like the paper's examples ----------------------

OUT = tuple(range(_OUT_BASE, _OUT_BASE + N_OUT))
SINGLE_E = tuple(range(_SINGLE_E_BASE, _SINGLE_E_BASE + N_SINGLES_PER_DIR))
SINGLE_N = tuple(range(_SINGLE_N_BASE, _SINGLE_N_BASE + N_SINGLES_PER_DIR))
SINGLE_S = tuple(range(_SINGLE_S_BASE, _SINGLE_S_BASE + N_SINGLES_PER_DIR))
SINGLE_W = tuple(range(_SINGLE_W_BASE, _SINGLE_W_BASE + N_SINGLES_PER_DIR))
HEX_E = tuple(range(_HEX_E_BASE, _HEX_E_BASE + N_HEXES_PER_DIR))
HEX_N = tuple(range(_HEX_N_BASE, _HEX_N_BASE + N_HEXES_PER_DIR))
HEX_S = tuple(range(_HEX_S_BASE, _HEX_S_BASE + N_HEXES_PER_DIR))
HEX_W = tuple(range(_HEX_W_BASE, _HEX_W_BASE + N_HEXES_PER_DIR))
LONG_H = tuple(range(_LONG_H_BASE, _LONG_H_BASE + N_LONGS))
LONG_V = tuple(range(_LONG_V_BASE, _LONG_V_BASE + N_LONGS))
GCLK = tuple(range(_GCLK_BASE, _GCLK_BASE + N_GCLK))
DIRECT_W_OUT = tuple(range(_DIRECT_BASE, _DIRECT_BASE + N_OUT))
IOB_IN = tuple(range(_IOB_IN_BASE, _IOB_IN_BASE + N_IOB_PER_TILE))
IOB_OUT = tuple(range(_IOB_OUT_BASE, _IOB_OUT_BASE + N_IOB_PER_TILE))

# --- slice pin names -------------------------------------------------------

S0_X, S0_Y, S0_XQ, S0_YQ, S1_X, S1_Y, S1_XQ, S1_YQ = range(
    SLICE_OUT_BASE, SLICE_OUT_BASE + N_SLICE_OUT
)

#: LUT input pins: S0F[k] is the paper's ``S0F1`` .. ``S0F4`` for k = 1..4.
S0F = (None,) + tuple(range(SLICE_IN_BASE, SLICE_IN_BASE + 4))
S0G = (None,) + tuple(range(SLICE_IN_BASE + 4, SLICE_IN_BASE + 8))
S0_BX = SLICE_IN_BASE + 8
S0_BY = SLICE_IN_BASE + 9
S1F = (None,) + tuple(range(SLICE_IN_BASE + 10, SLICE_IN_BASE + 14))
S1G = (None,) + tuple(range(SLICE_IN_BASE + 14, SLICE_IN_BASE + 18))
S1_BX = SLICE_IN_BASE + 18
S1_BY = SLICE_IN_BASE + 19

S0_CLK, S0_CE, S0_SR, S1_CLK, S1_CE, S1_SR = range(CTL_IN_BASE, CTL_IN_BASE + N_CTL_IN)


@dataclass(frozen=True, slots=True)
class WireInfo:
    """Static description of one wire name (the paper's per-wire record:
    "a description of each wire, including how long it is, its direction,
    which wires can drive it, and which wires it can drive").

    Connectivity (drives / driven-by) is kept separately in
    :mod:`repro.arch.connectivity` because it is shared, table-driven data.
    """

    name: int             #: the unique integer naming this wire at a tile
    wire_class: WireClass
    direction: Direction
    index: int            #: index within its class (e.g. 5 of SINGLE_E[5])
    length: int           #: span in CLBs (0 for tile-local resources)
    label: str            #: human-readable name, e.g. ``"SingleEast[5]"``


def _build_wire_info() -> tuple[WireInfo, ...]:
    info: list[WireInfo] = []

    def add(name, cls, direction, index, length, label):
        info.append(WireInfo(name, cls, direction, index, length, label))

    for i, n in enumerate(OUT):
        add(n, WireClass.OUT, Direction.NONE, i, 0, f"Out[{i}]")

    slice_out_labels = ("S0_X", "S0_Y", "S0_XQ", "S0_YQ", "S1_X", "S1_Y", "S1_XQ", "S1_YQ")
    for i, lab in enumerate(slice_out_labels):
        add(SLICE_OUT_BASE + i, WireClass.SLICE_OUT, Direction.NONE, i, 0, lab)

    slice_in_labels = (
        ["S0F" + str(k) for k in range(1, 5)]
        + ["S0G" + str(k) for k in range(1, 5)]
        + ["S0_BX", "S0_BY"]
        + ["S1F" + str(k) for k in range(1, 5)]
        + ["S1G" + str(k) for k in range(1, 5)]
        + ["S1_BX", "S1_BY"]
    )
    for i, lab in enumerate(slice_in_labels):
        add(SLICE_IN_BASE + i, WireClass.SLICE_IN, Direction.NONE, i, 0, lab)

    ctl_labels = ("S0_CLK", "S0_CE", "S0_SR", "S1_CLK", "S1_CE", "S1_SR")
    for i, lab in enumerate(ctl_labels):
        add(CTL_IN_BASE + i, WireClass.CTL_IN, Direction.NONE, i, 0, lab)

    for direction, base, word in (
        (Direction.EAST, _SINGLE_E_BASE, "East"),
        (Direction.NORTH, _SINGLE_N_BASE, "North"),
        (Direction.SOUTH, _SINGLE_S_BASE, "South"),
        (Direction.WEST, _SINGLE_W_BASE, "West"),
    ):
        for i in range(N_SINGLES_PER_DIR):
            add(base + i, WireClass.SINGLE, direction, i, 1, f"Single{word}[{i}]")

    for direction, base, word in (
        (Direction.EAST, _HEX_E_BASE, "East"),
        (Direction.NORTH, _HEX_N_BASE, "North"),
        (Direction.SOUTH, _HEX_S_BASE, "South"),
        (Direction.WEST, _HEX_W_BASE, "West"),
    ):
        for i in range(N_HEXES_PER_DIR):
            add(base + i, WireClass.HEX, direction, i, 6, f"Hex{word}[{i}]")

    for i in range(N_LONGS):
        add(_LONG_H_BASE + i, WireClass.LONG_H, Direction.HORIZONTAL, i, -1, f"LongHorizontal[{i}]")
    for i in range(N_LONGS):
        add(_LONG_V_BASE + i, WireClass.LONG_V, Direction.VERTICAL, i, -1, f"LongVertical[{i}]")
    for i in range(N_GCLK):
        add(_GCLK_BASE + i, WireClass.GCLK, Direction.NONE, i, -1, f"GlobalClk[{i}]")
    for i in range(N_OUT):
        add(_DIRECT_BASE + i, WireClass.DIRECT, Direction.WEST, i, 1, f"DirectWestOut[{i}]")
    for i in range(N_IOB_PER_TILE):
        add(_IOB_IN_BASE + i, WireClass.IOB_IN, Direction.NONE, i, 0, f"IobIn[{i}]")
    for i in range(N_IOB_PER_TILE):
        add(_IOB_OUT_BASE + i, WireClass.IOB_OUT, Direction.NONE, i, 0, f"IobOut[{i}]")

    info.sort(key=lambda w: w.name)
    assert [w.name for w in info] == list(range(N_NAMES))
    return tuple(info)


WIRE_INFO: tuple[WireInfo, ...] = _build_wire_info()

_LABEL_TO_NAME = {w.label: w.name for w in WIRE_INFO}


def wire_info(name: int) -> WireInfo:
    """Return the static metadata record for a wire name."""
    return WIRE_INFO[name]


def wire_name(name: int) -> str:
    """Human-readable label of a wire name, e.g. ``SingleEast[5]``."""
    return WIRE_INFO[name].label


def parse_wire_name(label: str) -> int:
    """Inverse of :func:`wire_name`.  Raises ``KeyError`` for unknown labels."""
    return _LABEL_TO_NAME[label]


def is_source_name(name: int) -> bool:
    """True if this name is a pure signal source (slice output, global,
    or an input pad driving into the fabric)."""
    cls = WIRE_INFO[name].wire_class
    return cls in (WireClass.SLICE_OUT, WireClass.GCLK, WireClass.IOB_IN)


def is_sink_name(name: int) -> bool:
    """True if this name is a pure signal sink (slice/control input or an
    output pad)."""
    cls = WIRE_INFO[name].wire_class
    return cls in (WireClass.SLICE_IN, WireClass.CTL_IN, WireClass.IOB_OUT)


#: CLB-internal sinks (inputs/controls) — excludes pads, which exist only
#: on perimeter tiles
ALL_SINK_NAMES = tuple(
    n
    for n in range(N_NAMES)
    if WIRE_INFO[n].wire_class in (WireClass.SLICE_IN, WireClass.CTL_IN)
)
ALL_SOURCE_NAMES = tuple(
    n for n in range(N_NAMES) if WIRE_INFO[n].wire_class is WireClass.SLICE_OUT
)
