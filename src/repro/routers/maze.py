"""Maze routing: Dijkstra/A* search over the device wire graph.

The paper names the maze router (Lee; Sherwani [4], Brown et al. [5]) as
the fallback implementation for the auto-routing calls.  This one is a
cost-driven wavefront over *canonical wires*: nodes are wire instances,
edges are architecture-legal PIPs at any presence point of a wire, and
wires already in use by other nets are impassable.

``reuse`` makes a set of wires free starting points at zero cost — that
is how fanout routing reuses the already-routed tree of the same net
("for each sink, the router attempts to reuse the previous paths as much
as possible").

The search itself runs on the shared compiled-graph kernel
(:mod:`repro.core.kernel`): flat CSR adjacency, epoch-stamped state and
unified :class:`~repro.core.kernel.SearchStats` instrumentation.  The
pre-kernel implementation survives as
:func:`repro.routers._reference.route_maze_reference` (parity oracle and
benchmark baseline).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Collection, Iterable

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..core.deadline import Deadline
from ..core.kernel import SearchStats, dijkstra, extract_plan, record_global
from ..device.fabric import Device
from .base import PlanPip

__all__ = ["route_maze", "MazeResult"]

#: Wire class of every name, flat (avoids wire_info() in heuristics).
_NAME_CLASS: tuple[WireClass, ...] = tuple(
    wires.wire_info(n).wire_class for n in range(wires.N_NAMES)
)
_NAME_LENGTH: tuple[int, ...] = tuple(
    wires.wire_info(n).length for n in range(wires.N_NAMES)
)
_LONG_LO = wires.LONG_H[0]
_LONG_HI = wires.LONG_V[-1]


class MazeResult:
    """Outcome of a maze search: the plan and the target it reached."""

    __slots__ = ("plan", "target", "cost", "stats")

    def __init__(
        self,
        plan: list[PlanPip],
        target: int,
        cost: float,
        nodes: int,
        faults_avoided: int = 0,
        stats: SearchStats | None = None,
    ):
        self.plan = plan
        self.target = target
        self.cost = cost
        if stats is None:
            stats = SearchStats(
                searches=1, nodes_expanded=nodes, faults_avoided=faults_avoided
            )
        #: unified search instrumentation (expansions, pushes, faults)
        self.stats = stats

    @property
    def nodes_expanded(self) -> int:
        return self.stats.nodes_expanded

    @property
    def faults_avoided(self) -> int:
        """Edges the search skipped because they touched a faulty resource."""
        return self.stats.faults_avoided

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"MazeResult({len(self.plan)} pips, cost={self.cost:.2f}, "
            f"expanded={self.nodes_expanded})"
        )


def _target_tiles(device: Device, targets: Collection[int]) -> list[tuple[int, int]]:
    tile_coords = device.arch.tile_coords
    return [tile_coords(t) for t in targets]


@lru_cache(maxsize=32)
def _name_block_table(
    use_longs: bool, avoid: frozenset[WireClass]
) -> bytes | None:
    """Per-name skip mask for ``use_longs``/``avoid_classes`` filtering."""
    if use_longs and not avoid:
        return None
    return bytes(
        1
        if ((not use_longs and _LONG_LO <= n <= _LONG_HI)
            or _NAME_CLASS[n] in avoid)
        else 0
        for n in range(wires.N_NAMES)
    )


def route_maze(
    device: Device,
    sources: Iterable[int],
    targets: Collection[int],
    *,
    reuse: Collection[int] = (),
    use_longs: bool = True,
    avoid_classes: Collection[WireClass] = (),
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
) -> MazeResult:
    """Find a cheapest free path from any source wire to any target wire.

    Parameters
    ----------
    sources:
        Canonical wire ids the signal is already on (the net source, or
        the whole routed tree when extending a net).
    targets:
        Canonical wire ids to reach (typically one sink pin; several when
        any of a port's pins would do).
    reuse:
        Additional zero-cost start wires (same-net resources).
    use_longs:
        When False, long lines are not considered — the state of the
        paper's initial fanout implementation ("currently long lines are
        not supported"); True enables them (the paper's future work).
    avoid_classes:
        Additional wire classes the search must not use (e.g. hexes, to
        deliberately slow a branch for skew equalisation).
    heuristic_weight:
        0 gives plain Dijkstra; > 0 adds an A* distance-to-target bias
        (per-CLB rate of the cheapest wire class, scaled by the weight;
        weights <= 1 keep the bias conservative).
    max_nodes:
        Expansion budget before giving up with
        :class:`~repro.errors.UnroutableError`.
    deadline:
        Optional cooperative :class:`~repro.core.deadline.Deadline`; a
        search that runs past it raises
        :class:`~repro.errors.DeadlineExceededError`.

    Returns a :class:`MazeResult` whose plan drives wires in source-to-
    sink order.  Raises :class:`~repro.errors.UnroutableError` when no
    free path exists.
    """
    arch = device.arch
    faults = device.faults
    fault_mask = faults.unusable if faults is not None else None
    target_set = set(targets)
    if not target_set:
        raise errors.UnroutableError("no targets given")
    reuse_set = set(reuse)
    source_set = set(sources)
    start_set = source_set | reuse_set
    if not start_set:
        raise errors.UnroutableError("no sources given")
    if fault_mask is not None:
        for t in target_set:
            if fault_mask[t]:
                r, c, n = arch.primary_name(t)
                raise errors.UnroutableError(
                    "target wire is a faulty fabric resource",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                )
    hit = target_set & start_set
    if hit:
        return MazeResult([], hit.pop(), 0.0, 0)

    graph = device.routing_graph()
    state = device.search_state()

    if heuristic_weight > 0.0:
        goal_tiles = _target_tiles(device, target_set)
        # Cheapest possible per-CLB rate: hexes cover 6 CLBs at their cost;
        # long lines can beat that on big spans, so the bias is scaled down.
        rate = heuristic_weight * min(
            arch.wire_cost(wires.HEX_E[0]) / 6.0,
            1.0,
        )
        hex_n0 = wires.HEX_N[0]
        single_n0 = wires.SINGLE_N[0]
        p_row, p_col, p_name = graph.tiles()

        if len(goal_tiles) == 1:
            # dominant case (one sink pin): no min-over-goals machinery
            tr, tc = goal_tiles[0]

            def h(canon: int, to_name: int, row: int, col: int) -> float:
                # estimate from the point of the driven wire nearest the
                # goal: a hex driven toward it should look 6 tiles closer
                cls = _NAME_CLASS[to_name]
                if cls is WireClass.SINGLE or cls is WireClass.HEX:
                    r0 = p_row[canon]
                    c0 = p_col[canon]
                    length = _NAME_LENGTH[to_name]
                    a = abs(r0 - tr) + abs(c0 - tc)
                    if p_name[canon] >= (
                        hex_n0 if cls is WireClass.HEX else single_n0
                    ):
                        b = abs(r0 + length - tr) + abs(c0 - tc)
                    else:
                        b = abs(r0 - tr) + abs(c0 + length - tc)
                    return rate * (a if a < b else b)
                if cls is WireClass.LONG_H:
                    return rate * abs(p_row[canon] - tr)
                if cls is WireClass.LONG_V:
                    return rate * abs(p_col[canon] - tc)
                return rate * (abs(row - tr) + abs(col - tc))

        else:

            def h(canon: int, to_name: int, row: int, col: int) -> float:
                # estimate from the point of the driven wire nearest a goal:
                # a hex driven toward the goal should look 6 tiles closer
                cls = _NAME_CLASS[to_name]
                if cls is WireClass.SINGLE or cls is WireClass.HEX:
                    r0 = p_row[canon]
                    c0 = p_col[canon]
                    length = _NAME_LENGTH[to_name]
                    vertical = p_name[canon] >= (
                        hex_n0 if cls is WireClass.HEX else single_n0
                    )
                    if vertical:
                        ends = ((r0, c0), (r0 + length, c0))  # north-going
                    else:
                        ends = ((r0, c0), (r0, c0 + length))  # east-going
                    return rate * min(
                        abs(er - tr) + abs(ec - tc)
                        for er, ec in ends
                        for tr, tc in goal_tiles
                    )
                if cls is WireClass.LONG_H:
                    r0 = p_row[canon]
                    return rate * min(abs(r0 - tr) for tr, _ in goal_tiles)
                if cls is WireClass.LONG_V:
                    c0 = p_col[canon]
                    return rate * min(abs(c0 - tc) for _, tc in goal_tiles)
                return rate * min(
                    abs(row - tr) + abs(col - tc) for tr, tc in goal_tiles
                )

    else:
        h = None

    stats = SearchStats()
    goal, goal_cost, expanded, _pushes, faults_avoided, exceeded, timed_out = dijkstra(
        graph,
        state,
        start_set,
        target_set,
        occupied=device.state.occupied,
        allow=reuse_set,
        name_blocked=_name_block_table(use_longs, frozenset(avoid_classes)),
        h=h,
        fault_node=fault_mask,
        fault_edge=graph.fault_edge_mask(faults) if faults is not None else None,
        max_nodes=max_nodes,
        stats=stats,
        deadline=deadline,
    )
    # publish before the outcome branches: failed searches count too
    record_global(stats)

    if timed_out:
        tr, tc, tn = arch.primary_name(next(iter(target_set)))
        raise errors.DeadlineExceededError(
            "maze search abandoned: deadline expired",
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
            search_stats=stats,
        )
    if exceeded:
        raise errors.UnroutableError(
            f"maze search exceeded {max_nodes} node expansions",
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
            search_stats=stats,
        )
    if goal < 0:
        tr, tc, tn = arch.primary_name(next(iter(target_set)))
        raise errors.UnroutableError(
            "no free path from sources to targets"
            + ("" if use_longs else " (long lines disabled)"),
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
            search_stats=stats,
        )

    plan = extract_plan(graph, state, goal)
    return MazeResult(plan, goal, goal_cost, expanded, faults_avoided, stats)
