"""Maze routing: Dijkstra/A* search over the device wire graph.

The paper names the maze router (Lee; Sherwani [4], Brown et al. [5]) as
the fallback implementation for the auto-routing calls.  This one is a
cost-driven wavefront over *canonical wires*: nodes are wire instances,
edges are architecture-legal PIPs at any presence point of a wire, and
wires already in use by other nets are impassable.

``reuse`` makes a set of wires free starting points at zero cost — that
is how fanout routing reuses the already-routed tree of the same net
("for each sink, the router attempts to reuse the previous paths as much
as possible").

The search itself runs on the shared compiled-graph kernel
(:mod:`repro.core.kernel`): flat CSR adjacency, epoch-stamped state and
unified :class:`~repro.core.kernel.SearchStats` instrumentation.  The
pre-kernel implementation survives as
:func:`repro.routers._reference.route_maze_reference` (parity oracle and
benchmark baseline).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import Callable, Collection, Iterable, Sequence

import numpy as np

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..core.deadline import Deadline
from ..core.kernel import (
    BatchSearchState,
    SearchStats,
    dijkstra,
    dijkstra_batch,
    extract_plan,
    extract_plan_lane,
    record_global,
)
from ..device.fabric import Device
from .base import PlanPip

__all__ = ["route_maze", "route_maze_batch", "MazeResult", "MazeBatchResult"]

#: Wire class of every name, flat (avoids wire_info() in heuristics).
_NAME_CLASS: tuple[WireClass, ...] = tuple(
    wires.wire_info(n).wire_class for n in range(wires.N_NAMES)
)
_NAME_LENGTH: tuple[int, ...] = tuple(
    wires.wire_info(n).length for n in range(wires.N_NAMES)
)
_LONG_LO = wires.LONG_H[0]
_LONG_HI = wires.LONG_V[-1]

class MazeResult:
    """Outcome of a maze search: the plan and the target it reached."""

    __slots__ = ("plan", "target", "cost", "stats")

    def __init__(
        self,
        plan: list[PlanPip],
        target: int,
        cost: float,
        nodes: int,
        faults_avoided: int = 0,
        stats: SearchStats | None = None,
    ):
        self.plan = plan
        self.target = target
        self.cost = cost
        if stats is None:
            stats = SearchStats(
                searches=1, nodes_expanded=nodes, faults_avoided=faults_avoided
            )
        #: unified search instrumentation (expansions, pushes, faults)
        self.stats = stats

    @property
    def nodes_expanded(self) -> int:
        return self.stats.nodes_expanded

    @property
    def faults_avoided(self) -> int:
        """Edges the search skipped because they touched a faulty resource."""
        return self.stats.faults_avoided

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"MazeResult({len(self.plan)} pips, cost={self.cost:.2f}, "
            f"expanded={self.nodes_expanded})"
        )


def _target_tiles(device: Device, targets: Collection[int]) -> list[tuple[int, int]]:
    tile_coords = device.arch.tile_coords
    return [tile_coords(t) for t in targets]


@lru_cache(maxsize=32)
def _name_block_table(
    use_longs: bool, avoid: frozenset[WireClass]
) -> bytes | None:
    """Per-name skip mask for ``use_longs``/``avoid_classes`` filtering."""
    if use_longs and not avoid:
        return None
    return bytes(
        1
        if ((not use_longs and _LONG_LO <= n <= _LONG_HI)
            or _NAME_CLASS[n] in avoid)
        else 0
        for n in range(wires.N_NAMES)
    )


def route_maze(
    device: Device,
    sources: Iterable[int],
    targets: Collection[int],
    *,
    reuse: Collection[int] = (),
    use_longs: bool = True,
    avoid_classes: Collection[WireClass] = (),
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
) -> MazeResult:
    """Find a cheapest free path from any source wire to any target wire.

    Parameters
    ----------
    sources:
        Canonical wire ids the signal is already on (the net source, or
        the whole routed tree when extending a net).
    targets:
        Canonical wire ids to reach (typically one sink pin; several when
        any of a port's pins would do).
    reuse:
        Additional zero-cost start wires (same-net resources).
    use_longs:
        When False, long lines are not considered — the state of the
        paper's initial fanout implementation ("currently long lines are
        not supported"); True enables them (the paper's future work).
    avoid_classes:
        Additional wire classes the search must not use (e.g. hexes, to
        deliberately slow a branch for skew equalisation).
    heuristic_weight:
        0 gives plain Dijkstra; > 0 adds an A* distance-to-target bias
        (per-CLB rate of the cheapest wire class, scaled by the weight;
        weights <= 1 keep the bias conservative).
    max_nodes:
        Expansion budget before giving up with
        :class:`~repro.errors.UnroutableError`.
    deadline:
        Optional cooperative :class:`~repro.core.deadline.Deadline`; a
        search that runs past it raises
        :class:`~repro.errors.DeadlineExceededError`.

    Returns a :class:`MazeResult` whose plan drives wires in source-to-
    sink order.  Raises :class:`~repro.errors.UnroutableError` when no
    free path exists.
    """
    arch = device.arch
    faults = device.faults
    fault_mask = faults.unusable if faults is not None else None
    target_set = set(targets)
    if not target_set:
        raise errors.UnroutableError("no targets given")
    reuse_set = set(reuse)
    source_set = set(sources)
    start_set = source_set | reuse_set
    if not start_set:
        raise errors.UnroutableError("no sources given")
    if fault_mask is not None:
        for t in target_set:
            if fault_mask[t]:
                r, c, n = arch.primary_name(t)
                raise errors.UnroutableError(
                    "target wire is a faulty fabric resource",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                )
    hit = target_set & start_set
    if hit:
        return MazeResult([], hit.pop(), 0.0, 0)

    graph = device.routing_graph()
    state = device.search_state()

    if heuristic_weight > 0.0:
        h = _make_heuristic(
            graph,
            _target_tiles(device, target_set),
            _heuristic_rate(arch, heuristic_weight),
        )
    else:
        h = None

    stats = SearchStats()
    goal, goal_cost, expanded, _pushes, faults_avoided, exceeded, timed_out = dijkstra(
        graph,
        state,
        start_set,
        target_set,
        occupied=device.state.occupied,
        allow=reuse_set,
        name_blocked=_name_block_table(use_longs, frozenset(avoid_classes)),
        h=h,
        fault_node=fault_mask,
        fault_edge=graph.fault_edge_mask(faults) if faults is not None else None,
        max_nodes=max_nodes,
        stats=stats,
        deadline=deadline,
    )
    # publish before the outcome branches: failed searches count too
    record_global(stats)

    if timed_out:
        tr, tc, tn = arch.primary_name(next(iter(target_set)))
        raise errors.DeadlineExceededError(
            "maze search abandoned: deadline expired",
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
            search_stats=stats,
        )
    if exceeded:
        raise errors.UnroutableError(
            f"maze search exceeded {max_nodes} node expansions",
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
            search_stats=stats,
        )
    if goal < 0:
        tr, tc, tn = arch.primary_name(next(iter(target_set)))
        raise errors.UnroutableError(
            "no free path from sources to targets"
            + ("" if use_longs else " (long lines disabled)"),
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
            search_stats=stats,
        )

    plan = extract_plan(graph, state, goal)
    return MazeResult(plan, goal, goal_cost, expanded, faults_avoided, stats)


# -- batched maze routing ------------------------------------------------------


class MazeBatchResult:
    """Per-request outcomes of one batched maze run.

    :attr:`results` holds one entry per request, **in request order**:
    a :class:`MazeResult` on success or the same
    :class:`~repro.errors.JRouteError` instance :func:`route_maze` would
    have raised for that request (unroutable, faulty target, deadline —
    a failure mid-batch never hides the remaining results).
    :attr:`stats` is the merged instrumentation of the whole batch,
    published to the global accumulator exactly once.
    """

    __slots__ = ("results", "stats")

    def __init__(
        self,
        results: "list[MazeResult | errors.JRouteError]",
        stats: SearchStats,
    ) -> None:
        self.results = results
        self.stats = stats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, i: int):
        return self.results[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        ok = sum(1 for r in self.results if isinstance(r, MazeResult))
        return f"MazeBatchResult({ok}/{len(self.results)} routed)"


def _heuristic_rate(arch, heuristic_weight: float) -> float:
    """Per-CLB A* rate.

    Cheapest possible per-CLB rate: hexes cover 6 CLBs at their cost;
    long lines can beat that on big spans, so the bias is scaled down.
    """
    return heuristic_weight * min(arch.wire_cost(wires.HEX_E[0]) / 6.0, 1.0)


def _make_heuristic(
    graph, goal_tiles: Sequence[tuple[int, int]], rate: float
) -> Callable[[int, int, int, int], float]:
    """Build the A* distance-to-target closure for one goal set.

    Shared by the scalar :func:`route_maze` and (per lane) the batched
    path — one definition, so batch estimates are the scalar estimates.
    Batch lanes call it per winner push; winner sets per lockstep round
    are small, so scalar calls beat tiny-array vectorization.
    """
    hex_n0 = wires.HEX_N[0]
    single_n0 = wires.SINGLE_N[0]
    p_row, p_col, p_name = graph.tiles()

    if len(goal_tiles) == 1:
        # dominant case (one sink pin): no min-over-goals machinery
        tr, tc = goal_tiles[0]

        def h(canon: int, to_name: int, row: int, col: int) -> float:
            # estimate from the point of the driven wire nearest the
            # goal: a hex driven toward it should look 6 tiles closer
            cls = _NAME_CLASS[to_name]
            if cls is WireClass.SINGLE or cls is WireClass.HEX:
                r0 = p_row[canon]
                c0 = p_col[canon]
                length = _NAME_LENGTH[to_name]
                a = abs(r0 - tr) + abs(c0 - tc)
                if p_name[canon] >= (
                    hex_n0 if cls is WireClass.HEX else single_n0
                ):
                    b = abs(r0 + length - tr) + abs(c0 - tc)
                else:
                    b = abs(r0 - tr) + abs(c0 + length - tc)
                return rate * (a if a < b else b)
            if cls is WireClass.LONG_H:
                return rate * abs(p_row[canon] - tr)
            if cls is WireClass.LONG_V:
                return rate * abs(p_col[canon] - tc)
            return rate * (abs(row - tr) + abs(col - tc))

    else:

        def h(canon: int, to_name: int, row: int, col: int) -> float:
            # estimate from the point of the driven wire nearest a goal:
            # a hex driven toward the goal should look 6 tiles closer
            cls = _NAME_CLASS[to_name]
            if cls is WireClass.SINGLE or cls is WireClass.HEX:
                r0 = p_row[canon]
                c0 = p_col[canon]
                length = _NAME_LENGTH[to_name]
                vertical = p_name[canon] >= (
                    hex_n0 if cls is WireClass.HEX else single_n0
                )
                if vertical:
                    ends = ((r0, c0), (r0 + length, c0))  # north-going
                else:
                    ends = ((r0, c0), (r0, c0 + length))  # east-going
                return rate * min(
                    abs(er - tr) + abs(ec - tc)
                    for er, ec in ends
                    for tr, tc in goal_tiles
                )
            if cls is WireClass.LONG_H:
                r0 = p_row[canon]
                return rate * min(abs(r0 - tr) for tr, _ in goal_tiles)
            if cls is WireClass.LONG_V:
                c0 = p_col[canon]
                return rate * min(abs(c0 - tc) for _, tc in goal_tiles)
            return rate * min(
                abs(row - tr) + abs(col - tc) for tr, tc in goal_tiles
            )

    return h


def _dispatch_batch(
    graph,
    lane_req: Sequence[tuple[set[int], set[int], set[int], set[int]]],
    occupied,
    name_blocked,
    femask_buf,
    fault_mask,
    lane_goals,
    rate: float | None,
    max_nodes: int,
    deadline: Deadline | None,
    bstate: BatchSearchState,
    stats: SearchStats,
) -> list[tuple]:
    """Run one lane chunk through the batched kernel; plans extracted here.

    Returns one ``(goal, cost, expanded, pushes, faults_avoided,
    exceeded, timed_out, plan)`` tuple per lane.  Runs identically
    inline, in a thread, or inside a process-backend worker.
    """
    reqs = [(sr[0], sr[1]) for sr in lane_req]
    allows = [sr[2] for sr in lane_req]
    hs = (
        [_make_heuristic(graph, goals, rate) for goals in lane_goals]
        if rate is not None
        else None
    )
    res = dijkstra_batch(
        graph,
        bstate,
        reqs,
        occupied=occupied,
        allows=allows,
        name_blocked=name_blocked,
        hs=hs,
        fault_node=fault_mask,
        fault_edge=femask_buf,
        max_nodes=max_nodes,
        stats=stats,
        deadline=deadline,
    )
    out = []
    for lane, r in enumerate(res):
        plan = (
            extract_plan_lane(graph, bstate, lane, r[0]) if r[0] >= 0 else []
        )
        out.append((*r, plan))
    return out


#: Worker-process cached batch state (lives beside pathfinder's _W_STATE).
_W_BATCH_STATE: BatchSearchState | None = None


def _worker_batch_state(n: int, k: int) -> BatchSearchState:
    global _W_BATCH_STATE
    if _W_BATCH_STATE is None or _W_BATCH_STATE.n != n:
        _W_BATCH_STATE = BatchSearchState(n, k)
    else:
        _W_BATCH_STATE.ensure(k)
    return _W_BATCH_STATE


def _process_batch_task(payload: tuple) -> tuple[list[tuple], dict]:
    """Route one lane chunk inside a process-backend worker.

    The whole chunk ships as one task (amortized IPC) and runs on the
    worker's attached shared-memory graph; the parent merges the
    returned stats and publishes once for the batch.
    """
    from . import pathfinder  # lazy: pathfinder imports maze at load time

    (
        lane_req,
        occupied_b,
        name_blocked,
        femask_b,
        fault_b,
        lane_goals,
        rate,
        max_nodes,
        deadline_ms,
    ) = payload
    g = pathfinder._W_GRAPH
    occupied = np.frombuffer(occupied_b, dtype=bool)
    fault_mask = (
        np.frombuffer(fault_b, dtype=bool) if fault_b is not None else None
    )
    stats = SearchStats()
    out = _dispatch_batch(
        g,
        lane_req,
        occupied,
        name_blocked,
        femask_b,
        fault_mask,
        lane_goals,
        rate,
        max_nodes,
        Deadline.after_ms(deadline_ms),
        _worker_batch_state(g.n_nodes, len(lane_req)),
        stats,
    )
    return out, stats.as_dict()


def route_maze_batch(
    device: Device,
    requests: Sequence[tuple],
    *,
    use_longs: bool = True,
    avoid_classes: Collection[WireClass] = (),
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
    workers: int = 1,
    backend: str = "thread",
) -> MazeBatchResult:
    """Route ``K`` independent maze requests as one lockstepped batch.

    Each request is ``(sources, targets)`` or ``(sources, targets,
    reuse)`` with :func:`route_maze` semantics; the keyword knobs apply
    to every request.  All searches run against the device state as of
    the call — requests do not see each other's (unapplied) plans.

    Results are **bit-identical** to calling :func:`route_maze` once per
    request: per-request plans, costs and stats match exactly, failures
    are returned in place (as the exception instances the scalar call
    would raise) without aborting the rest of the batch, and the merged
    batch stats are published to the global accumulator via a single
    ``record_global`` call.  The versioned fault-edge mask is synced at
    most once per batch.

    ``workers`` > 1 splits the batch into contiguous lane chunks routed
    concurrently — in threads, or on the shared-memory process pool with
    ``backend="process"`` (whole chunks per task, so IPC is amortized
    across the batch).
    """
    arch = device.arch
    faults = device.faults
    fault_mask = faults.unusable if faults is not None else None
    k = len(requests)
    results: list[MazeResult | errors.JRouteError | None] = [None] * k
    live: list[int] = []
    lane_req: list[tuple[set[int], set[int], set[int], set[int]]] = []
    for i, req in enumerate(requests):
        sources, targets = req[0], req[1]
        reuse = req[2] if len(req) > 2 else ()
        target_set = set(targets)
        if not target_set:
            results[i] = errors.UnroutableError("no targets given")
            continue
        reuse_set = set(reuse)
        source_set = set(sources)
        start_set = source_set | reuse_set
        if not start_set:
            results[i] = errors.UnroutableError("no sources given")
            continue
        if fault_mask is not None:
            faulty = next((t for t in target_set if fault_mask[t]), None)
            if faulty is not None:
                r, c, n = arch.primary_name(faulty)
                results[i] = errors.UnroutableError(
                    "target wire is a faulty fabric resource",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                )
                continue
        hit = target_set & start_set
        if hit:
            results[i] = MazeResult([], hit.pop(), 0.0, 0)
            continue
        live.append(i)
        lane_req.append((start_set, target_set, reuse_set, source_set))

    merged = SearchStats()
    if not live:
        return MazeBatchResult(results, merged)

    graph = device.routing_graph()
    graph.np_columns()  # force-compile before masks/threads touch the CSR
    name_blocked = _name_block_table(use_longs, frozenset(avoid_classes))
    # the one fault-mask application for the whole batch: the kernel(s)
    # receive the raw buffer, not the mask object, so nothing re-syncs
    femask_buf = (
        bytes(graph.fault_edge_mask(faults).mask) if faults is not None else None
    )
    occupied = device.state.occupied
    rate = (
        _heuristic_rate(arch, heuristic_weight)
        if heuristic_weight > 0.0
        else None
    )
    lane_goals = (
        [_target_tiles(device, sr[1]) for sr in lane_req]
        if rate is not None
        else [() for _ in lane_req]
    )

    n_lanes = len(live)
    workers = max(1, min(workers, n_lanes))
    if workers == 1:
        out = _dispatch_batch(
            graph,
            lane_req,
            occupied,
            name_blocked,
            femask_buf,
            fault_mask,
            lane_goals,
            rate,
            max_nodes,
            deadline,
            device.batch_search_state(n_lanes),
            merged,
        )
    else:
        # contiguous lane chunks, one per worker; chunk stats merge in
        # lane order so totals match the sequential scalar sweep
        bounds = [
            (n_lanes * w // workers, n_lanes * (w + 1) // workers)
            for w in range(workers)
        ]
        out = []
        if backend == "process":
            from . import pathfinder

            pool = pathfinder._process_pool(arch, workers)
            fault_b = (
                np.asarray(fault_mask, dtype=bool).tobytes()
                if fault_mask is not None
                else None
            )
            occ_b = np.asarray(occupied, dtype=bool).tobytes()
            futs = [
                pool.submit(
                    _process_batch_task,
                    (
                        lane_req[a:b],
                        occ_b,
                        name_blocked,
                        femask_buf,
                        fault_b,
                        lane_goals[a:b],
                        rate,
                        max_nodes,
                        deadline.remaining_ms() if deadline else None,
                    ),
                )
                for a, b in bounds
            ]
            for fut in futs:
                chunk_out, chunk_stats = fut.result()
                out.extend(chunk_out)
                merged.merge(SearchStats(**chunk_stats))
        else:
            n = graph.n_nodes
            chunk_stats = [SearchStats() for _ in bounds]
            with ThreadPoolExecutor(max_workers=workers) as ex:
                futs = [
                    ex.submit(
                        _dispatch_batch,
                        graph,
                        lane_req[a:b],
                        occupied,
                        name_blocked,
                        femask_buf,
                        fault_mask,
                        lane_goals[a:b],
                        rate,
                        max_nodes,
                        deadline,
                        BatchSearchState(n, b - a),
                        chunk_stats[w],
                    )
                    for w, (a, b) in enumerate(bounds)
                ]
                for fut, cs in zip(futs, chunk_stats):
                    out.extend(fut.result())
                    merged.merge(cs)

    # single lock-guarded publication for the whole batch (failures too)
    record_global(merged)

    for lane, i in enumerate(live):
        goal, goal_cost, expanded, pushes, fav, exceeded, timed_out, plan = out[
            lane
        ]
        lane_stats = SearchStats(1, expanded, pushes, fav)
        start_set, target_set, _reuse_set, source_set = lane_req[lane]
        if timed_out:
            tr, tc, tn = arch.primary_name(next(iter(target_set)))
            results[i] = errors.DeadlineExceededError(
                "maze search abandoned: deadline expired",
                row=tr,
                col=tc,
                wire=wires.wire_name(tn),
                net=min(source_set) if source_set else None,
                faults_avoided=fav,
                search_stats=lane_stats,
            )
        elif exceeded:
            results[i] = errors.UnroutableError(
                f"maze search exceeded {max_nodes} node expansions",
                net=min(source_set) if source_set else None,
                faults_avoided=fav,
                search_stats=lane_stats,
            )
        elif goal < 0:
            tr, tc, tn = arch.primary_name(next(iter(target_set)))
            results[i] = errors.UnroutableError(
                "no free path from sources to targets"
                + ("" if use_longs else " (long lines disabled)"),
                row=tr,
                col=tc,
                wire=wires.wire_name(tn),
                net=min(source_set) if source_set else None,
                faults_avoided=fav,
                search_stats=lane_stats,
            )
        else:
            results[i] = MazeResult(
                plan, goal, goal_cost, expanded, fav, lane_stats
            )
    return MazeBatchResult(results, merged)
