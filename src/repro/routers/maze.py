"""Maze routing: Dijkstra/A* search over the device wire graph.

The paper names the maze router (Lee; Sherwani [4], Brown et al. [5]) as
the fallback implementation for the auto-routing calls.  This one is a
cost-driven wavefront over *canonical wires*: nodes are wire instances,
edges are architecture-legal PIPs at any presence point of a wire, and
wires already in use by other nets are impassable.

``reuse`` makes a set of wires free starting points at zero cost — that
is how fanout routing reuses the already-routed tree of the same net
("for each sink, the router attempts to reuse the previous paths as much
as possible").
"""

from __future__ import annotations

import heapq
from typing import Collection, Iterable

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..device.fabric import Device
from .base import PlanPip

__all__ = ["route_maze", "MazeResult"]


class MazeResult:
    """Outcome of a maze search: the plan and the target it reached."""

    __slots__ = ("plan", "target", "cost", "nodes_expanded", "faults_avoided")

    def __init__(
        self,
        plan: list[PlanPip],
        target: int,
        cost: float,
        nodes: int,
        faults_avoided: int = 0,
    ):
        self.plan = plan
        self.target = target
        self.cost = cost
        self.nodes_expanded = nodes
        #: edges the search skipped because they touched a faulty resource
        self.faults_avoided = faults_avoided

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"MazeResult({len(self.plan)} pips, cost={self.cost:.2f}, "
            f"expanded={self.nodes_expanded})"
        )


def _target_tiles(device: Device, targets: Collection[int]) -> list[tuple[int, int]]:
    return [device.arch.primary_name(t)[:2] for t in targets]


def route_maze(
    device: Device,
    sources: Iterable[int],
    targets: Collection[int],
    *,
    reuse: Collection[int] = (),
    use_longs: bool = True,
    avoid_classes: Collection[WireClass] = (),
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
) -> MazeResult:
    """Find a cheapest free path from any source wire to any target wire.

    Parameters
    ----------
    sources:
        Canonical wire ids the signal is already on (the net source, or
        the whole routed tree when extending a net).
    targets:
        Canonical wire ids to reach (typically one sink pin; several when
        any of a port's pins would do).
    reuse:
        Additional zero-cost start wires (same-net resources).
    use_longs:
        When False, long lines are not considered — the state of the
        paper's initial fanout implementation ("currently long lines are
        not supported"); True enables them (the paper's future work).
    avoid_classes:
        Additional wire classes the search must not use (e.g. hexes, to
        deliberately slow a branch for skew equalisation).
    heuristic_weight:
        0 gives plain Dijkstra; > 0 adds an A* distance-to-target bias
        (per-CLB rate of the cheapest wire class, scaled by the weight;
        weights <= 1 keep the bias conservative).
    max_nodes:
        Expansion budget before giving up with
        :class:`~repro.errors.UnroutableError`.

    Returns a :class:`MazeResult` whose plan drives wires in source-to-
    sink order.  Raises :class:`~repro.errors.UnroutableError` when no
    free path exists.
    """
    arch = device.arch
    occupied = device.state.occupied
    faults = device.faults
    fault_mask = faults.unusable if faults is not None else None
    target_set = set(targets)
    if not target_set:
        raise errors.UnroutableError("no targets given")
    reuse_set = set(reuse)
    source_set = set(sources)
    start_set = source_set | reuse_set
    if not start_set:
        raise errors.UnroutableError("no sources given")
    if fault_mask is not None:
        for t in target_set:
            if fault_mask[t]:
                r, c, n = arch.primary_name(t)
                raise errors.UnroutableError(
                    "target wire is a faulty fabric resource",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                )
    hit = target_set & start_set
    if hit:
        return MazeResult([], hit.pop(), 0.0, 0)

    if heuristic_weight > 0.0:
        goal_tiles = _target_tiles(device, target_set)
        # Cheapest possible per-CLB rate: hexes cover 6 CLBs at their cost;
        # long lines can beat that on big spans, so the bias is scaled down.
        rate = heuristic_weight * min(
            arch.wire_cost(wires.HEX_E[0]) / 6.0,
            1.0,
        )
        hex_n0 = wires.HEX_N[0]
        single_n0 = wires.SINGLE_N[0]

        def h(canon: int, to_name: int, row: int, col: int) -> float:
            # estimate from the point of the driven wire nearest a goal:
            # a hex driven toward the goal should look 6 tiles closer
            info = wires.wire_info(to_name)
            cls = info.wire_class
            if cls is WireClass.SINGLE or cls is WireClass.HEX:
                r0, c0, n0 = arch.primary_name(canon)
                length = info.length
                vertical = n0 >= (hex_n0 if cls is WireClass.HEX else single_n0)
                if vertical:
                    ends = ((r0, c0), (r0 + length, c0))  # north-going
                else:
                    ends = ((r0, c0), (r0, c0 + length))  # east-going
                return rate * min(
                    abs(er - tr) + abs(ec - tc)
                    for er, ec in ends
                    for tr, tc in goal_tiles
                )
            if cls is WireClass.LONG_H:
                r0, _, _ = arch.primary_name(canon)
                return rate * min(abs(r0 - tr) for tr, _ in goal_tiles)
            if cls is WireClass.LONG_V:
                _, c0, _ = arch.primary_name(canon)
                return rate * min(abs(c0 - tc) for _, tc in goal_tiles)
            return rate * min(
                abs(row - tr) + abs(col - tc) for tr, tc in goal_tiles
            )

    else:

        def h(canon: int, to_name: int, row: int, col: int) -> float:
            return 0.0

    dist: dict[int, float] = {}
    prev: dict[int, PlanPip] = {}
    heap: list[tuple[float, float, int]] = []
    for s in start_set:
        dist[s] = 0.0
        r0, c0, n0 = arch.primary_name(s)
        heapq.heappush(heap, (h(s, n0, r0, c0), 0.0, s))

    expanded = 0
    faults_avoided = 0
    goal: int | None = None
    goal_cost = 0.0
    long_lo = wires.LONG_H[0]
    long_hi = wires.LONG_V[-1]
    avoid = frozenset(avoid_classes)

    while heap:
        f, g, canon = heapq.heappop(heap)
        if g > dist.get(canon, float("inf")):
            continue
        if canon in target_set:
            goal = canon
            goal_cost = g
            break
        if fault_mask is not None and fault_mask[canon]:
            # a dead/pre-driven start wire cannot launch the signal
            faults_avoided += 1
            continue
        expanded += 1
        if expanded > max_nodes:
            raise errors.UnroutableError(
                f"maze search exceeded {max_nodes} node expansions",
                net=min(source_set) if source_set else None,
                faults_avoided=faults_avoided,
            )
        for row, col, from_name, to_name, canon_to in device.fanout_pips(canon):
            if not use_longs and long_lo <= to_name <= long_hi:
                continue
            if avoid and wires.wire_info(to_name).wire_class in avoid:
                continue
            if fault_mask is not None and (
                fault_mask[canon_to] or faults.pip_stuck_open(canon, canon_to)
            ):
                faults_avoided += 1
                continue
            if occupied[canon_to] and canon_to not in reuse_set:
                continue
            ng = g + arch.wire_cost(to_name)
            if ng < dist.get(canon_to, float("inf")):
                dist[canon_to] = ng
                prev[canon_to] = (row, col, from_name, to_name)
                heapq.heappush(
                    heap, (ng + h(canon_to, to_name, row, col), ng, canon_to)
                )

    if goal is None:
        tr, tc, tn = arch.primary_name(next(iter(target_set)))
        raise errors.UnroutableError(
            "no free path from sources to targets"
            + ("" if use_longs else " (long lines disabled)"),
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
        )

    # Walk predecessors back to a start wire.
    plan: list[PlanPip] = []
    w = goal
    while w not in start_set:
        pip = prev[w]
        plan.append(pip)
        row, col, from_name, _ = pip
        canon_from = arch.canonicalize(row, col, from_name)
        assert canon_from is not None
        w = canon_from
    plan.reverse()
    return MazeResult(plan, goal, goal_cost, expanded, faults_avoided)
