"""Bus routing (route level 6).

Paper, Section 3.1, on ``route(EndPoint[] source, EndPoint[] sink)``:
"This is a call for bus connections.  In a data flow design, the outputs
of one stage go to the inputs of the next stage.  As a convenience, the
user does not need to write a Java loop to connect each one."

Bits are connected pairwise; a repeated source is treated as a fanout
extension of its existing net (its routed tree is reused).  The call is
atomic: any bit failing rolls back the whole bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .. import errors
from ..device.fabric import Device
from .auto import P2PResult, route_point_to_point
from .base import PlanPip, apply_plan

__all__ = ["route_bus", "BusResult"]


@dataclass(slots=True)
class BusResult:
    """Outcome of a bus route, one entry per bit in call order."""

    results: list[P2PResult] = field(default_factory=list)
    pips_added: int = 0
    faults_avoided: int = 0  #: faulty edges masked out across all bits


def route_bus(
    device: Device,
    sources: Sequence[int],
    sinks: Sequence[int],
    *,
    try_templates: bool = True,
    use_longs: bool = True,
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
) -> BusResult:
    """Connect ``sources[i]`` to ``sinks[i]`` for every bit of the bus."""
    if len(sources) != len(sinks):
        raise errors.JRouteError(
            f"bus width mismatch: {len(sources)} sources, {len(sinks)} sinks"
        )
    arch = device.arch
    out = BusResult()
    applied: list[PlanPip] = []
    try:
        for bit, (src, sink) in enumerate(zip(sources, sinks)):
            reuse = tuple(device.state.subtree(src))
            try:
                res = route_point_to_point(
                    device,
                    src,
                    sink,
                    reuse=reuse if len(reuse) > 1 else (),
                    try_templates=try_templates,
                    use_longs=use_longs,
                    heuristic_weight=heuristic_weight,
                    max_nodes=max_nodes,
                )
            except errors.JRouteError as e:
                ctx = e.context() if isinstance(e, errors.RoutingFailure) else {}
                raise errors.UnroutableError(
                    f"bus bit {bit}: {e}",
                    row=ctx.get("row"),
                    col=ctx.get("col"),
                    wire=ctx.get("wire"),
                    net=src,
                    faults_avoided=out.faults_avoided
                    + getattr(e, "faults_avoided", 0),
                ) from e
            apply_plan(device, res.plan)
            applied.extend(res.plan)
            out.results.append(res)
            out.pips_added += len(res.plan)
            out.faults_avoided += res.faults_avoided
    except errors.JRouteError:
        for row, col, from_name, to_name in reversed(applied):
            device.turn_off(row, col, from_name, to_name)
        raise
    return out
