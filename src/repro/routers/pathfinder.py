"""PathFinder-style negotiated-congestion router (baseline comparator).

The paper's Section 6 points at timing/routability-driven routers (Swartz,
Betz & Rose [6]) as the direction for better algorithms, and Section 3.1
argues that "in an RTR environment traditional routing algorithms require
too much time".  This module implements the traditional algorithm that
claim is about: a PathFinder negotiated-congestion router (the core of
VPR and of ref [6]) — every net is routed allowing overuse, and present-
and history-congestion costs are escalated until no wire is shared.

Per-sink searches run on the shared compiled-graph kernel
(:mod:`repro.core.kernel`) with flat present/history cost tables.  With
``workers > 1`` the per-iteration net loop is parallelized in the style
of the parallel-router literature (Zang et al., *An Open-Source Fast
Parallel Routing Approach for Commercial FPGAs*): nets are spatially
partitioned by bounding-box centre, partitions are routed concurrently
against a snapshot of the congestion state (each worker owning a private
use-count overlay and search state), and cross-partition conflicts are
resolved by the ordinary negotiation loop.  Results are deterministic
for any fixed ``workers`` value.

It serves as the quality/time baseline for experiment E8: slower than
JRoute's greedy one-shot calls, but able to resolve congestion that
defeats greedy ordering.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from .. import errors
from ..core.deadline import Deadline
from ..core.kernel import SearchState, SearchStats, dijkstra, extract_plan
from ..device.fabric import Device
from .base import PlanPip, apply_plan
from .maze import _name_block_table

__all__ = ["NetSpec", "PathFinderResult", "route_pathfinder"]


@dataclass(frozen=True, slots=True)
class NetSpec:
    """One net to route: a source wire and its sink wires."""

    source: int
    sinks: tuple[int, ...]

    @staticmethod
    def of(source: int, sinks: Sequence[int]) -> "NetSpec":
        return NetSpec(source, tuple(sinks))


@dataclass(slots=True)
class PathFinderResult:
    """Outcome of a negotiated-congestion run."""

    iterations: int
    converged: bool
    plans: dict[int, list[PlanPip]] = field(default_factory=dict)  #: per net index
    pips_added: int = 0
    #: unified search instrumentation across all iterations and workers
    stats: SearchStats = field(default_factory=SearchStats)
    #: concurrency the run was executed with
    workers: int = 1
    #: the run was abandoned because its deadline expired (nothing applied)
    timed_out: bool = False


def _partition(
    device: Device, nets: Sequence[NetSpec], workers: int
) -> list[list[int]]:
    """Spatially partition net indices into ``workers`` stripes.

    Nets are sorted by bounding-box centre (column-major, so stripes are
    vertical slices of the chip) and split into contiguous, balanced
    groups.  Deterministic for a fixed net list and worker count.
    """
    tile_coords = device.arch.tile_coords
    centers: list[tuple[float, float, int]] = []
    for i, net in enumerate(nets):
        pts = [tile_coords(net.source)]
        pts.extend(tile_coords(s) for s in net.sinks)
        rows = [p[0] for p in pts]
        cols = [p[1] for p in pts]
        centers.append(
            ((min(cols) + max(cols)) / 2.0, (min(rows) + max(rows)) / 2.0, i)
        )
    centers.sort()
    k = max(1, min(workers, len(centers)))
    groups: list[list[int]] = []
    base, extra = divmod(len(centers), k)
    pos = 0
    for gi in range(k):
        size = base + (1 if gi < extra else 0)
        groups.append(sorted(i for _, _, i in centers[pos : pos + size]))
        pos += size
    return [g for g in groups if g]


def route_pathfinder(
    device: Device,
    nets: Sequence[NetSpec],
    *,
    use_longs: bool = True,
    max_iterations: int = 30,
    present_factor_init: float = 0.5,
    present_factor_mult: float = 1.6,
    history_increment: float = 0.4,
    max_nodes_per_net: int = 400_000,
    apply: bool = True,
    workers: int = 1,
    deadline: Deadline | None = None,
) -> PathFinderResult:
    """Route ``nets`` with negotiated congestion, then apply to the device.

    Wires already used on the device (foreign nets) are impassable;
    congestion is negotiated only among the given nets.  Raises
    :class:`~repro.errors.UnroutableError` if any single net has no path
    at all, and reports ``converged=False`` when sharing remains after
    ``max_iterations`` (in which case nothing is applied).

    ``workers > 1`` routes spatial partitions of the net list
    concurrently per iteration; see the module docstring.  ``workers=1``
    reproduces the serial algorithm exactly (plan-identical to the
    pre-kernel implementation).

    A ``deadline`` bounds the whole negotiation: when it expires the run
    is abandoned mid-iteration, nothing is applied, and the result comes
    back with ``converged=False, timed_out=True`` (no exception escapes).
    """
    arch = device.arch
    graph = device.routing_graph()
    n_nodes = graph.n_nodes
    blocked = device.state.occupied
    endpoint_ok: set[int] = set()
    for net in nets:
        endpoint_ok.add(net.source)
        endpoint_ok.update(net.sinks)

    name_blocked = _name_block_table(use_longs, frozenset())
    tile_coords = arch.tile_coords

    history: list[float] = [0.0] * n_nodes
    #: wire -> set of net indices using it in the current solution
    usage: dict[int, set[int]] = {}
    #: use_count[w] == len(usage[w]); flat table for the kernel cost
    use_count: list[int] = [0] * n_nodes
    #: per net: wires used and plan
    net_wires: list[set[int]] = [set() for _ in nets]
    plans: list[list[PlanPip]] = [[] for _ in nets]
    present_factor = present_factor_init
    stats = SearchStats()

    def sink_order(net: NetSpec) -> list[int]:
        sr, sc = tile_coords(net.source)
        return sorted(
            set(net.sinks),
            key=lambda s: (
                abs(tile_coords(s)[0] - sr) + abs(tile_coords(s)[1] - sc),
                s,
            ),
        )

    def route_net(
        idx: int,
        net: NetSpec,
        counts: list[int],
        state: SearchState,
        pf: float,
        local_stats: SearchStats,
    ) -> None:
        """Fanout-route one net under current congestion costs.

        ``counts`` is the present-use table the search prices against
        (the global one when serial, a worker-private overlay when
        parallel); the net's previous wires must already be removed
        from it by the caller.
        """
        tree: set[int] = {net.source}
        plans[idx] = []
        for sink in sink_order(net):
            goal, _cost, _exp, _pushes, _fav, exceeded, search_timed_out = dijkstra(
                graph,
                state,
                tree,
                (sink,),
                occupied=blocked,
                allow=endpoint_ok,
                name_blocked=name_blocked,
                congestion=(counts, history, pf),
                max_nodes=max_nodes_per_net,
                stats=local_stats,
                deadline=deadline,
            )
            if search_timed_out:
                raise errors.DeadlineExceededError(
                    f"pathfinder net {idx}: deadline expired at sink {sink}",
                    search_stats=local_stats,
                )
            if exceeded:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: node budget exhausted",
                    search_stats=local_stats,
                )
            if goal < 0:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: sink {sink} unreachable",
                    search_stats=local_stats,
                )
            path = extract_plan(graph, state, goal)
            plans[idx].extend(path)
            canonicalize = arch.canonicalize
            for row, col, _from_name, to_name in path:
                canon = canonicalize(row, col, to_name)
                assert canon is not None
                tree.add(canon)
        # commit usage (sources are exempt from sharing accounting)
        net_wires[idx] = tree - {net.source}

    def rebuild_usage() -> None:
        usage.clear()
        for w, c in enumerate(use_count):
            if c:
                use_count[w] = 0
        for idx, wset in enumerate(net_wires):
            for w in wset:
                usage.setdefault(w, set()).add(idx)
        for w, users in usage.items():
            use_count[w] = len(users)

    n_workers = max(1, min(workers, len(nets))) if nets else 1
    serial_state = device.search_state()
    worker_states = (
        [SearchState(n_nodes) for _ in range(n_workers)] if n_workers > 1 else []
    )
    groups = _partition(device, nets, n_workers) if n_workers > 1 else []

    def run_group(
        gi: int, group: list[int], pf: float
    ) -> SearchStats:
        """Route one partition against a private use-count overlay."""
        local_counts = list(use_count)
        local_stats = SearchStats()
        state = worker_states[gi]
        for idx in group:
            for w in net_wires[idx]:
                local_counts[w] -= 1
            route_net(idx, nets[idx], local_counts, state, pf, local_stats)
            for w in net_wires[idx]:
                local_counts[w] += 1
        return local_stats

    converged = False
    timed_out = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        try:
            if n_workers > 1:
                with ThreadPoolExecutor(max_workers=n_workers) as pool:
                    futures = [
                        pool.submit(run_group, gi, group, present_factor)
                        for gi, group in enumerate(groups)
                    ]
                    for fut in futures:
                        stats.merge(fut.result())
                rebuild_usage()
            else:
                for idx, net in enumerate(nets):
                    # rip up before re-pricing this net's search
                    for w in net_wires[idx]:
                        users = usage.get(w)
                        if users:
                            users.discard(idx)
                            use_count[w] = len(users)
                            if not users:
                                del usage[w]
                    net_wires[idx] = set()
                    route_net(
                        idx, net, use_count, serial_state, present_factor, stats
                    )
                    for w in net_wires[idx]:
                        users = usage.setdefault(w, set())
                        users.add(idx)
                        use_count[w] = len(users)
        except errors.DeadlineExceededError:
            # abandon the whole negotiation: nothing has been applied to
            # the device yet, so the structured "partial" outcome is just
            # the honest not-converged result
            timed_out = True
            break
        shared = [w for w, users in usage.items() if len(users) > 1]
        if not shared:
            converged = True
            break
        for w in shared:
            history[w] += history_increment
        present_factor *= present_factor_mult

    result = PathFinderResult(
        iterations=iteration,
        converged=converged,
        stats=stats,
        workers=n_workers,
        timed_out=timed_out,
    )
    if converged:
        for idx in range(len(nets)):
            result.plans[idx] = plans[idx]
        if apply:
            for idx in range(len(nets)):
                result.pips_added += apply_plan(device, plans[idx])
    return result
