"""PathFinder-style negotiated-congestion router (baseline comparator).

The paper's Section 6 points at timing/routability-driven routers (Swartz,
Betz & Rose [6]) as the direction for better algorithms, and Section 3.1
argues that "in an RTR environment traditional routing algorithms require
too much time".  This module implements the traditional algorithm that
claim is about: a PathFinder negotiated-congestion router (the core of
VPR and of ref [6]) — every net is routed allowing overuse, and present-
and history-congestion costs are escalated until no wire is shared.

Per-sink searches run on the shared compiled-graph kernel
(:mod:`repro.core.kernel`) with flat present/history cost tables.  With
``workers > 1`` the per-iteration net loop is parallelized with the
recursive spatial bipartition scheme of the parallel-router literature
(Zang et al., *An Open-Source Fast Parallel Routing Approach for
Commercial FPGAs*):

* a **partition tree** is built over the nets' bounding boxes
  (:func:`build_partition_tree`): the region is alternately split at a
  work-balanced median of bbox centers, nets whose bbox crosses the cut
  line land on the internal (cut) node, the rest recurse into the two
  sides.  Cut choice balances *estimated work* (bbox area × fanout),
  not net count, so one stripe full of high-fanout nets can no longer
  stall the rest of the pool;
* per iteration the tree is executed **bottom-up**: leaf partitions
  route concurrently, and a cut node routes only after its children so
  its boundary-crossing nets price against the subtree's fresh wires
  (synchronous updates within a subtree).  Disjoint subtrees never
  wait for each other — conflicts across them are resolved by the next
  negotiation iteration (asynchronous updates across partitions);
* congestion state is held in versioned
  :class:`~repro.core.kernel.CongestionLedger` tables advanced by
  **sparse absolute deltas** — only the wires whose use-count or
  history changed last iteration — instead of per-iteration full
  snapshots.

Two execution backends share that exact decomposition:

* ``backend="thread"`` — a :class:`ThreadPoolExecutor`, created once per
  routing call (not per iteration).  Under CPython's GIL this buys
  determinism and the parallel contract, not wall-clock speedup.
* ``backend="process"`` — OS-level workers on a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The compiled CSR
  graph is exported once per part into POSIX shared memory
  (:func:`repro.arch.graph.shared_graph_export`) and attached zero-copy
  by each worker.  The call-static configuration (blocked bitmap,
  endpoint set, name filter) is shipped **once per worker** and cached
  under the call's graph-derived token; per-iteration tasks then carry
  only the sparse congestion deltas, the node's nets/overlay and the
  scalar knobs, so bytes shipped per iteration scale with the *change*,
  not with the device.  Per-iteration IPC payload sizes are reported in
  :attr:`PathFinderResult.ipc_bytes`.

For any fixed ``workers`` the result is deterministic and **identical
across backends**: a partition-tree node is a pure function of the
iteration-start congestion state plus its descendants' results, so
thread and process executions produce bit-identical plans, costs and
:class:`~repro.core.kernel.SearchStats`.  ``workers=1`` bypasses the
tree entirely and reproduces the serial algorithm exactly (the
bit-identical parity oracle against ``routers._reference``).

It serves as the quality/time baseline for experiment E8: slower than
JRoute's greedy one-shot calls, but able to resolve congestion that
defeats greedy ordering.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Mapping, Sequence

from .. import errors
from ..arch.graph import attach_shared_graph, shared_graph_export
from ..arch.virtex import VirtexArch
from ..core.deadline import Deadline
from ..core.kernel import (
    CongestionLedger,
    SearchState,
    SearchStats,
    dijkstra,
    extract_plan,
    record_global,
)
from ..device.fabric import Device
from .base import PlanPip, apply_plan
from .maze import _name_block_table

__all__ = [
    "NetSpec",
    "PartitionNode",
    "PathFinderResult",
    "build_partition_tree",
    "route_pathfinder",
    "shutdown_process_pools",
]

#: Recognized execution backends for ``workers > 1``.
BACKENDS = ("thread", "process")


@dataclass(frozen=True, slots=True)
class NetSpec:
    """One net to route: a source wire and its sink wires."""

    source: int
    sinks: tuple[int, ...]

    @staticmethod
    def of(source: int, sinks: Sequence[int]) -> "NetSpec":
        return NetSpec(source, tuple(sinks))


@dataclass(slots=True)
class PathFinderResult:
    """Outcome of a negotiated-congestion run."""

    iterations: int
    converged: bool
    plans: dict[int, list[PlanPip]] = field(default_factory=dict)  #: per net index
    pips_added: int = 0
    #: unified search instrumentation across all iterations and workers
    stats: SearchStats = field(default_factory=SearchStats)
    #: *effective* concurrency: the number of partition-tree leaves the
    #: run actually routed concurrently.  May be lower than the
    #: requested ``workers`` when the workload cannot be split that
    #: finely (few nets, or nets stacked on one tile) — never silently.
    workers: int = 1
    #: execution backend the run was executed with
    backend: str = "thread"
    #: the run was abandoned because its deadline expired (nothing applied)
    timed_out: bool = False
    #: process backend only: pickled task-payload bytes shipped to the
    #: worker pool, one total per iteration.  After the warm-up
    #: iterations (which ship each worker its one-time config) these
    #: scale with the sparse congestion delta, not with the device.
    ipc_bytes: list[int] = field(default_factory=list)


# -- recursive spatial bipartition tree ---------------------------------------


@dataclass(slots=True)
class PartitionNode:
    """One node of the spatial bipartition tree over net bounding boxes.

    Internal nodes carry the *cut nets* — nets whose bounding box
    crosses the node's cut line — and exactly two children; leaves carry
    every net of their region.  ``index`` is the node's preorder
    position, the deterministic order used for stats merging and
    failure selection.
    """

    index: int
    nets: tuple[int, ...] = ()
    children: tuple["PartitionNode", ...] = ()
    #: cut axis: 0 = rows, 1 = columns (-1 for leaves)
    axis: int = -1
    #: cut coordinate along :attr:`axis`
    cut: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _net_work(bbox: tuple[int, int, int, int], net: NetSpec) -> float:
    """Estimated routing work of one net: bbox area × fanout.

    The balancing weight for tree cuts — a proxy for search effort that
    keeps a few 64-sink nets from landing in one partition while the
    others idle (the failure mode of count-balanced stripes).
    """
    r0, c0, r1, c1 = bbox
    return float((r1 - r0 + 1) * (c1 - c0 + 1) * max(1, len(net.sinks)))


def build_partition_tree(
    device: Device, nets: Sequence[NetSpec], workers: int
) -> tuple[PartitionNode, list[PartitionNode], int]:
    """Build the recursive bipartition tree over net bounding boxes.

    The region is split at a work-balanced median of bbox centers along
    alternating axes (columns first, then rows, …): nets entirely on one
    side of the cut recurse into that child, nets whose bbox crosses the
    cut line stay on the internal node and are routed *after* both
    children.  Splitting stops when the leaf budget (``workers``) is
    exhausted, a region holds fewer than two nets, or no cut separates
    anything along either axis (degenerate stacks).  Deterministic for a
    fixed net list and worker count.

    Returns ``(root, preorder, n_leaves)`` — ``preorder`` lists every
    node in preorder (``preorder[i].index == i``) and ``n_leaves`` is
    the tree's effective concurrency.
    """
    graph = device.routing_graph()
    bboxes = graph.bbox_map([(net.source, *net.sinks) for net in nets])
    works = [_net_work(bbox, net) for bbox, net in zip(bboxes, nets)]
    centers = [
        ((r0 + r1) / 2.0, (c0 + c1) / 2.0) for r0, c0, r1, c1 in bboxes
    ]

    def axis_cut(idxs: list[int], axis: int) -> float | None:
        """Work-balanced cut between two distinct center values."""
        pairs = sorted((centers[i][axis], works[i]) for i in idxs)
        total = sum(w for _, w in pairs)
        best: tuple[float, float] | None = None
        acc = 0.0
        for pos in range(len(pairs) - 1):
            acc += pairs[pos][1]
            lo, hi = pairs[pos][0], pairs[pos + 1][0]
            if hi > lo:
                imbalance = abs(total - 2.0 * acc)
                if best is None or imbalance < best[0]:
                    best = (imbalance, (lo + hi) / 2.0)
        return None if best is None else best[1]

    nodes: list[PartitionNode] = []

    def split(idxs: list[int], budget: int, axis0: int) -> PartitionNode:
        node = PartitionNode(index=len(nodes))
        nodes.append(node)
        if budget > 1 and len(idxs) > 1:
            for axis in (axis0, 1 - axis0):
                cut = axis_cut(idxs, axis)
                if cut is None:
                    continue
                left = [i for i in idxs if bboxes[i][axis + 2] < cut]
                right = [i for i in idxs if bboxes[i][axis] > cut]
                if not left or not right:
                    continue
                crossing = tuple(
                    i
                    for i in idxs
                    if not (bboxes[i][axis + 2] < cut or bboxes[i][axis] > cut)
                )
                wl = sum(works[i] for i in left)
                wr = sum(works[i] for i in right)
                bl = int(round(budget * wl / (wl + wr))) if wl + wr else 1
                bl = max(1, min(budget - 1, bl))
                node.axis = axis
                node.cut = cut
                node.nets = crossing
                node.children = (
                    split(left, bl, 1 - axis),
                    split(right, budget - bl, 1 - axis),
                )
                return node
        node.nets = tuple(idxs)
        return node

    root = split(sorted(range(len(nets))), max(1, workers), 1)
    n_leaves = sum(1 for n in nodes if n.is_leaf)
    return root, nodes, n_leaves


class _NetRouter:
    """Per-call static routing context shared by every execution path.

    Serial loop, thread workers and process workers all route nets
    through the same two methods below, so backend parity is structural:
    there is exactly one implementation of "route one net under these
    congestion costs".
    """

    __slots__ = (
        "graph",
        "arch",
        "blocked",
        "endpoint_ok",
        "name_blocked",
        "history",
        "max_nodes",
        "deadline",
    )

    def __init__(
        self,
        graph,
        arch,
        blocked,
        endpoint_ok,
        name_blocked,
        history: list[float],
        max_nodes: int,
        deadline: Deadline | None,
    ) -> None:
        self.graph = graph
        self.arch = arch
        self.blocked = blocked
        self.endpoint_ok = endpoint_ok
        self.name_blocked = name_blocked
        self.history = history
        self.max_nodes = max_nodes
        self.deadline = deadline

    def sink_order(self, net: NetSpec) -> list[int]:
        tile_coords = self.arch.tile_coords
        sr, sc = tile_coords(net.source)
        return sorted(
            set(net.sinks),
            key=lambda s: (
                abs(tile_coords(s)[0] - sr) + abs(tile_coords(s)[1] - sc),
                s,
            ),
        )

    def route_net(
        self,
        idx: int,
        net: NetSpec,
        counts: list[int],
        state: SearchState,
        pf: float,
        stats: SearchStats,
    ) -> tuple[list[PlanPip], set[int]]:
        """Fanout-route one net under current congestion costs.

        ``counts`` is the present-use table the search prices against;
        the net's previous wires must already be removed from it by the
        caller.  Returns ``(plan, wires)`` — sources are exempt from
        sharing accounting, so ``wires`` excludes the source.
        """
        tree: set[int] = {net.source}
        plan: list[PlanPip] = []
        canonicalize = self.arch.canonicalize
        for sink in self.sink_order(net):
            goal, _cost, _exp, _pushes, _fav, exceeded, search_timed_out = dijkstra(
                self.graph,
                state,
                tree,
                (sink,),
                occupied=self.blocked,
                allow=self.endpoint_ok,
                name_blocked=self.name_blocked,
                congestion=(counts, self.history, pf),
                max_nodes=self.max_nodes,
                stats=stats,
                deadline=self.deadline,
            )
            if search_timed_out:
                raise errors.DeadlineExceededError(
                    f"pathfinder net {idx}: deadline expired at sink {sink}",
                    search_stats=stats,
                )
            if exceeded:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: node budget exhausted",
                    search_stats=stats,
                )
            if goal < 0:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: sink {sink} unreachable",
                    search_stats=stats,
                )
            path = extract_plan(self.graph, state, goal)
            plan.extend(path)
            for row, col, _from_name, to_name in path:
                canon = canonicalize(row, col, to_name)
                assert canon is not None
                tree.add(canon)
        return plan, tree - {net.source}

    def route_group(
        self,
        group: Sequence[int],
        nets,
        old_wires,
        counts: list[int],
        state: SearchState,
        pf: float,
        stats: SearchStats,
        journal: list[tuple[int, int]] | None = None,
    ) -> dict[int, tuple[list[PlanPip], set[int]]]:
        """Route one partition against a present-use table.

        ``counts`` is the iteration-start present-use table (plus any
        subtree overlay); ``old_wires`` maps each net index to the wires
        it used in the previous iteration.  Nets are processed in
        ascending index order: within a group, later nets see earlier
        group-mates' fresh wires — exactly the serial semantics when the
        group is the whole net list.  When ``journal`` is given, every
        count mutation appends its inverse so the caller can revert the
        table to its pre-call state (partition workers reuse one ledger
        across tasks); serial callers pass a throwaway copy instead.
        """
        out: dict[int, tuple[list[PlanPip], set[int]]] = {}
        for idx in group:
            for w in old_wires[idx]:
                counts[w] -= 1
                if journal is not None:
                    journal.append((w, 1))
            plan, wires = self.route_net(idx, nets[idx], counts, state, pf, stats)
            out[idx] = (plan, wires)
            for w in wires:
                counts[w] += 1
                if journal is not None:
                    journal.append((w, -1))
        return out


# -- thread backend -----------------------------------------------------------
#
# Worker contexts (search state + congestion ledger) live in a queue;
# any pool thread executing a node task borrows one, syncs its ledger to
# the iteration-start version from the in-memory delta log, applies the
# node's subtree overlay, routes, and reverts.  Contexts outnumber
# concurrently-runnable nodes (at most one per tree leaf), so the
# borrow never blocks.


class _ThreadWorkerContext:
    __slots__ = ("state", "ledger")

    def __init__(self, n_nodes: int) -> None:
        self.state = SearchState(n_nodes)
        self.ledger = CongestionLedger(n_nodes)


def _thread_node_task(
    ctx: _NetRouter,
    contexts: "SimpleQueue[_ThreadWorkerContext]",
    delta_log: Sequence[tuple[dict[int, int], dict[int, float]]],
    v_target: int,
    group: Sequence[int],
    nets: Sequence[NetSpec],
    old_wires: Sequence[set[int]],
    overlay: Sequence[tuple[int, int]],
    pf: float,
) -> tuple:
    wctx = contexts.get()
    try:
        ledger = wctx.ledger
        ledger.sync(delta_log, 0, v_target)
        router = _NetRouter(
            ctx.graph,
            ctx.arch,
            ctx.blocked,
            ctx.endpoint_ok,
            ctx.name_blocked,
            ledger.history,
            ctx.max_nodes,
            ctx.deadline,
        )
        stats = SearchStats()
        journal: list[tuple[int, int]] = []
        try:
            ledger.overlay(overlay, journal)
            out = router.route_group(
                group, nets, old_wires, ledger.counts, wctx.state, pf, stats,
                journal,
            )
        except errors.DeadlineExceededError as e:
            return ("deadline", e.message, stats)
        except errors.UnroutableError as e:
            return ("unroutable", e.message, stats)
        finally:
            ledger.revert(journal)
        return ("ok", out, stats)
    finally:
        contexts.put(wctx)


# -- process backend ----------------------------------------------------------
#
# Worker processes hold the attached shared-memory graph, the (cached)
# architecture and one preallocated SearchState in module globals, plus
# an LRU of per-call congestion ledgers keyed by the parent's call
# token.  A task carries the token, a sparse delta suffix and (until
# every worker has been seen once) the call-static config; everything
# else about the worker is stateless, so it does not matter which
# worker executes which partition node.

_W_GRAPH = None
_W_ARCH = None
_W_STATE = None
#: per-call worker state: call token -> (ledger, config); bounded LRU
_W_CALLS: "OrderedDict[tuple, _WorkerCall]" = OrderedDict()
_W_CALL_CAP = 4


class _WorkerCall:
    __slots__ = ("ledger", "config")

    def __init__(self, ledger: CongestionLedger, config: tuple) -> None:
        self.ledger = ledger
        self.config = config


def _process_worker_init(meta: dict, part: str) -> None:
    """Pool initializer: attach the shared graph, preallocate state."""
    global _W_GRAPH, _W_ARCH, _W_STATE
    _W_GRAPH = attach_shared_graph(meta)
    _W_ARCH = VirtexArch(part)
    _W_STATE = SearchState(_W_GRAPH.n_nodes)


def _process_node_task(
    token: tuple,
    v_from: int,
    v_target: int,
    config: tuple | None,
    deltas: Sequence[tuple[dict[int, int], dict[int, float]]],
    group: Sequence[int],
    group_nets: Mapping[int, tuple[int, tuple[int, ...]]],
    old_wires: Mapping[int, tuple[int, ...]],
    overlay: Sequence[tuple[int, int]],
    pf: float,
    deadline_ms: float | None,
) -> tuple:
    """Route one partition node inside a worker process.

    Returns ``("ok", {idx: (plan, wires)}, stats_dict, pid)`` or an
    error marker ``("unroutable" | "deadline", message, stats_dict,
    pid)`` — the parent re-raises the matching exception with the
    identical message, so failure behaviour is indistinguishable from
    the thread backend.  ``("stale", pid)`` asks the parent to resend
    with the full delta history and config (a worker this call has not
    seen yet received a suffix-only payload); results never depend on
    which path delivered the state.
    """
    cs = _W_CALLS.get(token)
    if cs is None:
        if config is None or v_from != 0:
            return ("stale", os.getpid())
        cs = _WorkerCall(CongestionLedger(_W_GRAPH.n_nodes), config)
        # single-threaded pool worker: this process runs one task at a
        # time, so the call cache needs no lock
        _W_CALLS[token] = cs  # repro: noqa RPR002
        while len(_W_CALLS) > _W_CALL_CAP:
            _W_CALLS.popitem(last=False)  # repro: noqa RPR002
    else:
        _W_CALLS.move_to_end(token)
        if cs.ledger.version < v_from:
            return ("stale", os.getpid())
    ledger = cs.ledger
    ledger.sync(deltas, v_from, v_target)
    blocked, endpoint_ok, name_blocked, max_nodes = cs.config
    nets = {i: NetSpec.of(s, sk) for i, (s, sk) in group_nets.items()}
    router = _NetRouter(
        _W_GRAPH,
        _W_ARCH,
        blocked,
        endpoint_ok,
        name_blocked,
        ledger.history,
        max_nodes,
        Deadline.after_ms(deadline_ms),
    )
    stats = SearchStats()
    journal: list[tuple[int, int]] = []
    try:
        ledger.overlay(overlay, journal)
        out = router.route_group(
            group, nets, old_wires, ledger.counts, _W_STATE, pf, stats, journal
        )
    except errors.DeadlineExceededError as e:
        return ("deadline", e.message, stats.as_dict(), os.getpid())
    except errors.UnroutableError as e:
        return ("unroutable", e.message, stats.as_dict(), os.getpid())
    finally:
        ledger.revert(journal)
    return (
        "ok",
        {idx: (plan, tuple(wires)) for idx, (plan, wires) in out.items()},
        stats.as_dict(),
        os.getpid(),
    )


#: Monotonic call-token counter; with the graph token it names one
#: routing call's worker-side congestion state uniquely process-wide.
_CALL_SEQ = itertools.count()


class _DeltaShipper:
    """Parent-side sparse-delta shipping for one process-backend call.

    Tracks which worker pids have been seen (and at which congestion
    version) so per-iteration payloads carry only the delta suffix the
    stalest pool member might need.  Until every pool worker has
    reported in, payloads conservatively include the full history and
    the call-static config — after that, a task ships config-free and
    delta-only.  Also meters the pickled payload size per iteration
    (:attr:`ipc_bytes`), the quantity the regression tests pin against
    device-size shipping.
    """

    __slots__ = (
        "token", "config", "delta_log", "pid_versions", "pool_size",
        "ipc_bytes",
    )

    def __init__(
        self,
        token: tuple,
        config: tuple,
        delta_log: list,
        pool_size: int,
    ) -> None:
        self.token = token
        self.config = config
        self.delta_log = delta_log
        self.pid_versions: dict[int, int] = {}
        self.pool_size = pool_size
        self.ipc_bytes: list[int] = []

    def payload(
        self,
        v_target: int,
        group,
        group_nets,
        old_wires,
        overlay,
        pf: float,
        deadline_ms: float | None,
        *,
        full: bool = False,
    ) -> tuple:
        if full or len(self.pid_versions) < self.pool_size:
            v_from, config = 0, self.config
        else:
            v_from, config = min(self.pid_versions.values()), None
        args = (
            self.token,
            v_from,
            v_target,
            config,
            self.delta_log[v_from:v_target],
            group,
            group_nets,
            old_wires,
            overlay,
            pf,
            deadline_ms,
        )
        self.ipc_bytes[-1] += len(pickle.dumps(args, pickle.HIGHEST_PROTOCOL))
        return args

    def seen(self, pid: int, version: int) -> None:
        self.pid_versions[pid] = version


#: Cached worker pools, keyed by (part name, worker count).  Reused
#: across routing calls so steady-state requests pay no fork/attach
#: cost; shut down at interpreter exit.
_POOLS: dict[tuple[str, int], ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _process_pool(arch: VirtexArch, workers: int) -> ProcessPoolExecutor:
    key = (arch.part.name, workers)
    pool = _POOLS.get(key)
    if pool is None:
        export = shared_graph_export(arch)  # before the lock: compiles
        with _POOLS_LOCK:
            pool = _POOLS.get(key)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_process_worker_init,
                    initargs=(export.meta, arch.part.name),
                )
                _POOLS[key] = pool
    return pool


def _drop_pool(arch: VirtexArch, workers: int) -> None:
    with _POOLS_LOCK:
        pool = _POOLS.pop((arch.part.name, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def shutdown_process_pools() -> None:
    """Shut down every cached process-backend worker pool (idempotent)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


def route_pathfinder(
    device: Device,
    nets: Sequence[NetSpec],
    *,
    use_longs: bool = True,
    max_iterations: int = 30,
    present_factor_init: float = 0.5,
    present_factor_mult: float = 1.6,
    history_increment: float = 0.4,
    max_nodes_per_net: int = 400_000,
    apply: bool = True,
    workers: int = 1,
    backend: str = "thread",
    deadline: Deadline | None = None,
) -> PathFinderResult:
    """Route ``nets`` with negotiated congestion, then apply to the device.

    Wires already used on the device (foreign nets) are impassable;
    congestion is negotiated only among the given nets.  Raises
    :class:`~repro.errors.UnroutableError` if any single net has no path
    at all, and reports ``converged=False`` when sharing remains after
    ``max_iterations`` (in which case nothing is applied).

    ``workers > 1`` routes the leaves of a recursive spatial partition
    tree concurrently per iteration, with cut nodes following their
    children (see the module docstring); ``backend`` selects the
    execution vehicle (``"thread"`` or ``"process"``).  For a fixed
    worker count, plans, costs and stats are identical across backends;
    the *effective* concurrency (tree leaves) is reported in
    :attr:`PathFinderResult.workers` and may be lower than requested
    when the workload cannot be split that finely.  ``workers=1``
    reproduces the serial algorithm exactly (plan-identical to the
    pre-kernel implementation) on either backend.

    A ``deadline`` bounds the whole negotiation: when it expires the run
    is abandoned mid-iteration (mid-subtree included: unfinished
    partition nodes are simply never scheduled), nothing is applied,
    and the result comes back with ``converged=False, timed_out=True``
    (no exception escapes).  For the process backend the remaining
    budget is re-shipped to the workers at each iteration (explicit
    ``cancel()`` trips are honoured at iteration boundaries only).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    arch = device.arch
    graph = device.routing_graph()
    n_nodes = graph.n_nodes
    blocked = device.state.occupied
    endpoint_ok: set[int] = set()
    for net in nets:
        endpoint_ok.add(net.source)
        endpoint_ok.update(net.sinks)

    name_blocked = _name_block_table(use_longs, frozenset())

    history: list[float] = [0.0] * n_nodes
    #: wire -> set of net indices using it in the current solution
    usage: dict[int, set[int]] = {}
    #: use_count[w] == len(usage[w]); flat table for the kernel cost
    use_count: list[int] = [0] * n_nodes
    #: per net: wires used and plan
    net_wires: list[set[int]] = [set() for _ in nets]
    plans: list[list[PlanPip]] = [[] for _ in nets]
    present_factor = present_factor_init
    stats = SearchStats()
    #: sparse absolute congestion deltas, one entry per finished
    #: iteration (the hybrid-update log both backends sync from)
    delta_log: list[tuple[dict[int, int], dict[int, float]]] = []

    ctx = _NetRouter(
        graph,
        arch,
        blocked,
        endpoint_ok,
        name_blocked,
        history,
        max_nodes_per_net,
        deadline,
    )

    n_workers = max(1, min(workers, len(nets))) if nets else 1
    tree_nodes: list[PartitionNode] | None = None
    if n_workers > 1:
        _root, tree_nodes, n_leaves = build_partition_tree(
            device, nets, n_workers
        )
        if n_leaves <= 1:
            n_workers = 1  # degenerate geometry: serial is the tree
            tree_nodes = None
        else:
            n_workers = n_leaves

    pool = None
    shipper: _DeltaShipper | None = None
    if n_workers > 1:
        if backend == "thread":
            # one pool per routing call (not per iteration)
            pool = ThreadPoolExecutor(max_workers=n_workers)
            contexts: "SimpleQueue[_ThreadWorkerContext]" = SimpleQueue()
            for _ in range(n_workers):
                contexts.put(_ThreadWorkerContext(n_nodes))
        else:
            pool = _process_pool(arch, n_workers)
            shipper = _DeltaShipper(
                token=(graph.token, next(_CALL_SEQ)),
                config=(
                    blocked.tobytes(),
                    frozenset(endpoint_ok),
                    name_blocked,
                    max_nodes_per_net,
                ),
                delta_log=delta_log,
                pool_size=n_workers,
            )
    else:
        serial_state = device.search_state()

    def run_tree(v_target: int, remaining_ms: float | None) -> dict:
        """Execute one iteration's partition tree on the worker pool.

        Leaves launch immediately; an internal node launches once both
        children finished cleanly, with an overlay replaying its
        subtree's rip-ups and fresh wires on the iteration-start state.
        Results, stats and failures are folded in deterministic preorder
        regardless of completion timing, so a fixed worker count gives
        bit-identical outcomes on either backend.
        """
        assert tree_nodes is not None
        parent_of: dict[int, PartitionNode] = {}
        pending: dict[int, int] = {}
        for node in tree_nodes:
            pending[node.index] = len(node.children)
            for child in node.children:
                parent_of[child.index] = node
        merged: dict[int, tuple[list[PlanPip], set[int]]] = {}
        node_stats: dict[int, SearchStats] = {}
        failures: dict[int, tuple[str, str, SearchStats]] = {}
        child_failed: set[int] = set()
        #: per completed node: net-count deltas of its whole subtree
        updates: dict[int, dict[int, int]] = {}
        futs: dict[Future, PartitionNode] = {}
        payloads: dict[int, tuple] = {}  # node payload params, for resends
        ready: list[PartitionNode] = [n for n in tree_nodes if n.is_leaf]

        def overlay_of(node: PartitionNode) -> list[tuple[int, int]]:
            ov: dict[int, int] = {}
            for child in node.children:
                for w, d in updates[child.index].items():
                    ov[w] = ov.get(w, 0) + d
            return sorted((w, d) for w, d in ov.items() if d)

        def submit(node: PartitionNode, overlay) -> Future:
            group = list(node.nets)
            if backend == "thread":
                return pool.submit(
                    _thread_node_task,
                    ctx,
                    contexts,
                    delta_log,
                    v_target,
                    group,
                    nets,
                    net_wires,
                    overlay,
                    present_factor,
                )
            params = (
                group,
                {idx: (nets[idx].source, nets[idx].sinks) for idx in group},
                {idx: tuple(net_wires[idx]) for idx in group},
                overlay,
                present_factor,
                remaining_ms,
            )
            payloads[node.index] = params
            return pool.submit(
                _process_node_task, *shipper.payload(v_target, *params)
            )

        def decode(node: PartitionNode, fut: Future) -> tuple:
            try:
                raw = fut.result()
            except BrokenProcessPool:
                _drop_pool(arch, n_workers)
                raise
            if backend == "thread":
                return raw
            if raw[0] == "stale":
                # an unseen worker got a suffix-only payload: resend the
                # same node with the full log and config (result is the
                # same either way; only the shipping path differs)
                raw = pool.submit(
                    _process_node_task,
                    *shipper.payload(v_target, *payloads[node.index], full=True),
                ).result()
            kind, payload, stats_dict, pid = raw
            shipper.seen(pid, v_target)
            if kind == "ok":
                payload = {
                    idx: (plan, set(wires)) for idx, (plan, wires) in payload.items()
                }
            return (kind, payload, SearchStats(**stats_dict))

        def complete(node: PartitionNode, out: dict, nstats: SearchStats) -> None:
            upd: dict[int, int] = {}
            for child in node.children:
                for w, d in updates.pop(child.index).items():
                    upd[w] = upd.get(w, 0) + d
            for idx, (_plan, wires) in out.items():
                for w in net_wires[idx]:
                    upd[w] = upd.get(w, 0) - 1
                for w in wires:
                    upd[w] = upd.get(w, 0) + 1
            updates[node.index] = upd
            merged.update(out)
            node_stats[node.index] = nstats
            parent = parent_of.get(node.index)
            if parent is not None:
                pending[parent.index] -= 1
                if pending[parent.index] == 0 and parent.index not in child_failed:
                    ready.append(parent)

        while True:
            while ready:
                node = ready.pop(0)
                if not node.nets:
                    complete(node, {}, SearchStats())
                    continue
                futs[submit(node, overlay_of(node))] = node
            if not futs:
                break
            done, _ = wait(list(futs), return_when=FIRST_COMPLETED)
            for fut in sorted(done, key=lambda f: futs[f].index):
                node = futs.pop(fut)
                kind, payload, nstats = decode(node, fut)
                if kind == "ok":
                    complete(node, payload, nstats)
                else:
                    failures[node.index] = (kind, payload, nstats)
                    node_stats[node.index] = nstats
                    parent = parent_of.get(node.index)
                    while parent is not None:  # no ancestor may launch
                        child_failed.add(parent.index)
                        parent = parent_of.get(parent.index)

        for i in sorted(node_stats):
            stats.merge(node_stats[i])
        if failures:
            kind, message, fstats = failures[min(failures)]
            exc = (
                errors.DeadlineExceededError
                if kind == "deadline"
                else errors.UnroutableError
            )
            raise exc(message, search_stats=fstats)
        return merged

    converged = False
    timed_out = False
    iteration = 0
    try:
        for iteration in range(1, max_iterations + 1):
            try:
                if n_workers == 1:
                    counts = list(use_count)
                    merged = ctx.route_group(
                        list(range(len(nets))),
                        nets,
                        net_wires,
                        counts,
                        serial_state,
                        present_factor,
                        stats,
                    )
                else:
                    remaining_ms = None
                    if backend == "process":
                        if deadline is not None:
                            # honour explicit cancel() at the iteration
                            # boundary (workers only ever see a
                            # wall-clock budget)
                            if deadline.expired():
                                raise errors.DeadlineExceededError(
                                    "pathfinder abandoned: deadline expired",
                                    search_stats=stats,
                                )
                            rem = deadline.remaining_ms()
                            remaining_ms = (
                                None if rem == float("inf") else rem
                            )
                        shipper.ipc_bytes.append(0)
                    merged = run_tree(iteration - 1, remaining_ms)
            except errors.DeadlineExceededError:
                # abandon the whole negotiation: nothing has been applied
                # to the device yet, so the structured "partial" outcome
                # is just the honest not-converged result
                timed_out = True
                break
            # iteration barrier: fold results into the usage index and
            # derive the sparse absolute delta for the hybrid-update log
            counts_assign: dict[int, int] = {}
            touched: set[int] = set()
            for idx, (plan, wires) in merged.items():
                plans[idx] = plan
                old = net_wires[idx]
                touched.update(old)
                touched.update(wires)
                for w in old - wires:
                    users = usage.get(w)
                    if users is not None:
                        users.discard(idx)
                for w in wires - old:
                    usage.setdefault(w, set()).add(idx)
                net_wires[idx] = wires
            for w in touched:
                users = usage.get(w)
                c = len(users) if users else 0
                if c == 0:
                    usage.pop(w, None)
                if c != use_count[w]:
                    use_count[w] = c
                    counts_assign[w] = c
            shared = [w for w, users in usage.items() if len(users) > 1]
            if not shared:
                converged = True
                break
            history_assign: dict[int, float] = {}
            for w in shared:
                history[w] += history_increment
                history_assign[w] = history[w]
            delta_log.append((counts_assign, history_assign))
            present_factor *= present_factor_mult
    finally:
        if backend == "thread" and pool is not None:
            pool.shutdown(wait=True)
        # the process pool is cached for reuse; shut down at exit
        record_global(stats)

    result = PathFinderResult(
        iterations=iteration,
        converged=converged,
        stats=stats,
        workers=n_workers,
        backend=backend,
        timed_out=timed_out,
        ipc_bytes=shipper.ipc_bytes if shipper is not None else [],
    )
    if converged:
        for idx in range(len(nets)):
            result.plans[idx] = plans[idx]
        if apply:
            for idx in range(len(nets)):
                result.pips_added += apply_plan(device, plans[idx])
    return result
