"""PathFinder-style negotiated-congestion router (baseline comparator).

The paper's Section 6 points at timing/routability-driven routers (Swartz,
Betz & Rose [6]) as the direction for better algorithms, and Section 3.1
argues that "in an RTR environment traditional routing algorithms require
too much time".  This module implements the traditional algorithm that
claim is about: a PathFinder negotiated-congestion router (the core of
VPR and of ref [6]) — every net is routed allowing overuse, and present-
and history-congestion costs are escalated until no wire is shared.

Per-sink searches run on the shared compiled-graph kernel
(:mod:`repro.core.kernel`) with flat present/history cost tables.  With
``workers > 1`` the per-iteration net loop is parallelized in the style
of the parallel-router literature (Zang et al., *An Open-Source Fast
Parallel Routing Approach for Commercial FPGAs*): nets are spatially
partitioned by bounding-box centre, partitions are routed concurrently
against a snapshot of the congestion state (each worker owning a private
use-count overlay and search state), and cross-partition conflicts are
resolved by the ordinary negotiation loop.

Two execution backends share that exact decomposition:

* ``backend="thread"`` — a :class:`ThreadPoolExecutor`, created once per
  routing call (not per iteration).  Under CPython's GIL this buys
  determinism and the parallel contract, not wall-clock speedup.
* ``backend="process"`` — OS-level workers on a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The compiled CSR
  graph is exported once per part into POSIX shared memory
  (:func:`repro.arch.graph.shared_graph_export`) and attached zero-copy
  by each worker, so neither fork nor spawn recompiles or copies the
  adjacency.  Each iteration ships only the sparse congestion snapshot
  (present counts, history, the group's previous wires) and receives
  plans/wires/stats back, merged deterministically in group order at the
  iteration barrier.  Worker pools are cached per ``(part, workers)``
  and reused across calls; they are shut down at interpreter exit (or
  via :func:`shutdown_process_pools`).

For any fixed ``workers`` the result is deterministic and **identical
across backends**: a worker group is a pure function of the
iteration-start congestion state, so thread and process executions of
the same groups produce bit-identical plans, costs and
:class:`~repro.core.kernel.SearchStats`.

It serves as the quality/time baseline for experiment E8: slower than
JRoute's greedy one-shot calls, but able to resolve congestion that
defeats greedy ordering.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .. import errors
from ..arch.graph import attach_shared_graph, shared_graph_export
from ..arch.virtex import VirtexArch
from ..core.deadline import Deadline
from ..core.kernel import (
    SearchState,
    SearchStats,
    dijkstra,
    extract_plan,
    record_global,
)
from ..device.fabric import Device
from .base import PlanPip, apply_plan
from .maze import _name_block_table

__all__ = [
    "NetSpec",
    "PathFinderResult",
    "route_pathfinder",
    "shutdown_process_pools",
]

#: Recognized execution backends for ``workers > 1``.
BACKENDS = ("thread", "process")


@dataclass(frozen=True, slots=True)
class NetSpec:
    """One net to route: a source wire and its sink wires."""

    source: int
    sinks: tuple[int, ...]

    @staticmethod
    def of(source: int, sinks: Sequence[int]) -> "NetSpec":
        return NetSpec(source, tuple(sinks))


@dataclass(slots=True)
class PathFinderResult:
    """Outcome of a negotiated-congestion run."""

    iterations: int
    converged: bool
    plans: dict[int, list[PlanPip]] = field(default_factory=dict)  #: per net index
    pips_added: int = 0
    #: unified search instrumentation across all iterations and workers
    stats: SearchStats = field(default_factory=SearchStats)
    #: concurrency the run was executed with
    workers: int = 1
    #: execution backend the run was executed with
    backend: str = "thread"
    #: the run was abandoned because its deadline expired (nothing applied)
    timed_out: bool = False


def _partition(
    device: Device, nets: Sequence[NetSpec], workers: int
) -> list[list[int]]:
    """Spatially partition net indices into ``workers`` stripes.

    Nets are sorted by bounding-box centre (column-major, so stripes are
    vertical slices of the chip) and split into contiguous, balanced
    groups.  Deterministic for a fixed net list and worker count.
    """
    tile_coords = device.arch.tile_coords
    centers: list[tuple[float, float, int]] = []
    for i, net in enumerate(nets):
        pts = [tile_coords(net.source)]
        pts.extend(tile_coords(s) for s in net.sinks)
        rows = [p[0] for p in pts]
        cols = [p[1] for p in pts]
        centers.append(
            ((min(cols) + max(cols)) / 2.0, (min(rows) + max(rows)) / 2.0, i)
        )
    centers.sort()
    k = max(1, min(workers, len(centers)))
    groups: list[list[int]] = []
    base, extra = divmod(len(centers), k)
    pos = 0
    for gi in range(k):
        size = base + (1 if gi < extra else 0)
        groups.append(sorted(i for _, _, i in centers[pos : pos + size]))
        pos += size
    return [g for g in groups if g]


class _NetRouter:
    """Per-call static routing context shared by every execution path.

    Serial loop, thread workers and process workers all route nets
    through the same two methods below, so backend parity is structural:
    there is exactly one implementation of "route one net under these
    congestion costs".
    """

    __slots__ = (
        "graph",
        "arch",
        "blocked",
        "endpoint_ok",
        "name_blocked",
        "history",
        "max_nodes",
        "deadline",
    )

    def __init__(
        self,
        graph,
        arch,
        blocked,
        endpoint_ok,
        name_blocked,
        history: list[float],
        max_nodes: int,
        deadline: Deadline | None,
    ) -> None:
        self.graph = graph
        self.arch = arch
        self.blocked = blocked
        self.endpoint_ok = endpoint_ok
        self.name_blocked = name_blocked
        self.history = history
        self.max_nodes = max_nodes
        self.deadline = deadline

    def sink_order(self, net: NetSpec) -> list[int]:
        tile_coords = self.arch.tile_coords
        sr, sc = tile_coords(net.source)
        return sorted(
            set(net.sinks),
            key=lambda s: (
                abs(tile_coords(s)[0] - sr) + abs(tile_coords(s)[1] - sc),
                s,
            ),
        )

    def route_net(
        self,
        idx: int,
        net: NetSpec,
        counts: list[int],
        state: SearchState,
        pf: float,
        stats: SearchStats,
    ) -> tuple[list[PlanPip], set[int]]:
        """Fanout-route one net under current congestion costs.

        ``counts`` is the present-use table the search prices against;
        the net's previous wires must already be removed from it by the
        caller.  Returns ``(plan, wires)`` — sources are exempt from
        sharing accounting, so ``wires`` excludes the source.
        """
        tree: set[int] = {net.source}
        plan: list[PlanPip] = []
        canonicalize = self.arch.canonicalize
        for sink in self.sink_order(net):
            goal, _cost, _exp, _pushes, _fav, exceeded, search_timed_out = dijkstra(
                self.graph,
                state,
                tree,
                (sink,),
                occupied=self.blocked,
                allow=self.endpoint_ok,
                name_blocked=self.name_blocked,
                congestion=(counts, self.history, pf),
                max_nodes=self.max_nodes,
                stats=stats,
                deadline=self.deadline,
            )
            if search_timed_out:
                raise errors.DeadlineExceededError(
                    f"pathfinder net {idx}: deadline expired at sink {sink}",
                    search_stats=stats,
                )
            if exceeded:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: node budget exhausted",
                    search_stats=stats,
                )
            if goal < 0:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: sink {sink} unreachable",
                    search_stats=stats,
                )
            path = extract_plan(self.graph, state, goal)
            plan.extend(path)
            for row, col, _from_name, to_name in path:
                canon = canonicalize(row, col, to_name)
                assert canon is not None
                tree.add(canon)
        return plan, tree - {net.source}

    def route_group(
        self,
        group: Sequence[int],
        nets,
        old_wires,
        counts: list[int],
        state: SearchState,
        pf: float,
        stats: SearchStats,
    ) -> dict[int, tuple[list[PlanPip], set[int]]]:
        """Route one partition against a private use-count overlay.

        ``counts`` is this worker's snapshot of the iteration-start
        present-use table (it may be mutated freely); ``old_wires`` maps
        each net index to the wires it used in the previous iteration.
        Nets are processed in ascending index order: within a group,
        later nets see earlier group-mates' fresh wires — exactly the
        serial semantics when the group is the whole net list.
        """
        out: dict[int, tuple[list[PlanPip], set[int]]] = {}
        for idx in group:
            for w in old_wires[idx]:
                counts[w] -= 1
            plan, wires = self.route_net(idx, nets[idx], counts, state, pf, stats)
            out[idx] = (plan, wires)
            for w in wires:
                counts[w] += 1
        return out


def _thread_group_task(
    ctx: _NetRouter,
    group: Sequence[int],
    nets: Sequence[NetSpec],
    old_wires: Sequence[set[int]],
    use_count: list[int],
    state: SearchState,
    pf: float,
) -> tuple[dict[int, tuple[list[PlanPip], set[int]]], SearchStats]:
    counts = list(use_count)
    stats = SearchStats()
    out = ctx.route_group(group, nets, old_wires, counts, state, pf, stats)
    return out, stats


# -- process backend ----------------------------------------------------------
#
# Worker processes hold the attached shared-memory graph, the (cached)
# architecture and one preallocated SearchState plus zeroed flat
# congestion tables in module globals; tasks are otherwise stateless, so
# it does not matter which worker executes which group.

_W_GRAPH = None
_W_ARCH = None
_W_STATE = None
_W_COUNTS: list[int] = []
_W_HISTORY: list[float] = []
_W_ZERO_I: list[int] = []
_W_ZERO_F: list[float] = []


def _process_worker_init(meta: dict, part: str) -> None:
    """Pool initializer: attach the shared graph, preallocate state."""
    global _W_GRAPH, _W_ARCH, _W_STATE, _W_COUNTS, _W_HISTORY
    global _W_ZERO_I, _W_ZERO_F
    _W_GRAPH = attach_shared_graph(meta)
    _W_ARCH = VirtexArch(part)
    n = _W_GRAPH.n_nodes
    _W_STATE = SearchState(n)
    _W_COUNTS = [0] * n
    _W_HISTORY = [0.0] * n
    _W_ZERO_I = [0] * n
    _W_ZERO_F = [0.0] * n


def _process_group_task(
    config: tuple,
    group: Sequence[int],
    group_nets: Mapping[int, tuple[int, tuple[int, ...]]],
    old_wires: Mapping[int, tuple[int, ...]],
    counts_sparse: Mapping[int, int],
    history_sparse: Mapping[int, float],
    pf: float,
    deadline_ms: float | None,
) -> tuple:
    """Route one partition inside a worker process.

    Returns ``("ok", {idx: (plan, wires)}, stats_tuple)`` or an error
    marker ``("unroutable" | "deadline", message, stats_tuple)`` — the
    parent re-raises the matching exception with the identical message,
    so failure behaviour is indistinguishable from the thread backend.
    """
    blocked, endpoint_ok, name_blocked, max_nodes = config
    counts = _W_COUNTS
    counts[:] = _W_ZERO_I
    for w, c in counts_sparse.items():
        counts[w] = c
    history = _W_HISTORY
    history[:] = _W_ZERO_F
    for w, h in history_sparse.items():
        history[w] = h
    nets = {i: NetSpec.of(s, sk) for i, (s, sk) in group_nets.items()}
    ctx = _NetRouter(
        _W_GRAPH,
        _W_ARCH,
        blocked,
        endpoint_ok,
        name_blocked,
        history,
        max_nodes,
        Deadline.after_ms(deadline_ms),
    )
    stats = SearchStats()
    try:
        out = ctx.route_group(group, nets, old_wires, counts, _W_STATE, pf, stats)
    except errors.DeadlineExceededError as e:
        return ("deadline", e.message, stats.as_dict())
    except errors.UnroutableError as e:
        return ("unroutable", e.message, stats.as_dict())
    return (
        "ok",
        {idx: (plan, tuple(wires)) for idx, (plan, wires) in out.items()},
        stats.as_dict(),
    )


#: Cached worker pools, keyed by (part name, worker count).  Reused
#: across routing calls so steady-state requests pay no fork/attach
#: cost; shut down at interpreter exit.
_POOLS: dict[tuple[str, int], ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _process_pool(arch: VirtexArch, workers: int) -> ProcessPoolExecutor:
    key = (arch.part.name, workers)
    pool = _POOLS.get(key)
    if pool is None:
        export = shared_graph_export(arch)  # before the lock: compiles
        with _POOLS_LOCK:
            pool = _POOLS.get(key)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_process_worker_init,
                    initargs=(export.meta, arch.part.name),
                )
                _POOLS[key] = pool
    return pool


def _drop_pool(arch: VirtexArch, workers: int) -> None:
    with _POOLS_LOCK:
        pool = _POOLS.pop((arch.part.name, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def shutdown_process_pools() -> None:
    """Shut down every cached process-backend worker pool (idempotent)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


def route_pathfinder(
    device: Device,
    nets: Sequence[NetSpec],
    *,
    use_longs: bool = True,
    max_iterations: int = 30,
    present_factor_init: float = 0.5,
    present_factor_mult: float = 1.6,
    history_increment: float = 0.4,
    max_nodes_per_net: int = 400_000,
    apply: bool = True,
    workers: int = 1,
    backend: str = "thread",
    deadline: Deadline | None = None,
) -> PathFinderResult:
    """Route ``nets`` with negotiated congestion, then apply to the device.

    Wires already used on the device (foreign nets) are impassable;
    congestion is negotiated only among the given nets.  Raises
    :class:`~repro.errors.UnroutableError` if any single net has no path
    at all, and reports ``converged=False`` when sharing remains after
    ``max_iterations`` (in which case nothing is applied).

    ``workers > 1`` routes spatial partitions of the net list
    concurrently per iteration; ``backend`` selects the execution vehicle
    (``"thread"`` or ``"process"``, see the module docstring).  For a
    fixed worker count, plans, costs and stats are identical across
    backends; ``workers=1`` reproduces the serial algorithm exactly
    (plan-identical to the pre-kernel implementation) on either backend.

    A ``deadline`` bounds the whole negotiation: when it expires the run
    is abandoned mid-iteration, nothing is applied, and the result comes
    back with ``converged=False, timed_out=True`` (no exception escapes).
    For the process backend the remaining budget is re-shipped to the
    workers at each iteration (explicit ``cancel()`` trips are honoured
    at iteration barriers only).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    arch = device.arch
    graph = device.routing_graph()
    n_nodes = graph.n_nodes
    blocked = device.state.occupied
    endpoint_ok: set[int] = set()
    for net in nets:
        endpoint_ok.add(net.source)
        endpoint_ok.update(net.sinks)

    name_blocked = _name_block_table(use_longs, frozenset())

    history: list[float] = [0.0] * n_nodes
    #: sparse mirror of ``history`` (what the process backend ships)
    history_sparse: dict[int, float] = {}
    #: wire -> set of net indices using it in the current solution
    usage: dict[int, set[int]] = {}
    #: use_count[w] == len(usage[w]); flat table for the kernel cost
    use_count: list[int] = [0] * n_nodes
    #: per net: wires used and plan
    net_wires: list[set[int]] = [set() for _ in nets]
    plans: list[list[PlanPip]] = [[] for _ in nets]
    present_factor = present_factor_init
    stats = SearchStats()

    ctx = _NetRouter(
        graph,
        arch,
        blocked,
        endpoint_ok,
        name_blocked,
        history,
        max_nodes_per_net,
        deadline,
    )

    def rebuild_usage() -> None:
        usage.clear()
        for w, c in enumerate(use_count):
            if c:
                use_count[w] = 0
        for idx, wset in enumerate(net_wires):
            for w in wset:
                usage.setdefault(w, set()).add(idx)
        for w, users in usage.items():
            use_count[w] = len(users)

    n_workers = max(1, min(workers, len(nets))) if nets else 1
    groups = (
        _partition(device, nets, n_workers)
        if n_workers > 1
        else [list(range(len(nets)))]
    )

    def merge_group(out: Mapping[int, tuple[list[PlanPip], Sequence[int]]]) -> None:
        for idx, (plan, wires) in out.items():
            plans[idx] = plan
            net_wires[idx] = set(wires)

    pool = None
    proc_config = None
    if n_workers > 1:
        if backend == "thread":
            # one pool per routing call (not per iteration)
            pool = ThreadPoolExecutor(max_workers=n_workers)
            worker_states = [SearchState(n_nodes) for _ in range(n_workers)]
        else:
            pool = _process_pool(arch, n_workers)
            proc_config = (
                blocked.tobytes(),
                frozenset(endpoint_ok),
                name_blocked,
                max_nodes_per_net,
            )
    else:
        serial_state = device.search_state()

    converged = False
    timed_out = False
    iteration = 0
    try:
        for iteration in range(1, max_iterations + 1):
            try:
                if n_workers == 1:
                    counts = list(use_count)
                    merge_group(
                        ctx.route_group(
                            groups[0],
                            nets,
                            net_wires,
                            counts,
                            serial_state,
                            present_factor,
                            stats,
                        )
                    )
                elif backend == "thread":
                    futures = [
                        pool.submit(
                            _thread_group_task,
                            ctx,
                            group,
                            nets,
                            net_wires,
                            use_count,
                            worker_states[gi],
                            present_factor,
                        )
                        for gi, group in enumerate(groups)
                    ]
                    for fut in futures:
                        try:
                            out, group_stats = fut.result()
                        except errors.RoutingFailure as e:
                            st = e.search_stats
                            if st is not None and st is not stats:
                                stats.merge(st)
                            raise
                        stats.merge(group_stats)
                        merge_group(out)
                else:
                    remaining_ms = None
                    if deadline is not None:
                        # honour explicit cancel() at the iteration barrier
                        # (workers only ever see a wall-clock budget)
                        if deadline.expired():
                            raise errors.DeadlineExceededError(
                                "pathfinder abandoned: deadline expired",
                                search_stats=stats,
                            )
                        rem = deadline.remaining_ms()
                        remaining_ms = None if rem == float("inf") else rem
                    counts_sparse = {
                        w: len(users) for w, users in usage.items()
                    }
                    futures = [
                        pool.submit(
                            _process_group_task,
                            proc_config,
                            group,
                            {
                                idx: (nets[idx].source, nets[idx].sinks)
                                for idx in group
                            },
                            {idx: tuple(net_wires[idx]) for idx in group},
                            counts_sparse,
                            history_sparse,
                            present_factor,
                            remaining_ms,
                        )
                        for group in groups
                    ]
                    for fut in futures:
                        try:
                            kind, payload, stats_dict = fut.result()
                        except BrokenProcessPool:
                            _drop_pool(arch, n_workers)
                            raise
                        group_stats = SearchStats(**stats_dict)
                        stats.merge(group_stats)
                        if kind == "deadline":
                            raise errors.DeadlineExceededError(
                                payload, search_stats=group_stats
                            )
                        if kind == "unroutable":
                            raise errors.UnroutableError(
                                payload, search_stats=group_stats
                            )
                        merge_group(payload)
                rebuild_usage()
            except errors.DeadlineExceededError:
                # abandon the whole negotiation: nothing has been applied
                # to the device yet, so the structured "partial" outcome
                # is just the honest not-converged result
                timed_out = True
                break
            shared = [w for w, users in usage.items() if len(users) > 1]
            if not shared:
                converged = True
                break
            for w in shared:
                history[w] += history_increment
                history_sparse[w] = history[w]
            present_factor *= present_factor_mult
    finally:
        if backend == "thread" and pool is not None:
            pool.shutdown(wait=True)
        # the process pool is cached for reuse; shut down at exit
        record_global(stats)

    result = PathFinderResult(
        iterations=iteration,
        converged=converged,
        stats=stats,
        workers=n_workers,
        backend=backend,
        timed_out=timed_out,
    )
    if converged:
        for idx in range(len(nets)):
            result.plans[idx] = plans[idx]
        if apply:
            for idx in range(len(nets)):
                result.pips_added += apply_plan(device, plans[idx])
    return result
