"""PathFinder-style negotiated-congestion router (baseline comparator).

The paper's Section 6 points at timing/routability-driven routers (Swartz,
Betz & Rose [6]) as the direction for better algorithms, and Section 3.1
argues that "in an RTR environment traditional routing algorithms require
too much time".  This module implements the traditional algorithm that
claim is about: a PathFinder negotiated-congestion router (the core of
VPR and of ref [6]) — every net is routed allowing overuse, and present-
and history-congestion costs are escalated until no wire is shared.

It serves as the quality/time baseline for experiment E8: slower than
JRoute's greedy one-shot calls, but able to resolve congestion that
defeats greedy ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

from .. import errors
from ..device.fabric import Device
from .base import PlanPip, apply_plan

__all__ = ["NetSpec", "PathFinderResult", "route_pathfinder"]


@dataclass(frozen=True, slots=True)
class NetSpec:
    """One net to route: a source wire and its sink wires."""

    source: int
    sinks: tuple[int, ...]

    @staticmethod
    def of(source: int, sinks: Sequence[int]) -> "NetSpec":
        return NetSpec(source, tuple(sinks))


@dataclass(slots=True)
class PathFinderResult:
    """Outcome of a negotiated-congestion run."""

    iterations: int
    converged: bool
    plans: dict[int, list[PlanPip]] = field(default_factory=dict)  #: per net index
    pips_added: int = 0


def route_pathfinder(
    device: Device,
    nets: Sequence[NetSpec],
    *,
    use_longs: bool = True,
    max_iterations: int = 30,
    present_factor_init: float = 0.5,
    present_factor_mult: float = 1.6,
    history_increment: float = 0.4,
    max_nodes_per_net: int = 400_000,
    apply: bool = True,
) -> PathFinderResult:
    """Route ``nets`` with negotiated congestion, then apply to the device.

    Wires already used on the device (foreign nets) are impassable;
    congestion is negotiated only among the given nets.  Raises
    :class:`~repro.errors.UnroutableError` if any single net has no path
    at all, and reports ``converged=False`` when sharing remains after
    ``max_iterations`` (in which case nothing is applied).
    """
    arch = device.arch
    blocked = device.state.occupied
    endpoint_ok: set[int] = set()
    for net in nets:
        endpoint_ok.add(net.source)
        endpoint_ok.update(net.sinks)

    from ..arch import wires as _w

    long_name_lo = _w.LONG_H[0]
    long_name_hi = _w.LONG_V[-1]

    history: dict[int, float] = {}
    #: wire -> set of net indices using it in the current solution
    usage: dict[int, set[int]] = {}
    #: per net: wires used and plan
    net_wires: list[set[int]] = [set() for _ in nets]
    plans: list[list[PlanPip]] = [[] for _ in nets]
    present_factor = present_factor_init

    def wire_cost(canon: int, to_name: int, net_idx: int) -> float:
        base = arch.wire_cost(to_name)
        users = usage.get(canon)
        others = len(users - {net_idx}) if users else 0
        return base * (1.0 + present_factor * others) + history.get(canon, 0.0)

    def route_net(idx: int, net: NetSpec) -> None:
        """Fanout-route one net under current congestion costs."""
        # rip up
        for w in net_wires[idx]:
            users = usage.get(w)
            if users:
                users.discard(idx)
                if not users:
                    del usage[w]
        net_wires[idx] = set()
        plans[idx] = []
        tree: set[int] = {net.source}
        sr, sc, _ = arch.primary_name(net.source)
        order = sorted(
            set(net.sinks),
            key=lambda s: (
                abs(arch.primary_name(s)[0] - sr) + abs(arch.primary_name(s)[1] - sc),
                s,
            ),
        )
        for sink in order:
            dist: dict[int, float] = {w: 0.0 for w in tree}
            prev: dict[int, PlanPip] = {}
            heap = [(0.0, w) for w in tree]
            heapq.heapify(heap)
            expanded = 0
            found = False
            while heap:
                g, canon = heapq.heappop(heap)
                if g > dist.get(canon, float("inf")):
                    continue
                if canon == sink:
                    found = True
                    break
                expanded += 1
                if expanded > max_nodes_per_net:
                    raise errors.UnroutableError(
                        f"pathfinder net {idx}: node budget exhausted"
                    )
                for row, col, from_name, to_name, canon_to in device.fanout_pips(canon):
                    if not use_longs and long_name_lo <= to_name <= long_name_hi:
                        continue
                    if blocked[canon_to] and canon_to not in endpoint_ok:
                        continue  # foreign net
                    ng = g + wire_cost(canon_to, to_name, idx)
                    if ng < dist.get(canon_to, float("inf")):
                        dist[canon_to] = ng
                        prev[canon_to] = (row, col, from_name, to_name)
                        heapq.heappush(heap, (ng, canon_to))
            if not found:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: sink {sink} unreachable"
                )
            # back-walk, add to tree and plan
            path: list[PlanPip] = []
            w = sink
            while w not in tree:
                pip = prev[w]
                path.append(pip)
                cf = arch.canonicalize(pip[0], pip[1], pip[2])
                assert cf is not None
                w = cf
            path.reverse()
            plans[idx].extend(path)
            for row, col, from_name, to_name in path:
                canon = arch.canonicalize(row, col, to_name)
                assert canon is not None
                tree.add(canon)
        # commit usage (sources are exempt from sharing accounting)
        net_wires[idx] = tree - {net.source}
        for w in net_wires[idx]:
            usage.setdefault(w, set()).add(idx)

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        for idx, net in enumerate(nets):
            route_net(idx, net)
        shared = [w for w, users in usage.items() if len(users) > 1]
        if not shared:
            converged = True
            break
        for w in shared:
            history[w] = history.get(w, 0.0) + history_increment
        present_factor *= present_factor_mult

    result = PathFinderResult(iterations=iteration, converged=converged)
    if converged:
        for idx in range(len(nets)):
            result.plans[idx] = plans[idx]
        if apply:
            for idx in range(len(nets)):
                result.pips_added += apply_plan(device, plans[idx])
    return result
