"""Auto point-to-point routing: predefined templates, then maze fallback.

This is the paper's suggested implementation of
``route(EndPoint source, EndPoint sink)``: try a set of predefined
templates reducing the search space; fall back on a maze algorithm when
they all fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import errors
from ..arch import wires
from ..arch.templates import TemplateValue as TV
from ..arch.wires import WireClass
from ..core.deadline import Deadline
from ..device.fabric import Device
from .base import PlanPip
from .maze import route_maze
from .template_router import route_template
from .template_sets import predefined_templates

__all__ = ["route_point_to_point", "P2PResult"]


@dataclass(slots=True)
class P2PResult:
    """Outcome of a point-to-point route."""

    plan: list[PlanPip]
    method: str               #: "template" or "maze"
    templates_tried: int      #: how many predefined templates were attempted
    template_used: object | None = None  #: set when method == "template"
    faults_avoided: int = 0   #: faulty edges the maze search routed around
    #: kernel instrumentation of the maze search (None on template hits)
    stats: object | None = None


def route_point_to_point(
    device: Device,
    source: int,
    sink: int,
    *,
    reuse: tuple[int, ...] = (),
    try_templates: bool = True,
    use_longs: bool = True,
    template_budget: int = 4_000,
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
) -> P2PResult:
    """Plan a route from wire ``source`` to wire ``sink``.

    Templates are only attempted for the common CLB-output to CLB-input
    case with no tree reuse; everything else (odd endpoint classes, net
    extension) goes straight to the maze router.  A ``deadline`` is
    checked between template attempts and bounds the maze fallback.
    """
    arch = device.arch
    if device.state.occupied[sink]:
        tr, tc, tn = arch.primary_name(sink)
        raise errors.ContentionError(
            "sink wire is already in use; unroute it first",
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=device.state.root_of(sink),
        )
    templates_tried = 0
    if try_templates and not reuse:
        src_cls = arch.wire_class_of(source)
        sink_cls = arch.wire_class_of(sink)
        if src_cls is WireClass.SLICE_OUT and sink_cls in (
            WireClass.SLICE_IN,
            WireClass.CTL_IN,
        ):
            sr, sc, _ = arch.primary_name(source)
            tr, tc, _ = arch.primary_name(sink)
            candidates = predefined_templates(tr - sr, tc - sc)
            for tmpl in candidates:
                if deadline is not None:
                    deadline.check("template attempt")
                templates_tried += 1
                try:
                    plan = route_template(
                        device,
                        source,
                        tmpl.values,
                        end_canon=sink,
                        max_nodes=template_budget,
                    )
                except errors.UnroutableError:
                    continue
                return P2PResult(plan, "template", templates_tried, tmpl)
    result = route_maze(
        device,
        [source],
        {sink},
        reuse=reuse,
        use_longs=use_longs,
        heuristic_weight=heuristic_weight,
        max_nodes=max_nodes,
        deadline=deadline,
    )
    return P2PResult(
        result.plan,
        "maze",
        templates_tried,
        None,
        result.faults_avoided,
        result.stats,
    )
