"""Auto point-to-point routing: predefined templates, then maze fallback.

This is the paper's suggested implementation of
``route(EndPoint source, EndPoint sink)``: try a set of predefined
templates reducing the search space; fall back on a maze algorithm when
they all fail.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import errors
from ..arch import wires
from ..arch.templates import TemplateValue as TV
from ..arch.wires import WireClass
from ..core.deadline import Deadline
from ..device.fabric import Device
from .base import PlanPip
from .maze import route_maze, route_maze_batch
from .template_router import route_template
from .template_sets import predefined_templates

__all__ = ["route_point_to_point", "route_point_to_point_batch", "P2PResult"]


@dataclass(slots=True)
class P2PResult:
    """Outcome of a point-to-point route."""

    plan: list[PlanPip]
    method: str               #: "template" or "maze"
    templates_tried: int      #: how many predefined templates were attempted
    template_used: object | None = None  #: set when method == "template"
    faults_avoided: int = 0   #: faulty edges the maze search routed around
    #: kernel instrumentation of the maze search (None on template hits)
    stats: object | None = None


def route_point_to_point(
    device: Device,
    source: int,
    sink: int,
    *,
    reuse: tuple[int, ...] = (),
    try_templates: bool = True,
    use_longs: bool = True,
    template_budget: int = 4_000,
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
) -> P2PResult:
    """Plan a route from wire ``source`` to wire ``sink``.

    Templates are only attempted for the common CLB-output to CLB-input
    case with no tree reuse; everything else (odd endpoint classes, net
    extension) goes straight to the maze router.  A ``deadline`` is
    checked between template attempts and bounds the maze fallback.
    """
    arch = device.arch
    if device.state.occupied[sink]:
        tr, tc, tn = arch.primary_name(sink)
        raise errors.ContentionError(
            "sink wire is already in use; unroute it first",
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=device.state.root_of(sink),
        )
    templates_tried = 0
    if try_templates and not reuse:
        hit, templates_tried = _template_phase(
            device, source, sink, template_budget, deadline
        )
        if hit is not None:
            return hit
    result = route_maze(
        device,
        [source],
        {sink},
        reuse=reuse,
        use_longs=use_longs,
        heuristic_weight=heuristic_weight,
        max_nodes=max_nodes,
        deadline=deadline,
    )
    return P2PResult(
        result.plan,
        "maze",
        templates_tried,
        None,
        result.faults_avoided,
        result.stats,
    )


def _template_phase(
    device: Device,
    source: int,
    sink: int,
    template_budget: int,
    deadline: Deadline | None,
) -> tuple[P2PResult | None, int]:
    """Attempt the predefined templates for one source/sink pair.

    Returns ``(result, templates_tried)`` where ``result`` is a
    template-method :class:`P2PResult` on a hit and ``None`` when the
    pair either does not qualify (non-CLB endpoint classes) or every
    candidate template failed.
    """
    arch = device.arch
    src_cls = arch.wire_class_of(source)
    sink_cls = arch.wire_class_of(sink)
    if src_cls is not WireClass.SLICE_OUT or sink_cls not in (
        WireClass.SLICE_IN,
        WireClass.CTL_IN,
    ):
        return None, 0
    sr, sc, _ = arch.primary_name(source)
    tr, tc, _ = arch.primary_name(sink)
    templates_tried = 0
    for tmpl in predefined_templates(tr - sr, tc - sc):
        if deadline is not None:
            deadline.check("template attempt")
        templates_tried += 1
        try:
            plan = route_template(
                device,
                source,
                tmpl.values,
                end_canon=sink,
                max_nodes=template_budget,
            )
        except errors.UnroutableError:
            continue
        return P2PResult(plan, "template", templates_tried, tmpl), templates_tried
    return None, templates_tried


def route_point_to_point_batch(
    device: Device,
    pairs: "list[tuple[int, int]]",
    *,
    try_templates: bool = True,
    use_longs: bool = True,
    template_budget: int = 4_000,
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
    workers: int = 1,
    backend: str = "thread",
) -> "list[P2PResult | errors.JRouteError]":
    """Plan ``K`` independent point-to-point routes as one batch.

    ``pairs`` is a sequence of ``(source, sink)`` wire pairs.  Each pair
    goes through the same two phases as :func:`route_point_to_point`:
    the (cheap, scalar) predefined-template attempts first, then every
    template miss rides a single :func:`route_maze_batch` call — the
    lockstepped SoA kernel amortizes graph traversal, fault-mask sync
    and the global-stats publication across the whole fallback set.

    Returns one entry per pair **in request order**: a
    :class:`P2PResult` on success, or the :class:`~repro.errors.JRouteError`
    instance the scalar call would have raised (a failure never hides
    the remaining results).  Plans, costs and kernel stats are
    bit-identical to ``K`` sequential :func:`route_point_to_point`
    calls against the same device state.
    """
    arch = device.arch
    k = len(pairs)
    out: "list[P2PResult | errors.JRouteError | None]" = [None] * k
    tried: list[int] = [0] * k
    maze_lanes: list[int] = []
    maze_reqs: list[tuple[list[int], set[int]]] = []
    for i, (source, sink) in enumerate(pairs):
        if device.state.occupied[sink]:
            tr, tc, tn = arch.primary_name(sink)
            out[i] = errors.ContentionError(
                "sink wire is already in use; unroute it first",
                row=tr,
                col=tc,
                wire=wires.wire_name(tn),
                net=device.state.root_of(sink),
            )
            continue
        if try_templates:
            try:
                hit, tried[i] = _template_phase(
                    device, source, sink, template_budget, deadline
                )
            except errors.DeadlineExceededError as exc:
                out[i] = exc
                continue
            if hit is not None:
                out[i] = hit
                continue
        maze_lanes.append(i)
        maze_reqs.append(([source], {sink}))
    if maze_lanes:
        batch = route_maze_batch(
            device,
            maze_reqs,
            use_longs=use_longs,
            heuristic_weight=heuristic_weight,
            max_nodes=max_nodes,
            deadline=deadline,
            workers=workers,
            backend=backend,
        )
        for lane, res in zip(maze_lanes, batch.results):
            if isinstance(res, errors.JRouteError):
                out[lane] = res
            else:
                out[lane] = P2PResult(
                    res.plan,
                    "maze",
                    tried[lane],
                    None,
                    res.faults_avoided,
                    res.stats,
                )
    return out
