"""Greedy fanout routing (route level 5).

Paper, Section 3.1, on ``route(EndPoint source, EndPoint[] sink)``:
"It decides the best path for the entire collection of sinks.  This call
should be used instead of connecting each sink individually, since it
minimizes the routing resources used.  Each sink gets routed in order of
increasing distance from the source.  For each sink, the router attempts
to reuse the previous paths as much as possible.  Because it is not
timing driven, this algorithm is suitable only for non-critical nets. ...
Currently long lines are not supported; only hexes and singles are used."

Long lines are therefore **off by default** here (matching the paper's
initial implementation) and can be enabled (`use_longs=True`) to study
the paper's future-work claim that they "would improve the routing of
nets with large bounding boxes" — experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .. import errors
from ..arch import wires
from ..core.deadline import Deadline
from ..device.fabric import Device
from .base import PlanPip, apply_plan
from .maze import route_maze

__all__ = ["route_fanout", "FanoutResult"]


@dataclass(slots=True)
class FanoutResult:
    """Outcome of a fanout route: per-sink plans, in routing order."""

    order: list[int] = field(default_factory=list)   #: sinks, as routed
    plans: list[list[PlanPip]] = field(default_factory=list)
    pips_added: int = 0
    faults_avoided: int = 0  #: faulty edges masked out across all searches


def route_fanout(
    device: Device,
    source: int,
    sinks: Sequence[int],
    *,
    use_longs: bool = False,
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
    deadline: Deadline | None = None,
) -> FanoutResult:
    """Route one source to many sinks, reusing the growing tree.

    Applies connections to the device as it goes (each sink's search must
    see the previous sinks' wires as reusable tree); on failure for any
    sink the entire call is rolled back and
    :class:`~repro.errors.UnroutableError` is raised — the net is either
    fully routed or untouched.  A ``deadline`` bounds every per-sink
    search; a trip mid-fanout likewise rolls the whole call back before
    :class:`~repro.errors.DeadlineExceededError` propagates.
    """
    arch = device.arch
    sr, sc, _ = arch.primary_name(source)

    def dist(sink: int) -> int:
        r, c, _ = arch.primary_name(sink)
        return abs(r - sr) + abs(c - sc)

    order = sorted(set(sinks), key=lambda s: (dist(s), s))
    result = FanoutResult()
    applied: list[PlanPip] = []
    # wires of this net, reusable at zero cost by later sinks
    tree: set[int] = set(device.state.subtree(source))
    try:
        for sink in order:
            if sink in tree:
                # already reached (e.g. caller listed a sink twice)
                result.order.append(sink)
                result.plans.append([])
                continue
            try:
                res = route_maze(
                    device,
                    [source],
                    {sink},
                    reuse=tree,
                    use_longs=use_longs,
                    heuristic_weight=heuristic_weight,
                    max_nodes=max_nodes,
                    deadline=deadline,
                )
            except errors.UnroutableError as e:
                r, c, n = arch.primary_name(sink)
                raise errors.UnroutableError(
                    f"fanout sink {sink} unroutable after "
                    f"{len(result.order)} sinks: {e.message}",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                    net=source,
                    faults_avoided=result.faults_avoided + e.faults_avoided,
                ) from e
            apply_plan(device, res.plan)
            applied.extend(res.plan)
            for row, col, from_name, to_name in res.plan:
                canon = arch.canonicalize(row, col, to_name)
                assert canon is not None
                tree.add(canon)
            result.order.append(sink)
            result.plans.append(res.plan)
            result.pips_added += len(res.plan)
            result.faults_avoided += res.faults_avoided
    except errors.JRouteError:
        for row, col, from_name, to_name in reversed(applied):
            device.turn_off(row, col, from_name, to_name)
        raise
    return result
