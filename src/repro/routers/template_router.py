"""Template-guided routing (route level 3).

Paper, Section 3.1: "The router begins at the start wire, then goes
through each wire that it drives, as defined in the architecture class,
and checks first if the wire's template value matches the template value
specified by the user.  If so, then it checks to make sure the wire is
not already in use.  A recursive call is made with the new wire as the
starting point and the first element of the template removed.  The call
would fail if there is no combination of resources that are available
that follow the template."

This implementation is that recursion as an explicit DFS.  The goal can
be given two ways: as an ``end_wire`` *name* (the paper's signature — the
end tile is implied by the template) or as an ``end_canon`` wire instance
(used internally by the auto-router, which must land on a specific pin).
"""

from __future__ import annotations

from .. import errors
from ..arch.templates import TemplateValue, template_value_of
from ..arch.wires import WireClass
from ..device.fabric import Device
from .base import PlanPip

__all__ = ["route_template"]

#: wire classes whose template value implies movement: once driven at one
#: end, the search must continue from the *other* end, so EAST1 really
#: travels one tile east
_DIRECTIONAL = frozenset(
    (WireClass.SINGLE, WireClass.HEX, WireClass.LONG_H, WireClass.LONG_V)
)


def route_template(
    device: Device,
    start_canon: int,
    template_values: tuple[TemplateValue, ...],
    *,
    end_wire: int | None = None,
    end_canon: int | None = None,
    max_nodes: int = 100_000,
) -> list[PlanPip]:
    """Find a free path from ``start_canon`` following the template.

    Exactly one of ``end_wire`` (a wire *name*; paper semantics) or
    ``end_canon`` (a canonical wire instance) must be given.  Returns the
    PIP plan in drive order; raises
    :class:`~repro.errors.UnroutableError` when no combination of
    available resources follows the template.
    """
    if (end_wire is None) == (end_canon is None):
        raise errors.JRouteError("give exactly one of end_wire / end_canon")
    if not template_values:
        raise errors.JRouteError("empty template")

    occupied = device.state.occupied
    faults = device.faults
    fault_mask = faults.unusable if faults is not None else None
    last = len(template_values) - 1
    budget = max_nodes
    # visited states (wire, depth, drive tile) that already failed
    dead: set[tuple] = set()
    plan: list[PlanPip] = []
    in_plan: set[int] = set()  # wires already driven by this plan

    arch = device.arch

    def dfs(canon: int, depth: int, drive_tile: tuple[int, int] | None) -> bool:
        nonlocal budget
        if (canon, depth, drive_tile) in dead:
            return False
        budget -= 1
        if budget < 0:
            raise errors.UnroutableError(
                "template search budget exhausted"
            )
        directional = (
            drive_tile is not None
            and arch.wire_class_of(canon) in _DIRECTIONAL
        )
        want = template_values[depth]
        blocked_by_plan = False
        for row, col, from_name, to_name, canon_to in device.fanout_pips(canon):
            if directional and (row, col) == drive_tile:
                # a driven directional wire continues from its far end only
                continue
            if template_value_of(to_name) is not want:
                continue
            if depth == last:
                if end_wire is not None and to_name != end_wire:
                    continue
                if end_canon is not None and canon_to != end_canon:
                    continue
            if occupied[canon_to]:
                continue
            if fault_mask is not None and (
                fault_mask[canon_to] or faults.pip_stuck_open(canon, canon_to)
            ):
                continue
            if canon_to in in_plan:
                blocked_by_plan = True
                continue
            plan.append((row, col, from_name, to_name))
            in_plan.add(canon_to)
            if depth == last:
                return True
            if dfs(canon_to, depth + 1, (row, col)):
                return True
            plan.pop()
            in_plan.remove(canon_to)
        if not blocked_by_plan:
            # memoise only plan-independent failures, so backtracking with a
            # different prefix can revisit states that failed due to in_plan
            dead.add((canon, depth, drive_tile))
        return False

    if dfs(start_canon, 0, None):
        return plan
    raise errors.UnroutableError(
        "no combination of available resources follows the template"
    )
