"""Shared routing-algorithm infrastructure.

The paper stresses that "the JRoute API is independent of the algorithms
used to implement it".  Algorithms in this package therefore share one
contract: they *plan* — produce an ordered list of PIPs
``(row, col, from_name, to_name)`` — and the caller applies the plan
transactionally.  A failed application (e.g. a contention race with
another tool holding the device) rolls back every PIP it turned on.
"""

from __future__ import annotations

from typing import Sequence

from .. import errors
from ..device.fabric import Device

__all__ = ["PlanPip", "apply_plan", "plan_cost", "plan_wirelength"]

#: One planned PIP: (row, col, from_name, to_name).
PlanPip = tuple[int, int, int, int]


def apply_plan(device: Device, plan: Sequence[PlanPip]) -> int:
    """Turn on every PIP of a plan, rolling back on failure.

    Already-on PIPs (same driver) are skipped — plans may legitimately
    overlap an existing net when extending it.  Returns the number of
    PIPs newly turned on.
    """
    applied: list[PlanPip] = []
    try:
        for row, col, from_name, to_name in plan:
            if device.pip_is_on(row, col, from_name, to_name):
                continue
            device.turn_on(row, col, from_name, to_name)
            applied.append((row, col, from_name, to_name))
    except errors.JRouteError:
        for row, col, from_name, to_name in reversed(applied):
            device.turn_off(row, col, from_name, to_name)
        raise
    return len(applied)


def plan_cost(device: Device, plan: Sequence[PlanPip]) -> float:
    """Router cost of a plan (sum of target-wire base costs)."""
    arch = device.arch
    return sum(arch.wire_cost(to_name) for _, _, _, to_name in plan)


def plan_wirelength(device: Device, plan: Sequence[PlanPip]) -> int:
    """Physical wirelength of a plan in CLB spans."""
    arch = device.arch
    return sum(arch.wire_length(to_name) for _, _, _, to_name in plan)
