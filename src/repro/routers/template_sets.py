"""Predefined template sets for auto point-to-point routing.

Paper, Section 3.1, on ``route(EndPoint, EndPoint)``: "Another possibility
that would potentially be faster is to define a set of unique and
predefined templates that would get from the source to the sink and try
each one.  If all of them fail then the router could fall back on a maze
algorithm.  The benefit of defining the template would be to reduce the
search space."

Given a (drow, dcol) displacement this module enumerates candidate
templates: hex-decomposed routes in both axis orders, all-singles routes
for short nets, under- and over-shooting hex counts, always arranged so
the wire before the CLBIN suffix is a single (hexes cannot drive logic
block inputs — Section 2's drive rules).
"""

from __future__ import annotations

from ..arch.templates import TemplateValue as TV
from ..core.template import Template

__all__ = ["predefined_templates", "export_template_set", "MAX_ALL_SINGLES"]

#: Nets at most this many CLBs long also get an all-singles variant.
MAX_ALL_SINGLES = 10

_HEX_SINGLE = {
    "N": (TV.NORTH6, TV.NORTH1, TV.SOUTH6, TV.SOUTH1),
    "E": (TV.EAST6, TV.EAST1, TV.WEST6, TV.WEST1),
}


def _axis_variants(d: int, axis: str) -> list[tuple[list[TV], list[TV]]]:
    """Hex/single decompositions of a displacement along one axis.

    Returns ``(hex_moves, single_moves)`` variants; concatenated they
    travel exactly ``d`` CLBs along the axis.
    """
    pos6, pos1, neg6, neg1 = _HEX_SINGLE[axis]
    if d == 0:
        return [([], [])]
    if d > 0:
        six, one, anti = pos6, pos1, neg1
    else:
        six, one, anti = neg6, neg1, pos1
    n = abs(d)
    n6, rem = divmod(n, 6)
    variants: list[tuple[list[TV], list[TV]]] = [([six] * n6, [one] * rem)]
    if 0 < n <= MAX_ALL_SINGLES and n6 > 0:
        variants.append(([], [one] * n))
    if rem == 0 and n6 > 0:
        # trade the last hex for six singles (gives a single before CLBIN)
        variants.append(([six] * (n6 - 1), [one] * 6))
    if rem >= 4:
        # overshoot by one hex and come back with a few singles
        variants.append(([six] * (n6 + 1), [anti] * (6 - rem)))
    return variants


_HEX_VALUES = frozenset((TV.EAST6, TV.WEST6, TV.NORTH6, TV.SOUTH6))


def predefined_templates(
    drow: int,
    dcol: int,
    *,
    prefix: tuple[TV, ...] = (TV.OUTMUX,),
    suffix: tuple[TV, ...] = (TV.CLBIN,),
    max_templates: int = 12,
) -> list[Template]:
    """Candidate templates travelling ``(drow, dcol)``, cheapest first.

    The default prefix/suffix frame a CLB-output to CLB-input route; pass
    empty tuples to generate bare movement templates.  Variants whose
    movement would end on a hex directly before a CLBIN suffix are
    dropped (no such PIP exists).
    """
    seen: set[tuple[TV, ...]] = set()
    out: list[Template] = []
    needs_single_tail = bool(suffix) and suffix[0] is TV.CLBIN
    for vh, vs in _axis_variants(drow, "N"):
        for hh, hs in _axis_variants(dcol, "E"):
            orders = (
                hh + vh + hs + vs,  # all hexes, then all singles (H first)
                vh + hh + vs + hs,  # all hexes, then all singles (V first)
                hh + hs + vh + vs,  # finish one axis, then the other
                vh + vs + hh + hs,
            )
            for movement in orders:
                if (
                    needs_single_tail
                    and movement
                    and movement[-1] in _HEX_VALUES
                ):
                    continue
                values = tuple(prefix) + tuple(movement) + tuple(suffix)
                if values in seen:
                    continue
                seen.add(values)
                out.append(Template(values))
    out.sort(key=len)
    return out[:max_templates]


def export_template_set(
    drow: int,
    dcol: int,
    *,
    part: str = "XCV50",
    start: tuple[int, int] | None = None,
    **kwargs,
) -> str:
    """The candidate set for ``(drow, dcol)`` as a repro-templates file.

    The serialized form (see :mod:`repro.analysis.plans`) is what
    ``repro analyze`` lints — duplicates, illegal steps and entries whose
    movement cannot reach the declared displacement all become findings.
    Extra keyword arguments pass through to :func:`predefined_templates`.
    """
    from ..analysis.plans import dump_template_set

    templates = predefined_templates(drow, dcol, **kwargs)
    return dump_template_set(
        part,
        [t.values for t in templates],
        start=start,
        displacement=(drow, dcol),
    )
