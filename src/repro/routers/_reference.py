"""Pre-kernel reference routers (dict-based Dijkstra over ``fanout_pips``).

These are the original implementations of :func:`route_maze` and
:func:`route_pathfinder`, preserved verbatim when the compiled-graph
search kernel (:mod:`repro.core.kernel`) replaced them on the hot path.
They serve two purposes:

* **parity oracle** — the kernel property tests assert the kernel
  produces identical plans (and costs) to these implementations on
  randomized workloads;
* **benchmark baseline** — ``benchmarks/bench_e17_kernel.py`` measures
  the kernel's speedup against them and records it in
  ``BENCH_routing.json``.

Do not use these in new code; they re-expand the wire graph through the
per-node generator on every search.
"""

from __future__ import annotations

import heapq
from typing import Collection, Iterable, Sequence

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..device.fabric import Device
from .base import PlanPip, apply_plan
from .maze import MazeResult
from .pathfinder import NetSpec, PathFinderResult

__all__ = ["route_maze_reference", "route_pathfinder_reference"]


def _target_tiles(device: Device, targets: Collection[int]) -> list[tuple[int, int]]:
    return [device.arch.primary_name(t)[:2] for t in targets]


def route_maze_reference(
    device: Device,
    sources: Iterable[int],
    targets: Collection[int],
    *,
    reuse: Collection[int] = (),
    use_longs: bool = True,
    avoid_classes: Collection[WireClass] = (),
    heuristic_weight: float = 0.0,
    max_nodes: int = 200_000,
) -> MazeResult:
    """The pre-kernel :func:`~repro.routers.maze.route_maze` (see module
    docstring); same contract, per-sink dict allocation and generator
    expansion."""
    arch = device.arch
    occupied = device.state.occupied
    faults = device.faults
    fault_mask = faults.unusable if faults is not None else None
    target_set = set(targets)
    if not target_set:
        raise errors.UnroutableError("no targets given")
    reuse_set = set(reuse)
    source_set = set(sources)
    start_set = source_set | reuse_set
    if not start_set:
        raise errors.UnroutableError("no sources given")
    if fault_mask is not None:
        for t in target_set:
            if fault_mask[t]:
                r, c, n = arch.primary_name(t)
                raise errors.UnroutableError(
                    "target wire is a faulty fabric resource",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                )
    hit = target_set & start_set
    if hit:
        return MazeResult([], hit.pop(), 0.0, 0)

    if heuristic_weight > 0.0:
        goal_tiles = _target_tiles(device, target_set)
        rate = heuristic_weight * min(
            arch.wire_cost(wires.HEX_E[0]) / 6.0,
            1.0,
        )
        hex_n0 = wires.HEX_N[0]
        single_n0 = wires.SINGLE_N[0]

        def h(canon: int, to_name: int, row: int, col: int) -> float:
            info = wires.wire_info(to_name)
            cls = info.wire_class
            if cls is WireClass.SINGLE or cls is WireClass.HEX:
                r0, c0, n0 = arch.primary_name(canon)
                length = info.length
                vertical = n0 >= (hex_n0 if cls is WireClass.HEX else single_n0)
                if vertical:
                    ends = ((r0, c0), (r0 + length, c0))
                else:
                    ends = ((r0, c0), (r0, c0 + length))
                return rate * min(
                    abs(er - tr) + abs(ec - tc)
                    for er, ec in ends
                    for tr, tc in goal_tiles
                )
            if cls is WireClass.LONG_H:
                r0, _, _ = arch.primary_name(canon)
                return rate * min(abs(r0 - tr) for tr, _ in goal_tiles)
            if cls is WireClass.LONG_V:
                _, c0, _ = arch.primary_name(canon)
                return rate * min(abs(c0 - tc) for _, tc in goal_tiles)
            return rate * min(
                abs(row - tr) + abs(col - tc) for tr, tc in goal_tiles
            )

    else:

        def h(canon: int, to_name: int, row: int, col: int) -> float:
            return 0.0

    dist: dict[int, float] = {}
    prev: dict[int, PlanPip] = {}
    heap: list[tuple[float, float, int]] = []
    for s in start_set:
        dist[s] = 0.0
        r0, c0, n0 = arch.primary_name(s)
        heapq.heappush(heap, (h(s, n0, r0, c0), 0.0, s))

    expanded = 0
    faults_avoided = 0
    goal: int | None = None
    goal_cost = 0.0
    long_lo = wires.LONG_H[0]
    long_hi = wires.LONG_V[-1]
    avoid = frozenset(avoid_classes)

    while heap:
        f, g, canon = heapq.heappop(heap)
        if g > dist.get(canon, float("inf")):
            continue
        if canon in target_set:
            goal = canon
            goal_cost = g
            break
        if fault_mask is not None and fault_mask[canon]:
            faults_avoided += 1
            continue
        expanded += 1
        if expanded > max_nodes:
            raise errors.UnroutableError(
                f"maze search exceeded {max_nodes} node expansions",
                net=min(source_set) if source_set else None,
                faults_avoided=faults_avoided,
            )
        for row, col, from_name, to_name, canon_to in device.fanout_pips(canon):
            if not use_longs and long_lo <= to_name <= long_hi:
                continue
            if avoid and wires.wire_info(to_name).wire_class in avoid:
                continue
            if fault_mask is not None and (
                fault_mask[canon_to] or faults.pip_stuck_open(canon, canon_to)
            ):
                faults_avoided += 1
                continue
            if occupied[canon_to] and canon_to not in reuse_set:
                continue
            ng = g + arch.wire_cost(to_name)
            if ng < dist.get(canon_to, float("inf")):
                dist[canon_to] = ng
                prev[canon_to] = (row, col, from_name, to_name)
                heapq.heappush(
                    heap, (ng + h(canon_to, to_name, row, col), ng, canon_to)
                )

    if goal is None:
        tr, tc, tn = arch.primary_name(next(iter(target_set)))
        raise errors.UnroutableError(
            "no free path from sources to targets"
            + ("" if use_longs else " (long lines disabled)"),
            row=tr,
            col=tc,
            wire=wires.wire_name(tn),
            net=min(source_set) if source_set else None,
            faults_avoided=faults_avoided,
        )

    plan: list[PlanPip] = []
    w = goal
    while w not in start_set:
        pip = prev[w]
        plan.append(pip)
        row, col, from_name, _ = pip
        canon_from = arch.canonicalize(row, col, from_name)
        assert canon_from is not None
        w = canon_from
    plan.reverse()
    return MazeResult(plan, goal, goal_cost, expanded, faults_avoided)


def route_pathfinder_reference(
    device: Device,
    nets: Sequence[NetSpec],
    *,
    use_longs: bool = True,
    max_iterations: int = 30,
    present_factor_init: float = 0.5,
    present_factor_mult: float = 1.6,
    history_increment: float = 0.4,
    max_nodes_per_net: int = 400_000,
    apply: bool = True,
) -> PathFinderResult:
    """The pre-kernel negotiated-congestion router (serial, dict-based)."""
    arch = device.arch
    blocked = device.state.occupied
    endpoint_ok: set[int] = set()
    for net in nets:
        endpoint_ok.add(net.source)
        endpoint_ok.update(net.sinks)

    from ..arch import wires as _w

    long_name_lo = _w.LONG_H[0]
    long_name_hi = _w.LONG_V[-1]

    history: dict[int, float] = {}
    usage: dict[int, set[int]] = {}
    net_wires: list[set[int]] = [set() for _ in nets]
    plans: list[list[PlanPip]] = [[] for _ in nets]
    present_factor = present_factor_init

    def wire_cost(canon: int, to_name: int, net_idx: int) -> float:
        base = arch.wire_cost(to_name)
        users = usage.get(canon)
        others = len(users - {net_idx}) if users else 0
        return base * (1.0 + present_factor * others) + history.get(canon, 0.0)

    def route_net(idx: int, net: NetSpec) -> None:
        for w in net_wires[idx]:
            users = usage.get(w)
            if users:
                users.discard(idx)
                if not users:
                    del usage[w]
        net_wires[idx] = set()
        plans[idx] = []
        tree: set[int] = {net.source}
        sr, sc, _ = arch.primary_name(net.source)
        order = sorted(
            set(net.sinks),
            key=lambda s: (
                abs(arch.primary_name(s)[0] - sr) + abs(arch.primary_name(s)[1] - sc),
                s,
            ),
        )
        for sink in order:
            dist: dict[int, float] = {w: 0.0 for w in tree}
            prev: dict[int, PlanPip] = {}
            heap = [(0.0, w) for w in tree]
            heapq.heapify(heap)
            expanded = 0
            found = False
            while heap:
                g, canon = heapq.heappop(heap)
                if g > dist.get(canon, float("inf")):
                    continue
                if canon == sink:
                    found = True
                    break
                expanded += 1
                if expanded > max_nodes_per_net:
                    raise errors.UnroutableError(
                        f"pathfinder net {idx}: node budget exhausted"
                    )
                for row, col, from_name, to_name, canon_to in device.fanout_pips(canon):
                    if not use_longs and long_name_lo <= to_name <= long_name_hi:
                        continue
                    if blocked[canon_to] and canon_to not in endpoint_ok:
                        continue
                    ng = g + wire_cost(canon_to, to_name, idx)
                    if ng < dist.get(canon_to, float("inf")):
                        dist[canon_to] = ng
                        prev[canon_to] = (row, col, from_name, to_name)
                        heapq.heappush(heap, (ng, canon_to))
            if not found:
                raise errors.UnroutableError(
                    f"pathfinder net {idx}: sink {sink} unreachable"
                )
            path: list[PlanPip] = []
            w = sink
            while w not in tree:
                pip = prev[w]
                path.append(pip)
                cf = arch.canonicalize(pip[0], pip[1], pip[2])
                assert cf is not None
                w = cf
            path.reverse()
            plans[idx].extend(path)
            for row, col, from_name, to_name in path:
                canon = arch.canonicalize(row, col, to_name)
                assert canon is not None
                tree.add(canon)
        net_wires[idx] = tree - {net.source}
        for w in net_wires[idx]:
            usage.setdefault(w, set()).add(idx)

    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        for idx, net in enumerate(nets):
            route_net(idx, net)
        shared = [w for w, users in usage.items() if len(users) > 1]
        if not shared:
            converged = True
            break
        for w in shared:
            history[w] = history.get(w, 0.0) + history_increment
        present_factor *= present_factor_mult

    result = PathFinderResult(iterations=iteration, converged=converged)
    if converged:
        for idx in range(len(nets)):
            result.plans[idx] = plans[idx]
        if apply:
            for idx in range(len(nets)):
                result.pips_added += apply_plan(device, plans[idx])
    return result
