"""Bidirectional maze search: forward from the source, backward from the
sink, meeting in the middle.

On point-to-point nets a unidirectional wavefront explores an area that
grows with the square of the distance; two half-distance wavefronts
explore roughly half as much.  The backward wavefront runs over
:meth:`~repro.device.fabric.Device.fanin_pips` (who could drive this
wire), which exists for exactly this purpose.

Another demonstration that the JRoute API is "independent of the
algorithms used to implement it": this router is a drop-in alternative
to :func:`~repro.routers.maze.route_maze` for single-sink nets.
"""

from __future__ import annotations

import heapq
from typing import Collection

from .. import errors
from ..arch import wires
from ..device.fabric import Device
from .base import PlanPip
from .maze import MazeResult

__all__ = ["route_bidirectional"]


def route_bidirectional(
    device: Device,
    source: int,
    sink: int,
    *,
    reuse: Collection[int] = (),
    use_longs: bool = True,
    max_nodes: int = 200_000,
) -> MazeResult:
    """Find a free source-to-sink path by bidirectional Dijkstra.

    Semantics match :func:`route_maze` for a single target: wires in use
    by other nets are impassable, ``reuse`` seeds the forward frontier at
    zero cost, and the returned plan drives wires source-to-sink.
    Optimal up to the standard bidirectional termination bound (search
    stops once the best meeting cost cannot be improved).
    """
    arch = device.arch
    occupied = device.state.occupied
    reuse_set = set(reuse)
    start_set = {source} | reuse_set
    if sink in start_set:
        return MazeResult([], sink, 0.0, 0)
    if occupied[sink] and sink not in reuse_set:
        raise errors.UnroutableError("sink wire is already in use")

    long_lo, long_hi = wires.LONG_H[0], wires.LONG_V[-1]

    def blocked(canon: int, to_name: int) -> bool:
        if not use_longs and long_lo <= to_name <= long_hi:
            return True
        return bool(occupied[canon]) and canon not in reuse_set and canon != sink

    # forward state: cost from source; prev PIP drives *into* the wire
    fdist: dict[int, float] = {w: 0.0 for w in start_set}
    fprev: dict[int, PlanPip] = {}
    fheap = [(0.0, w) for w in start_set]
    heapq.heapify(fheap)
    fdone: set[int] = set()
    # backward state: cost to sink; next PIP drives *out of* the wire
    bdist: dict[int, float] = {sink: 0.0}
    bnext: dict[int, PlanPip] = {}
    bheap = [(0.0, sink)]
    bdone: set[int] = set()

    best_cost = float("inf")
    meet: int | None = None
    expanded = 0

    def consider_meeting(w: int) -> None:
        nonlocal best_cost, meet
        if w in fdist and w in bdist:
            c = fdist[w] + bdist[w]
            if c < best_cost:
                best_cost = c
                meet = w

    while fheap or bheap:
        # alternate by cheaper frontier head
        f_top = fheap[0][0] if fheap else float("inf")
        b_top = bheap[0][0] if bheap else float("inf")
        if f_top + b_top >= best_cost and meet is not None:
            break  # no shorter meeting possible
        expanded += 1
        if expanded > max_nodes:
            raise errors.UnroutableError(
                f"bidirectional search exceeded {max_nodes} expansions"
            )
        if f_top <= b_top:
            g, canon = heapq.heappop(fheap)
            if g > fdist.get(canon, float("inf")) or canon in fdone:
                continue
            fdone.add(canon)
            for row, col, fn, tn, ct in device.fanout_pips(canon):
                if blocked(ct, tn):
                    continue
                ng = g + arch.wire_cost(tn)
                if ng < fdist.get(ct, float("inf")):
                    fdist[ct] = ng
                    fprev[ct] = (row, col, fn, tn)
                    heapq.heappush(fheap, (ng, ct))
                    consider_meeting(ct)
        else:
            g, canon = heapq.heappop(bheap)
            if g > bdist.get(canon, float("inf")) or canon in bdone:
                continue
            bdone.add(canon)
            # cost model charges the *driven* wire; walking backward from
            # wire W over PIP (F -> W) charges W's own cost to the step
            step_cost = arch.wire_cost(arch.primary_name(canon)[2])
            for row, col, fn, tn, cf in device.fanin_pips(canon):
                if blocked(cf, fn) and cf not in start_set:
                    continue
                ng = g + step_cost
                if ng < bdist.get(cf, float("inf")):
                    bdist[cf] = ng
                    bnext[cf] = (row, col, fn, tn)
                    heapq.heappush(bheap, (ng, cf))
                    consider_meeting(cf)

    if meet is None:
        raise errors.UnroutableError(
            "no free path from source to sink (bidirectional)"
        )

    plan: list[PlanPip] = []
    w = meet
    while w not in start_set:
        pip = fprev[w]
        plan.append(pip)
        cf = arch.canonicalize(pip[0], pip[1], pip[2])
        assert cf is not None
        w = cf
    plan.reverse()
    w = meet
    while w != sink:
        pip = bnext[w]
        plan.append(pip)
        ct = arch.canonicalize(pip[0], pip[1], pip[3])
        assert ct is not None
        w = ct
    return MazeResult(plan, sink, best_cost, expanded)
