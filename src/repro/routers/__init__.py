"""Routing algorithms behind the JRoute API.

The paper is explicit that "the JRoute API is independent of the
algorithms used to implement it"; this package keeps them separate and
swappable: template DFS (:mod:`~repro.routers.template_router`),
predefined template sets (:mod:`~repro.routers.template_sets`), maze /
A* search (:mod:`~repro.routers.maze`), bidirectional search
(:mod:`~repro.routers.bidir`), the greedy increasing-distance
fanout router (:mod:`~repro.routers.greedy_fanout`), pairwise bus routing
(:mod:`~repro.routers.bus`), and the PathFinder negotiated-congestion
baseline (:mod:`~repro.routers.pathfinder`).
"""

from .auto import P2PResult, route_point_to_point, route_point_to_point_batch
from .bidir import route_bidirectional
from .base import PlanPip, apply_plan, plan_cost, plan_wirelength
from .bus import BusResult, route_bus
from .greedy_fanout import FanoutResult, route_fanout
from .maze import MazeBatchResult, MazeResult, route_maze, route_maze_batch
from .pathfinder import (
    NetSpec,
    PartitionNode,
    PathFinderResult,
    build_partition_tree,
    route_pathfinder,
)
from .template_router import route_template
from .template_sets import predefined_templates

__all__ = [
    "P2PResult",
    "route_point_to_point",
    "route_point_to_point_batch",
    "route_bidirectional",
    "PlanPip",
    "apply_plan",
    "plan_cost",
    "plan_wirelength",
    "BusResult",
    "route_bus",
    "FanoutResult",
    "route_fanout",
    "MazeBatchResult",
    "MazeResult",
    "route_maze",
    "route_maze_batch",
    "NetSpec",
    "PartitionNode",
    "PathFinderResult",
    "build_partition_tree",
    "route_pathfinder",
    "route_template",
    "predefined_templates",
]
