"""Slice/LUT site helpers shared by the core library.

A Virtex CLB holds two slices; each slice has an F and a G 4-input LUT
with a combinational output (X / Y) and a registered output (XQ / YQ).
Bit-sliced cores lay one logical bit onto one LUT *site*; this module
maps a bit index to its site's pins.

Site order within a CLB: (S0,F), (S0,G), (S1,F), (S1,G) — four sites per
CLB, matching the JBits LUT indices ``LUT_S0F .. LUT_S1G``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...arch import wires

__all__ = [
    "LutSite",
    "site_of_bit",
    "g_site_of",
    "SITES_PER_CLB",
    "TRUTH_PASS_A",
    "TRUTH_XOR3",
    "TRUTH_MAJ3",
    "TRUTH_AND",
    "TRUTH_OR",
    "TRUTH_XOR2",
    "TRUTH_XNOR2",
    "TRUTH_NOT_A",
    "TRUTH_MUX2",
    "TRUTH_ZERO",
    "TRUTH_ONE",
    "truth_of",
]

SITES_PER_CLB = 4


@dataclass(frozen=True, slots=True)
class LutSite:
    """One LUT site: its pins and its JBits LUT index."""

    drow: int          #: CLB row offset within the core footprint
    lut_index: int     #: JBits LUT index (0..3)
    inputs: tuple[int, int, int, int]  #: F1..F4 / G1..G4 pin names
    comb_out: int      #: X or Y pin name
    reg_out: int       #: XQ or YQ pin name
    clk: int           #: slice clock pin name
    ce: int            #: slice clock-enable pin name (WE in LUT-RAM mode)
    sr: int            #: slice set/reset pin name
    data_in: int       #: BX/BY pin: the LUT-RAM write-data input


_SITE_TABLE = (
    # (lut_index, inputs, comb, reg, clk, ce, sr, data_in)
    (0, tuple(wires.S0F[1:5]), wires.S0_X, wires.S0_XQ, wires.S0_CLK, wires.S0_CE, wires.S0_SR, wires.S0_BX),
    (1, tuple(wires.S0G[1:5]), wires.S0_Y, wires.S0_YQ, wires.S0_CLK, wires.S0_CE, wires.S0_SR, wires.S0_BY),
    (2, tuple(wires.S1F[1:5]), wires.S1_X, wires.S1_XQ, wires.S1_CLK, wires.S1_CE, wires.S1_SR, wires.S1_BX),
    (3, tuple(wires.S1G[1:5]), wires.S1_Y, wires.S1_YQ, wires.S1_CLK, wires.S1_CE, wires.S1_SR, wires.S1_BY),
)


def site_of_bit(bit: int, *, sites_per_clb: int = SITES_PER_CLB) -> LutSite:
    """Site of logical bit ``bit`` when packing ``sites_per_clb`` per CLB.

    ``sites_per_clb=4`` packs densely (registers, constants);
    ``sites_per_clb=2`` gives each bit a whole slice (adders use F for
    sum and G for carry, so the bit occupies both LUTs of its slice).
    """
    if sites_per_clb == 4:
        drow, idx = divmod(bit, 4)
    elif sites_per_clb == 2:
        drow, slice_idx = divmod(bit, 2)
        idx = slice_idx * 2  # the F LUT of slice 0 or 1
    else:
        raise ValueError("sites_per_clb must be 2 or 4")
    lut_index, inputs, comb, reg, clk, ce, sr, din = _SITE_TABLE[idx]
    return LutSite(drow, lut_index, inputs, comb, reg, clk, ce, sr, din)


def g_site_of(site: LutSite) -> LutSite:
    """The G LUT of the same slice as an F-LUT site (adder carry LUT)."""
    lut_index, inputs, comb, reg, clk, ce, sr, din = _SITE_TABLE[site.lut_index + 1]
    return LutSite(site.drow, lut_index, inputs, comb, reg, clk, ce, sr, din)


# -- common truth tables (addressed by input combination; F1 is bit 0) -----

def truth_of(fn) -> int:
    """Build a 16-bit truth table from a function of 4 input bits."""
    return sum(
        int(bool(fn((i >> 0) & 1, (i >> 1) & 1, (i >> 2) & 1, (i >> 3) & 1))) << i
        for i in range(16)
    )


_truth = truth_of


TRUTH_PASS_A = _truth(lambda a, b, c, d: a)          #: route-through LUT
TRUTH_NOT_A = _truth(lambda a, b, c, d: a ^ 1)
TRUTH_XOR3 = _truth(lambda a, b, c, d: a ^ b ^ c)    #: full-adder sum
TRUTH_MAJ3 = _truth(lambda a, b, c, d: (a + b + c) >> 1)  #: full-adder carry
TRUTH_AND = _truth(lambda a, b, c, d: a & b)
TRUTH_OR = _truth(lambda a, b, c, d: a | b)
TRUTH_XOR2 = _truth(lambda a, b, c, d: a ^ b)
TRUTH_XNOR2 = _truth(lambda a, b, c, d: (a ^ b) ^ 1)
TRUTH_MUX2 = _truth(lambda a, b, s, d: b if s else a)
TRUTH_ZERO = 0x0000
TRUTH_ONE = 0xFFFF
