"""Single-LUT gate cores (AND, OR, XOR, NOT) and a 2:1 mux."""

from __future__ import annotations

from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core, Rect
from .primitives import (
    TRUTH_AND,
    TRUTH_MUX2,
    TRUTH_NOT_A,
    TRUTH_OR,
    TRUTH_XOR2,
    site_of_bit,
)

__all__ = ["LutGateCore", "And2Core", "Or2Core", "Xor2Core", "InverterCore", "Mux2Core"]


class LutGateCore(Core):
    """One LUT computing a fixed function of up to 4 inputs.

    Port groups: ``in`` (IN, n_inputs), ``out`` (OUT, 1).
    """

    TRUTH = TRUTH_AND
    N_INPUTS = 2

    def footprint(self):
        return Rect(self.row, self.col, 1, 1)

    def build(self) -> None:
        site = site_of_bit(0)
        self.set_lut(0, 0, site.lut_index, self.TRUTH)
        in_ports = []
        for i in range(self.N_INPUTS):
            p = Port(f"in{i}", PortDirection.IN, owner=self)
            p.bind(Pin(self.row, self.col, site.inputs[i]))
            in_ports.append(p)
        out = self.new_port(
            "out0", PortDirection.OUT, Pin(self.row, self.col, site.comb_out)
        )
        self.define_group("in", in_ports)
        self.define_group("out", [out])


class And2Core(LutGateCore):
    TRUTH = TRUTH_AND
    N_INPUTS = 2


class Or2Core(LutGateCore):
    TRUTH = TRUTH_OR
    N_INPUTS = 2


class Xor2Core(LutGateCore):
    TRUTH = TRUTH_XOR2
    N_INPUTS = 2


class InverterCore(LutGateCore):
    TRUTH = TRUTH_NOT_A
    N_INPUTS = 1


class Mux2Core(LutGateCore):
    """2:1 multiplexer: in0, in1 data, in2 select."""

    TRUTH = TRUTH_MUX2
    N_INPUTS = 3
