"""Shift-register core: a chain of flip-flops with routed stage links."""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core, Rect
from .primitives import TRUTH_PASS_A, site_of_bit

__all__ = ["ShiftRegisterCore"]


class ShiftRegisterCore(Core):
    """``depth``-stage 1-bit shift register.

    Each stage is a route-through LUT + FF; stage q feeds the next
    stage's d through real routed interconnect.  Port groups: ``d`` (IN,
    1), ``q`` (OUT, 1, the last stage), ``taps`` (OUT, depth — every
    stage, for delay-line uses), ``clk`` (IN, 1).
    """

    PARAM_ATTRS = ("depth",)

    def __init__(self, router, instance_name, row, col, *, depth: int, parent=None):
        if depth < 1:
            raise errors.PlacementError("shift register depth must be >= 1")
        self.depth = depth
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        return Rect(self.row, self.col, -(-self.depth // 4), 1)

    def build(self) -> None:
        taps = []
        clk = Port("clk", PortDirection.IN, owner=self)
        clk_pins: set[Pin] = set()
        d_pins: list[Pin] = []
        q_pins: list[Pin] = []
        for stage in range(self.depth):
            site = site_of_bit(stage)
            self.set_lut(site.drow, 0, site.lut_index, TRUTH_PASS_A)
            assert self.jbits is not None
            self.jbits.set_mode_bit(self.row + site.drow, self.col, site.lut_index, True)
            self._configured_modes.append(
                (self.row + site.drow, self.col, site.lut_index)
            )
            d_pins.append(Pin(self.row + site.drow, self.col, site.inputs[0]))
            q_pins.append(Pin(self.row + site.drow, self.col, site.reg_out))
            clk_pins.add(Pin(self.row + site.drow, self.col, site.clk))
            taps.append(
                self.new_port(f"tap{stage}", PortDirection.OUT, q_pins[-1])
            )
        for stage in range(self.depth - 1):
            self.route_internal(q_pins[stage], d_pins[stage + 1])
        for pin in sorted(clk_pins, key=lambda p: (p.row, p.col, p.wire)):
            clk.bind(pin)
        d = Port("d0", PortDirection.IN, owner=self)
        d.bind(d_pins[0])
        q = Port("q0", PortDirection.OUT, owner=self)
        q.bind(q_pins[-1])
        self.define_group("d", [d])
        self.define_group("q", [q])
        self.define_group("taps", taps)
        self.define_group("clk", [clk])
