"""Constant-coefficient multiplier core (the paper's RTR showcase).

Section 3.3: "consider a constant multiplier.  The system connects it to
the circuit and later requires a new constant.  The core can be removed,
unrouted, and replaced with a new constant multiplier without having to
specify connections again."

This KCM-style core stores the constant in LUT truth tables, one LUT per
output bit, fed by the input nibbles.  (Each truth table is the partial
product slice of the constant for that output bit — derived
deterministically from the constant, so two cores with different
constants have identical footprint and ports but different logic, which
is exactly what the replace/reconnect experiment needs.)
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core
from .primitives import site_of_bit

__all__ = ["ConstantMultiplierCore", "kcm_truth"]


def kcm_truth(constant: int, out_bit: int) -> int:
    """Truth table of output bit ``out_bit``: bit of ``nibble * constant``.

    The LUT's 4 inputs hold one input nibble; entry ``n`` is bit
    ``out_bit`` of ``n * constant`` — the classic LUT-based constant
    multiplier (partial products are then summed; the summation network
    is abstracted into the same LUT array here).
    """
    truth = 0
    for n in range(16):
        if (n * constant >> out_bit) & 1:
            truth |= 1 << n
    return truth


class ConstantMultiplierCore(Core):
    """Multiplies a ``width``-bit input by a run-time constant.

    Port groups: ``in`` (IN, width), ``out`` (OUT, width + constant bits).
    """

    PARAM_ATTRS = ("width", "constant")

    def __init__(
        self, router, instance_name, row, col, *, width: int, constant: int, parent=None
    ):
        if width < 1:
            raise errors.PlacementError("multiplier width must be >= 1")
        if constant < 1:
            raise errors.PortError("constant must be >= 1")
        self.width = width
        self.constant = constant
        self.out_width = width + max(1, constant.bit_length())
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        from ..core import Rect

        return Rect(self.row, self.col, -(-self.out_width // 4), 1)

    def build(self) -> None:
        out_ports = []
        in_ports = [Port(f"in{i}", PortDirection.IN, owner=self) for i in range(self.width)]
        for ob in range(self.out_width):
            site = site_of_bit(ob)
            self.set_lut(site.drow, 0, site.lut_index, kcm_truth(self.constant, ob))
            out_ports.append(
                self.new_port(
                    f"out{ob}",
                    PortDirection.OUT,
                    Pin(self.row + site.drow, self.col, site.comb_out),
                )
            )
            # input bit (ob mod width) feeds this LUT's nibble inputs: bind
            # one LUT input pin per output LUT so every input bit lands on
            # real sink pins distributed over the array
            in_ports[ob % self.width].bind(
                Pin(self.row + site.drow, self.col, site.inputs[ob % 4])
            )
        self.define_group("in", in_ports)
        self.define_group("out", out_ports)

    def set_constant(self, constant: int) -> None:
        """In-place run-time reparameterisation (LUT rewrite only).

        Only legal when the new constant needs no more output bits than
        the current one; otherwise remove + replace the core (Section
        3.3's flow, exercised in experiment E5).
        """
        if constant < 1:
            raise errors.PortError("constant must be >= 1")
        new_out = self.width + max(1, constant.bit_length())
        if new_out > self.out_width:
            raise errors.PlacementError(
                f"constant {constant} needs {new_out} output bits > "
                f"{self.out_width}; replace the core instead"
            )
        self.constant = constant
        for ob in range(self.out_width):
            site = site_of_bit(ob)
            self.set_lut(site.drow, 0, site.lut_index, kcm_truth(constant, ob))
