"""Equality comparator core: per-bit XNOR stage + AND reduction tree.

A two-column core whose reduction nets are real routed interconnect —
a denser internal-routing workload than the adder's carry chain.
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core, Rect
from .primitives import TRUTH_XNOR2, site_of_bit, truth_of

__all__ = ["ComparatorCore"]


class ComparatorCore(Core):
    """``width``-bit equality comparator (``a == b``).

    Port groups: ``a``/``b`` (IN, width), ``eq`` (OUT, 1).
    Column 0 holds the XNOR bits, column 1 the AND reduction tree.
    """

    PARAM_ATTRS = ("width",)

    MAX_WIDTH = 16  # one reduction level of 4-input ANDs + a final AND

    def __init__(self, router, instance_name, row, col, *, width: int, parent=None):
        if not 1 <= width <= self.MAX_WIDTH:
            raise errors.PlacementError(
                f"comparator width must be 1..{self.MAX_WIDTH}"
            )
        self.width = width
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        return Rect(self.row, self.col, -(-self.width // 4), 2)

    def build(self) -> None:
        w = self.width
        a_ports, b_ports = [], []
        xnor_outs: list[Pin] = []
        for bit in range(w):
            site = site_of_bit(bit)
            self.set_lut(site.drow, 0, site.lut_index, TRUTH_XNOR2)
            row = self.row + site.drow
            a = Port(f"a{bit}", PortDirection.IN, owner=self)
            a.bind(Pin(row, self.col, site.inputs[0]))
            b = Port(f"b{bit}", PortDirection.IN, owner=self)
            b.bind(Pin(row, self.col, site.inputs[1]))
            a_ports.append(a)
            b_ports.append(b)
            xnor_outs.append(Pin(row, self.col, site.comb_out))

        # reduction tree in column 1: groups of up to 4 XNOR outputs
        n_groups = -(-w // 4)
        group_outs: list[Pin] = []
        for g in range(n_groups):
            site = site_of_bit(g)
            members = xnor_outs[4 * g : 4 * g + 4]
            # unused AND inputs must read 1: restrict the truth table to
            # the populated inputs
            truth = truth_of(
                lambda *bits, k=len(members): all(bits[:k]) if k else 1
            )
            self.set_lut(site.drow, 1, site.lut_index, truth)
            row = self.row + site.drow
            for i, src in enumerate(members):
                self.route_internal(src, Pin(row, self.col + 1, site.inputs[i]))
            group_outs.append(Pin(row, self.col + 1, site.comb_out))

        if n_groups == 1:
            eq_pin = group_outs[0]
        else:
            # final AND of the group outputs, in the last site of column 1
            site = site_of_bit(n_groups)
            truth = truth_of(
                lambda *bits, k=n_groups: all(bits[:k])
            )
            self.set_lut(site.drow, 1, site.lut_index, truth)
            row = self.row + site.drow
            for i, src in enumerate(group_outs):
                self.route_internal(src, Pin(row, self.col + 1, site.inputs[i]))
            eq_pin = Pin(row, self.col + 1, site.comb_out)

        eq = self.new_port("eq0", PortDirection.OUT, eq_pin)
        self.define_group("a", a_ports)
        self.define_group("b", b_ports)
        self.define_group("eq", [eq])
