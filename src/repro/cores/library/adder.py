"""Ripple-carry adder core.

Each bit occupies one slice: the F LUT computes the sum (XOR3), the G LUT
the carry (MAJ3); the carry net between adjacent bits is real routed
interconnect (exercising the router inside the core, as JBits-era cores
did — the simulated fabric has no dedicated carry chain).
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core
from .primitives import TRUTH_MAJ3, TRUTH_XOR3, g_site_of, site_of_bit

__all__ = ["AdderCore"]


class AdderCore(Core):
    """``width``-bit ripple-carry adder.

    Port groups: ``a``/``b`` (IN, width — each bit binds the sum *and*
    carry LUT inputs), ``sum`` (OUT, width), ``cin`` (IN, 1),
    ``cout`` (OUT, 1).
    """

    PARAM_ATTRS = ("width",)

    def __init__(self, router, instance_name, row, col, *, width: int, parent=None):
        if width < 1:
            raise errors.PlacementError("adder width must be >= 1")
        self.width = width
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        from ..core import Rect

        return Rect(self.row, self.col, -(-self.width // 2), 1)

    def build(self) -> None:
        a_ports, b_ports, sum_ports = [], [], []
        carry_out_pins: list[Pin] = []
        carry_in_pins: list[tuple[Pin, Pin]] = []
        for bit in range(self.width):
            fsite = site_of_bit(bit, sites_per_clb=2)
            gsite = g_site_of(fsite)
            row = self.row + fsite.drow
            self.set_lut(fsite.drow, 0, fsite.lut_index, TRUTH_XOR3)
            self.set_lut(gsite.drow, 0, gsite.lut_index, TRUTH_MAJ3)
            # a feeds input 1 of both LUTs; b input 2; carry input 3
            a = Port(f"a{bit}", PortDirection.IN, owner=self)
            a.bind(Pin(row, self.col, fsite.inputs[0]))
            a.bind(Pin(row, self.col, gsite.inputs[0]))
            b = Port(f"b{bit}", PortDirection.IN, owner=self)
            b.bind(Pin(row, self.col, fsite.inputs[1]))
            b.bind(Pin(row, self.col, gsite.inputs[1]))
            a_ports.append(a)
            b_ports.append(b)
            sum_ports.append(
                self.new_port(
                    f"sum{bit}", PortDirection.OUT, Pin(row, self.col, fsite.comb_out)
                )
            )
            carry_out_pins.append(Pin(row, self.col, gsite.comb_out))
            carry_in_pins.append(
                (
                    Pin(row, self.col, fsite.inputs[2]),
                    Pin(row, self.col, gsite.inputs[2]),
                )
            )
        # ripple the carries: bit i's carry-out feeds bit i+1's carry-ins
        for bit in range(self.width - 1):
            self.route_internal(
                carry_out_pins[bit], list(carry_in_pins[bit + 1])
            )
        cin = Port("cin0", PortDirection.IN, owner=self)
        for pin in carry_in_pins[0]:
            cin.bind(pin)
        cout = self.new_port("cout0", PortDirection.OUT, carry_out_pins[-1])
        self.define_group("a", a_ports)
        self.define_group("b", b_ports)
        self.define_group("sum", sum_ports)
        self.define_group("cin", [cin])
        self.define_group("cout", [cout])
