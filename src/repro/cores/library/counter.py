"""Counter core — the paper's Section 4 composition example.

"For example, a counter can be made from a constant adder with the
output fed back to one input ports and the other input set to a value of
one."

This core demonstrates the full hierarchy story: three child cores
(adder, register, constant one), port-to-port bus routing between them,
and outer ports defined by *binding to the children's ports* ("it can
also specify connections from ports of internal cores to its own
ports").
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Port, PortDirection
from ..core import Core
from .adder import AdderCore
from .constant import ConstantCore
from .register import RegisterCore

__all__ = ["CounterCore"]


class CounterCore(Core):
    """``width``-bit up counter (adder + feedback register + constant 1).

    Port groups: ``q`` (OUT, width — the register outputs), ``clk``
    (IN, 1).
    """

    PARAM_ATTRS = ("width",)

    def __init__(self, router, instance_name, row, col, *, width: int, parent=None):
        if width < 1:
            raise errors.PlacementError("counter width must be >= 1")
        self.width = width
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        from ..core import Rect

        height = max(-(-self.width // 2), -(-self.width // 4))
        return Rect(self.row, self.col, height, 3)

    def build(self) -> None:
        w = self.width
        adder = AdderCore(self.router, "add", self.row, self.col, width=w, parent=self)
        reg = RegisterCore(
            self.router, "reg", self.row, self.col + 1, width=w, parent=self
        )
        one = ConstantCore(
            self.router, "one", self.row, self.col + 2, width=w, value=1, parent=self
        )
        # dataflow: sum -> d (bus), q -> a (feedback bus), one -> b (bus)
        self.router.route(list(adder.get_ports("sum")), list(reg.get_ports("d")))
        self.router.route(list(reg.get_ports("q")), list(adder.get_ports("a")))
        self.router.route(list(one.get_ports("out")), list(adder.get_ports("b")))
        # remember the internal net sources so removal can unroute them
        for p in adder.get_ports("sum"):
            self._internal_net_sources.append(p.resolve_pins()[0])
        for p in reg.get_ports("q"):
            self._internal_net_sources.append(p.resolve_pins()[0])
        for p in one.get_ports("out"):
            self._internal_net_sources.append(p.resolve_pins()[0])
        # outer ports delegate to children's ports (hierarchy)
        q_ports = []
        for i, child_q in enumerate(reg.get_ports("q")):
            port = Port(f"q{i}", PortDirection.OUT, owner=self)
            port.bind(child_q)
            q_ports.append(port)
        clk = Port("clk", PortDirection.IN, owner=self)
        clk.bind(reg.get_ports("clk")[0])
        self.define_group("q", q_ports)
        self.define_group("clk", [clk])
