"""Accumulator core: adder + register with feedback (DSP building block).

The paper's Section 4 sketches composition from a small set of cores;
the accumulator is the counter's data-input sibling — ``acc <= acc + in``
every clock — and the heart of the multiply-accumulate datapaths its
introduction motivates.
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Port, PortDirection
from ..core import Core, Rect
from .adder import AdderCore
from .register import RegisterCore

__all__ = ["AccumulatorCore"]


class AccumulatorCore(Core):
    """``width``-bit accumulator (adder + feedback register).

    Port groups: ``in`` (IN, width — the addend), ``q`` (OUT, width —
    the accumulated value), ``clk`` (IN, 1).
    """

    PARAM_ATTRS = ("width",)

    def __init__(self, router, instance_name, row, col, *, width: int, parent=None):
        if width < 1:
            raise errors.PlacementError("accumulator width must be >= 1")
        self.width = width
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        height = max(-(-self.width // 2), -(-self.width // 4))
        return Rect(self.row, self.col, height, 2)

    def build(self) -> None:
        w = self.width
        adder = AdderCore(self.router, "add", self.row, self.col, width=w, parent=self)
        reg = RegisterCore(
            self.router, "reg", self.row, self.col + 1, width=w, parent=self
        )
        self.router.route(list(adder.get_ports("sum")), list(reg.get_ports("d")))
        self.router.route(list(reg.get_ports("q")), list(adder.get_ports("a")))
        for p in adder.get_ports("sum"):
            self._internal_net_sources.append(p.resolve_pins()[0])
        for p in reg.get_ports("q"):
            self._internal_net_sources.append(p.resolve_pins()[0])
        in_ports = []
        for i, child_b in enumerate(adder.get_ports("b")):
            port = Port(f"in{i}", PortDirection.IN, owner=self)
            port.bind(child_b)
            in_ports.append(port)
        q_ports = []
        for i, child_q in enumerate(reg.get_ports("q")):
            port = Port(f"q{i}", PortDirection.OUT, owner=self)
            port.bind(child_q)
            q_ports.append(port)
        clk = Port("clk", PortDirection.IN, owner=self)
        clk.bind(reg.get_ports("clk")[0])
        self.define_group("in", in_ports)
        self.define_group("q", q_ports)
        self.define_group("clk", [clk])
