"""Register core: ``width`` D flip-flops behind route-through LUTs."""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core
from .primitives import TRUTH_PASS_A, site_of_bit

__all__ = ["RegisterCore"]


class RegisterCore(Core):
    """``width``-bit register.

    Port groups: ``d`` (IN, width), ``q`` (OUT, width), ``clk`` (IN, one
    port bound to every involved slice clock pin).
    """

    PARAM_ATTRS = ("width",)

    def __init__(self, router, instance_name, row, col, *, width: int, parent=None):
        if width < 1:
            raise errors.PlacementError("register width must be >= 1")
        self.width = width
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        from ..core import Rect

        return Rect(self.row, self.col, -(-self.width // 4), 1)

    def build(self) -> None:
        d_ports, q_ports = [], []
        clk = Port("clk", PortDirection.IN, owner=self)
        clk_pins: set[Pin] = set()
        for bit in range(self.width):
            site = site_of_bit(bit)
            self.set_lut(site.drow, 0, site.lut_index, TRUTH_PASS_A)
            # FF enable mode bit for this site
            assert self.jbits is not None
            self.jbits.set_mode_bit(self.row + site.drow, self.col, site.lut_index, True)
            self._configured_modes.append(
                (self.row + site.drow, self.col, site.lut_index)
            )
            d_pin = Pin(self.row + site.drow, self.col, site.inputs[0])
            q_pin = Pin(self.row + site.drow, self.col, site.reg_out)
            d_ports.append(self.new_port(f"d{bit}", PortDirection.IN, d_pin))
            q_ports.append(self.new_port(f"q{bit}", PortDirection.OUT, q_pin))
            clk_pins.add(Pin(self.row + site.drow, self.col, site.clk))
        for pin in sorted(clk_pins, key=lambda p: (p.row, p.col, p.wire)):
            clk.bind(pin)
        self.define_group("d", d_ports)
        self.define_group("q", q_ports)
        self.define_group("clk", [clk])
