"""Distributed LUT-RAM core: a 16-entry memory built from LUTs.

Virtex LUTs double as 16x1 synchronous RAMs — the distributed-memory
feature of the family, and the closest CLB-fabric substitute for the
Block RAM the paper lists as future work.  Each data bit occupies one
LUT site: the four LUT inputs are the read/write address, the BX/BY pin
is the write data, the CE pin is the write enable, and the combinational
output reads the addressed entry asynchronously.

Writes land in the configuration bits (the LUT truth table *is* the
memory), so readback and partial bitstreams capture memory contents —
exactly how JBits-era designs snapshotted state.
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, Port, PortDirection
from ..core import Core, Rect
from .primitives import site_of_bit

__all__ = ["LutRamCore"]

#: slice-mode bit offset marking a site as LUT-RAM (see repro.sim)
RAM_MODE_BIT_BASE = 4

DEPTH = 16  #: entries per LUT (4 address bits)


class LutRamCore(Core):
    """A 16 x ``width`` single-port RAM in distributed LUT memory.

    Port groups: ``addr`` (IN, 4 — each address bit fans out to every
    data bit's LUT), ``din`` (IN, width), ``dout`` (OUT, width,
    asynchronous read), ``we`` (IN, 1), ``clk`` (IN, 1).
    """

    PARAM_ATTRS = ("width", "init")

    def __init__(self, router, instance_name, row, col, *, width: int,
                 init: tuple[int, ...] = (), parent=None):
        if width < 1:
            raise errors.PlacementError("RAM width must be >= 1")
        init = tuple(init)
        if len(init) > DEPTH:
            raise errors.PortError(f"init has {len(init)} entries > {DEPTH}")
        for v in init:
            if not 0 <= v < (1 << width):
                raise errors.PortError(f"init value {v} does not fit in {width} bits")
        self.width = width
        self.init = init
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        return Rect(self.row, self.col, -(-self.width // 4), 1)

    def _truth_of_bit(self, bit: int) -> int:
        truth = 0
        for a, v in enumerate(self.init):
            if (v >> bit) & 1:
                truth |= 1 << a
        return truth

    def build(self) -> None:
        addr_ports = [Port(f"addr{i}", PortDirection.IN, owner=self) for i in range(4)]
        din_ports, dout_ports = [], []
        we = Port("we0", PortDirection.IN, owner=self)
        clk = Port("clk", PortDirection.IN, owner=self)
        we_pins: set[Pin] = set()
        clk_pins: set[Pin] = set()
        assert self.jbits is not None
        for bit in range(self.width):
            site = site_of_bit(bit)
            row = self.row + site.drow
            self.set_lut(site.drow, 0, site.lut_index, self._truth_of_bit(bit))
            self.jbits.set_mode_bit(
                row, self.col, RAM_MODE_BIT_BASE + site.lut_index, True
            )
            self._configured_modes.append(
                (row, self.col, RAM_MODE_BIT_BASE + site.lut_index)
            )
            for i in range(4):
                addr_ports[i].bind(Pin(row, self.col, site.inputs[i]))
            din = Port(f"din{bit}", PortDirection.IN, owner=self)
            din.bind(Pin(row, self.col, site.data_in))
            din_ports.append(din)
            dout_ports.append(
                self.new_port(
                    f"dout{bit}", PortDirection.OUT, Pin(row, self.col, site.comb_out)
                )
            )
            we_pins.add(Pin(row, self.col, site.ce))
            clk_pins.add(Pin(row, self.col, site.clk))
        for pin in sorted(we_pins, key=lambda p: (p.row, p.col, p.wire)):
            we.bind(pin)
        for pin in sorted(clk_pins, key=lambda p: (p.row, p.col, p.wire)):
            clk.bind(pin)
        self.define_group("addr", addr_ports)
        self.define_group("din", din_ports)
        self.define_group("dout", dout_ports)
        self.define_group("we", [we])
        self.define_group("clk", [clk])

    def read_contents(self) -> list[int]:
        """Current memory contents, decoded from the configuration bits."""
        assert self.jbits is not None
        out = []
        truths = []
        for bit in range(self.width):
            site = site_of_bit(bit)
            truths.append(
                self.jbits.get_lut(self.row + site.drow, self.col, site.lut_index)
            )
        for a in range(DEPTH):
            v = 0
            for bit, truth in enumerate(truths):
                v |= ((truth >> a) & 1) << bit
            out.append(v)
        return out
