"""Constant source core: drives a fixed bit pattern.

The paper's Section 4 counter example sets one adder input "to a value of
one"; this core provides such values.  Each output bit is a LUT
configured all-ones or all-zeros, so changing the value at run time is a
pure LUT rewrite — no re-routing.
"""

from __future__ import annotations

from ... import errors
from ...core.endpoints import Pin, PortDirection
from ..core import Core
from .primitives import TRUTH_ONE, TRUTH_ZERO, site_of_bit

__all__ = ["ConstantCore"]


class ConstantCore(Core):
    """Drives ``width`` constant bits (port group ``out``)."""

    PARAM_ATTRS = ("width", "value")

    def __init__(self, router, instance_name, row, col, *, width: int, value: int, parent=None):
        if width < 1:
            raise errors.PlacementError("constant width must be >= 1")
        if not 0 <= value < (1 << width):
            raise errors.PortError(
                f"value {value} does not fit in {width} bits"
            )
        self.width = width
        self.value = value
        super().__init__(router, instance_name, row, col, parent=parent)

    def footprint(self):
        from ..core import Rect

        return Rect(self.row, self.col, -(-self.width // 4), 1)

    def build(self) -> None:
        out_ports = []
        for bit in range(self.width):
            site = site_of_bit(bit)
            truth = TRUTH_ONE if (self.value >> bit) & 1 else TRUTH_ZERO
            self.set_lut(site.drow, 0, site.lut_index, truth)
            pin = Pin(self.row + site.drow, self.col, site.comb_out)
            out_ports.append(self.new_port(f"out{bit}", PortDirection.OUT, pin))
        self.define_group("out", out_ports)

    def set_value(self, value: int) -> None:
        """Run-time parameterisation: rewrite the LUTs, keep the routing."""
        if not 0 <= value < (1 << self.width):
            raise errors.PortError(f"value {value} does not fit in {self.width} bits")
        self.value = value
        for bit in range(self.width):
            site = site_of_bit(bit)
            truth = TRUTH_ONE if (value >> bit) & 1 else TRUTH_ZERO
            self.set_lut(site.drow, 0, site.lut_index, truth)
