"""The run-time parameterizable core library."""

from .accumulator import AccumulatorCore
from .adder import AdderCore
from .comparator import ComparatorCore
from .constant import ConstantCore
from .constmult import ConstantMultiplierCore, kcm_truth
from .counter import CounterCore
from .lutram import LutRamCore
from .gates import And2Core, InverterCore, LutGateCore, Mux2Core, Or2Core, Xor2Core
from .register import RegisterCore
from .shiftreg import ShiftRegisterCore

__all__ = [
    "AccumulatorCore",
    "AdderCore",
    "ComparatorCore",
    "ConstantCore",
    "ConstantMultiplierCore",
    "kcm_truth",
    "CounterCore",
    "LutRamCore",
    "And2Core",
    "InverterCore",
    "LutGateCore",
    "Mux2Core",
    "Or2Core",
    "Xor2Core",
    "RegisterCore",
    "ShiftRegisterCore",
]
