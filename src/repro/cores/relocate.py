"""Core replacement and relocation (paper Section 3.3).

"A core may be replaced with the same type of core having different
parameters.  In this case the user can unroute the core then replace it.
The port connections are removed, but are remembered.  If the ports are
reused, then they will be automatically connected to the new core. ...
Core relocation is handled in a similar way."
"""

from __future__ import annotations

from .. import errors
from .core import Core

__all__ = ["replace_core", "relocate_core"]


def replace_core(core: Core, core_cls: type[Core] | None = None, **new_params) -> Core:
    """Replace a core in place with different parameters.

    Removes the old core (its nets are unrouted, its port connections
    remembered), builds a new core of ``core_cls`` (default: same class)
    at the same position with the same instance name, and automatically
    re-routes the remembered connections.  Returns the new core.

    Reconnection is interface-driven: connections are restored for the
    ports the *new* core defines.  If the new parameters shrink a port
    group (e.g. a constant multiplier whose new constant needs fewer
    output bits), the vanished ports' connections stay remembered but
    unrouted until a core with those ports returns.
    """
    if core.parent is not None:
        raise errors.PlacementError(
            "replace the top-level core; children are rebuilt by their parent"
        )
    router = core.router
    name = core.instance_name
    row, col = core.row, core.col
    params = {**core.parameters(), **new_params}
    cls = core_cls if core_cls is not None else type(core)
    core.remove()
    new_core = cls(router, name, row, col, **params)
    router.reconnect(new_core)
    return new_core


def relocate_core(core: Core, new_row: int, new_col: int) -> Core:
    """Move a core to a new position, reconnecting its remembered nets.

    The new placement must be free (checked by the floorplan).  Returns
    the new core instance.
    """
    if core.parent is not None:
        raise errors.PlacementError(
            "relocate the top-level core; children move with their parent"
        )
    router = core.router
    name = core.instance_name
    params = core.parameters()
    cls = type(core)
    core.remove()
    try:
        new_core = cls(router, name, new_row, new_col, **params)
    except errors.PlacementError:
        # placement failed: put the core back where it was and re-route
        restored = cls(router, name, core.row, core.col, **params)
        router.reconnect(restored)
        raise
    router.reconnect(new_core)
    return new_core
