"""Run-time parameterizable cores (paper Section 3.2).

"Another goal when designing the JRoute API was to support a hierarchical
and reusable library of run-time parameterizable cores. ... a core can
define ports. ... There are routing guidelines that need to be followed
when designing a core.  First, each port needs to be in a group. ...
Second, the router needs to be called for each port defined. ... Finally,
a getports() method must be defined for each group."

:class:`Core` implements those guidelines: subclasses declare a CLB
footprint, configure logic (LUTs/modes through JBits), run internal
routing through the shared :class:`~repro.core.router.JRouter`, and
define grouped ports bound to physical pins (or to ports of internal
child cores — hierarchy).  :class:`Floorplan` tracks placements and
rejects overlaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .. import errors
from ..core.endpoints import Pin, Port, PortDirection, PortGroup
from ..core.router import JRouter

__all__ = ["Core", "Floorplan", "Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """A placement rectangle in CLB coordinates (origin + size)."""

    row: int
    col: int
    height: int
    width: int

    def overlaps(self, other: "Rect") -> bool:
        return not (
            self.row + self.height <= other.row
            or other.row + other.height <= self.row
            or self.col + self.width <= other.col
            or other.col + other.width <= self.col
        )

    def contains_tile(self, row: int, col: int) -> bool:
        return (
            self.row <= row < self.row + self.height
            and self.col <= col < self.col + self.width
        )


class Floorplan:
    """Tracks core placements on one device, rejecting overlaps."""

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = rows
        self.cols = cols
        self._placed: dict[str, Rect] = {}

    def place(self, name: str, rect: Rect) -> None:
        if name in self._placed:
            raise errors.PlacementError(f"core {name!r} is already placed")
        if (
            rect.row < 0
            or rect.col < 0
            or rect.row + rect.height > self.rows
            or rect.col + rect.width > self.cols
        ):
            raise errors.PlacementError(
                f"core {name!r} at {rect} does not fit on a "
                f"{self.rows}x{self.cols} device"
            )
        for other_name, other in self._placed.items():
            if rect.overlaps(other):
                raise errors.PlacementError(
                    f"core {name!r} at {rect} overlaps {other_name!r} at {other}"
                )
        self._placed[name] = rect

    def remove(self, name: str) -> None:
        self._placed.pop(name, None)

    def rect_of(self, name: str) -> Rect | None:
        return self._placed.get(name)

    def placed(self) -> dict[str, Rect]:
        return dict(self._placed)


class Core:
    """Base class for run-time parameterizable cores.

    Subclasses set :attr:`HEIGHT`/:attr:`WIDTH` (or override
    :meth:`footprint`) and implement :meth:`build`, which must configure
    logic, perform internal routing, and define the port groups.

    Parameters
    ----------
    router:
        The shared :class:`JRouter`; the core uses it for internal
        routing and registers its ports with it.
    instance_name:
        User-level identity; a replacement core re-using the same name
        inherits the remembered port connections.
    row, col:
        Placement origin (south-west corner of the footprint).
    """

    HEIGHT = 1
    WIDTH = 1
    #: constructor-parameter attribute names, used by replace/relocate to
    #: re-instantiate the core (run-time parameterisation)
    PARAM_ATTRS: tuple[str, ...] = ()

    def __init__(
        self,
        router: JRouter,
        instance_name: str,
        row: int,
        col: int,
        *,
        parent: "Core | None" = None,
    ) -> None:
        self.router = router
        self.device = router.device
        self.jbits = router.jbits
        if self.jbits is None:
            raise errors.PlacementError(
                "cores require a router with an attached JBits (logic is "
                "configured through the bitstream interface)"
            )
        self.parent = parent
        if parent is not None:
            instance_name = f"{parent.instance_name}/{instance_name}"
        self.instance_name = instance_name
        self.row = row
        self.col = col
        self.groups: dict[str, PortGroup] = {}
        self.children: list[Core] = []
        #: source pins of nets routed internally during build (for removal)
        self._internal_net_sources: list[Pin] = []
        #: (row, col, lut) configured during build (for removal)
        self._configured_luts: list[tuple[int, int, int]] = []
        #: (row, col, mode_bit) set during build (for removal)
        self._configured_modes: list[tuple[int, int, int]] = []
        self._placed = False

        if parent is None:
            floorplan = _floorplan_of(router)
            floorplan.place(instance_name, self.footprint())
            try:
                self.build()
            except Exception:
                floorplan.remove(instance_name)
                raise
        else:
            # hierarchical placement: inside the parent, clear of siblings
            rect = self.footprint()
            prect = parent.footprint()
            if not (
                prect.row <= rect.row
                and prect.col <= rect.col
                and rect.row + rect.height <= prect.row + prect.height
                and rect.col + rect.width <= prect.col + prect.width
            ):
                raise errors.PlacementError(
                    f"child core {instance_name!r} at {rect} leaves its "
                    f"parent's footprint {prect}"
                )
            for sib in parent.children:
                if rect.overlaps(sib.footprint()):
                    raise errors.PlacementError(
                        f"child core {instance_name!r} at {rect} overlaps "
                        f"sibling {sib.instance_name!r}"
                    )
            parent.children.append(self)
            self.build()
        self._placed = True
        router.register_core(self)

    # -- subclass interface ------------------------------------------------------

    def footprint(self) -> Rect:
        """Occupied CLB rectangle; defaults to HEIGHT x WIDTH at origin."""
        return Rect(self.row, self.col, self.HEIGHT, self.WIDTH)

    def build(self) -> None:
        """Configure logic, route internal nets, define ports."""
        raise NotImplementedError

    # -- port definition helpers ----------------------------------------------------

    def define_group(self, name: str, ports: Iterable[Port]) -> PortGroup:
        """Create a port group (paper: every port must be in a group)."""
        if name in self.groups:
            raise errors.PortError(f"group {name!r} already defined")
        group = PortGroup(name)
        for p in ports:
            p.owner = self
            group.add(p)
        self.groups[name] = group
        return group

    def new_port(self, name: str, direction: PortDirection, binding) -> Port:
        """Create a port bound to a pin or an internal core's port."""
        port = Port(name, direction, owner=self)
        port.bind(binding)
        return port

    def get_ports(self, group: str) -> tuple[Port, ...]:
        """The paper's ``getports()``: the ports of one group, in order."""
        try:
            return self.groups[group].ports
        except KeyError:
            raise errors.PortError(
                f"core {self.instance_name!r} has no port group {group!r} "
                f"(has: {', '.join(self.groups) or 'none'})"
            ) from None

    def all_ports(self) -> list[Port]:
        out: list[Port] = []
        for group in self.groups.values():
            out.extend(group.ports)
        return out

    # -- build-time resource helpers -----------------------------------------------

    def tile(self, drow: int, dcol: int) -> tuple[int, int]:
        """Absolute tile of a footprint-relative offset."""
        return self.row + drow, self.col + dcol

    def set_lut(self, drow: int, dcol: int, lut: int, truth: int) -> None:
        """Configure a LUT (footprint-relative), tracked for removal."""
        row, col = self.tile(drow, dcol)
        if not self.footprint().contains_tile(row, col):
            raise errors.PlacementError(
                f"core {self.instance_name!r} configuring LUT outside its "
                f"footprint at ({row},{col})"
            )
        assert self.jbits is not None
        self.jbits.set_lut(row, col, lut, truth)
        key = (row, col, lut)
        if key not in self._configured_luts:
            self._configured_luts.append(key)

    def route_internal(self, source: Pin | Port, sinks) -> None:
        """Route an internal net, tracked so removal can unroute it."""
        if not isinstance(sinks, (list, tuple)):
            sinks = [sinks]
        self.router.route(source, list(sinks))
        src_pin = self.router.source_pin_of(source)
        if src_pin not in self._internal_net_sources:
            self._internal_net_sources.append(src_pin)

    # -- lifecycle -----------------------------------------------------------------------

    def remove(self) -> None:
        """Remove the core: unroute its nets, clear its logic, free its area.

        External port connections are remembered by the router's net
        database (Section 3.3), so a replacement core with the same
        instance name reconnects via :meth:`JRouter.reconnect`.
        """
        if not self._placed:
            return
        # disconnect external nets touching our ports
        for port in self.all_ports():
            if port.direction is PortDirection.OUT:
                self.router.unroute(port)
            else:
                for pin in port.resolve_pins():
                    canon = self.device.resolve(pin.row, pin.col, pin.wire)
                    if self.device.state.is_driven(canon):
                        self.router.reverse_unroute(Pin(pin.row, pin.col, pin.wire))
        # remove children bottom-up, then our own internal nets and logic
        for child in self.children:
            child.remove()
        for src in self._internal_net_sources:
            canon = self.device.resolve(src.row, src.col, src.wire)
            if self.device.state.children_of(canon):
                self.router.unroute(src)
        assert self.jbits is not None
        for row, col, lut in self._configured_luts:
            self.jbits.set_lut(row, col, lut, 0)
        for row, col, bit in self._configured_modes:
            self.jbits.set_mode_bit(row, col, bit, False)
        _floorplan_of(self.router).remove(self.instance_name)
        self._placed = False

    def parameters(self) -> dict:
        """Constructor parameters of this core (see :data:`PARAM_ATTRS`)."""
        return {a: getattr(self, a) for a in self.PARAM_ATTRS}

    # -- children ---------------------------------------------------------------------------

    def add_child(self, core: "Core") -> "Core":
        self.children.append(core)
        return core

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"{type(self).__name__}({self.instance_name!r} at "
            f"({self.row},{self.col}))"
        )


def _floorplan_of(router: JRouter) -> Floorplan:
    """The per-router floorplan (created on first use)."""
    fp = getattr(router, "_floorplan", None)
    if fp is None:
        fp = Floorplan(router.device.rows, router.device.cols)
        router._floorplan = fp
    return fp
