"""Run-time parameterizable cores: the paper's Section 3.2/3.3 machinery.

:class:`~repro.cores.core.Core` (port groups, hierarchical placement,
removal with remembered connections), :class:`~repro.cores.core.Floorplan`,
the replace/relocate flows of :mod:`~repro.cores.relocate`, and the
library in :mod:`~repro.cores.library`.
"""

from .core import Core, Floorplan, Rect
from .library import (
    AccumulatorCore,
    AdderCore,
    And2Core,
    ComparatorCore,
    ConstantCore,
    ConstantMultiplierCore,
    CounterCore,
    InverterCore,
    LutGateCore,
    LutRamCore,
    Mux2Core,
    Or2Core,
    RegisterCore,
    ShiftRegisterCore,
    Xor2Core,
    kcm_truth,
)
from .relocate import relocate_core, replace_core

__all__ = [
    "Core",
    "Floorplan",
    "Rect",
    "AccumulatorCore",
    "AdderCore",
    "And2Core",
    "ComparatorCore",
    "ConstantCore",
    "ConstantMultiplierCore",
    "CounterCore",
    "InverterCore",
    "LutGateCore",
    "LutRamCore",
    "Mux2Core",
    "Or2Core",
    "RegisterCore",
    "ShiftRegisterCore",
    "Xor2Core",
    "kcm_truth",
    "relocate_core",
    "replace_core",
]
