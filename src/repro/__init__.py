"""JRoute reproduction: a run-time routing API over a simulated
Virtex-class FPGA fabric.

Reproduces Keller, *JRoute: A Run-Time Routing API for FPGA Hardware*
(IPPS 2000): the JRoute API (:mod:`repro.core`) with its six levels of
routing control, ports, unrouter, tracer and contention protection; the
JBits-style bitstream substrate (:mod:`repro.jbits`); the simulated
Virtex architecture and device (:mod:`repro.arch`, :mod:`repro.device`);
swappable routing algorithms including a PathFinder baseline
(:mod:`repro.routers`); a run-time parameterizable core library
(:mod:`repro.cores`); BoardScope-style debugging (:mod:`repro.debug`);
and the experiment harness (:mod:`repro.bench`).

Quickstart::

    from repro import JRouter, Pin, wires

    router = JRouter(part="XCV50")
    src = Pin(5, 7, wires.S1_YQ)
    sink = Pin(6, 8, wires.S0F[3])
    router.route(src, sink)          # auto point-to-point
    print(router.trace(src).describe(router.device))
    router.unroute(src)
"""

from . import errors
from .arch import VirtexArch, wires
from .core import (
    JRouter,
    Path,
    Pin,
    Port,
    PortDirection,
    RetryPolicy,
    RouteTransaction,
    RoutingReport,
    Template,
)
from .device import Device, FaultModel
from .errors import FaultError, TransactionError
from .jbits import JBits

__version__ = "1.0.0"

__all__ = [
    "errors",
    "VirtexArch",
    "wires",
    "JRouter",
    "Path",
    "Pin",
    "Port",
    "PortDirection",
    "RetryPolicy",
    "RouteTransaction",
    "RoutingReport",
    "Template",
    "Device",
    "FaultModel",
    "FaultError",
    "TransactionError",
    "JBits",
    "__version__",
]
