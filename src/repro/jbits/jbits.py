"""The JBits-style low-level configuration interface.

The original JBits "provides access to Xilinx FPGA configuration
bitstreams" — get/set of configuration resources addressed by CLB row,
column and resource.  This class is that interface over the simulated
device: it mirrors every behavioural PIP change into the configuration
memory, provides direct LUT/mode configuration for cores, and supports
the *manual routing* workflow the paper contrasts JRoute against in
Section 4 (the user programs each PIP individually, and must know the
architecture to do so).
"""

from __future__ import annotations

import numpy as np

from .. import errors
from ..arch import connectivity, wires
from ..device.fabric import Device, PipEvent
from .bitstream import LUT_BITS, MODE_BITS, PIP_BITS, ConfigMemory

__all__ = ["JBits"]

#: LUT selector constants: (slice, F/G) -> lut index 0..3
LUT_S0F, LUT_S0G, LUT_S1F, LUT_S1G = range(4)


class JBits:
    """Bit-level configuration access bound to one :class:`Device`.

    Every PIP turned on/off through the device (by JRoute or by manual
    calls) is mirrored into :attr:`memory`; LUT truth tables and slice
    modes are configured directly here, as cores do.
    """

    def __init__(self, device: Device) -> None:
        self.device = device
        self.memory = ConfigMemory(device.arch)
        device.add_listener(self._on_pip_event)
        #: API-call counter, used by the Section 4 comparison experiment
        self.call_count = 0

    # -- event mirror -----------------------------------------------------------

    def _on_pip_event(self, event: PipEvent) -> None:
        on, rec = event
        addr = self.memory.tile_bit_address(
            rec.row, rec.col, connectivity.pip_slot(rec.from_name, rec.to_name)
        )
        self.memory.set_bit(addr, on)

    # -- manual PIP interface (what routing with raw JBits looks like) -----------

    def set(self, row: int, col: int, from_wire: int, to_wire: int, on: bool = True) -> None:
        """Program one PIP, as a raw JBits user would.

        The caller must know the architecture: which wires exist at the
        tile, which PIPs exist, and which wires are already in use —
        exactly the burden Section 4 says JRoute removes.
        """
        self.call_count += 1
        if on:
            self.device.turn_on(row, col, from_wire, to_wire)
        else:
            self.device.turn_off(row, col, from_wire, to_wire)

    def get(self, row: int, col: int, from_wire: int, to_wire: int) -> bool:
        """Read one PIP's configuration bit."""
        self.call_count += 1
        try:
            slot = connectivity.pip_slot(from_wire, to_wire)
        except KeyError:
            raise errors.InvalidPipError(
                f"no PIP {wires.wire_name(from_wire)} -> "
                f"{wires.wire_name(to_wire)} in the architecture"
            ) from None
        return self.memory.get_bit(self.memory.tile_bit_address(row, col, slot))

    # -- LUT and slice-mode configuration -----------------------------------------

    def set_lut(self, row: int, col: int, lut: int, truth: int) -> None:
        """Write a 16-entry LUT truth table (an int bitmask over inputs).

        ``truth`` bit ``i`` is the output for input combination ``i``
        (F1/G1 is the least-significant address bit).
        """
        if not 0 <= lut < 4:
            raise errors.BitstreamError(f"lut index {lut} out of range")
        if not 0 <= truth < (1 << 16):
            raise errors.BitstreamError("truth table must be a 16-bit value")
        bits = np.array([(truth >> i) & 1 for i in range(16)], dtype=np.uint8)
        base = PIP_BITS + lut * 16
        self.memory.set_bits(self.memory.tile_bit_address(row, col, base), bits)

    def get_lut(self, row: int, col: int, lut: int) -> int:
        if not 0 <= lut < 4:
            raise errors.BitstreamError(f"lut index {lut} out of range")
        base = PIP_BITS + lut * 16
        bits = self.memory.get_bits(self.memory.tile_bit_address(row, col, base), 16)
        return int(sum(int(b) << i for i, b in enumerate(bits)))

    def set_mode_bit(self, row: int, col: int, bit: int, value: bool) -> None:
        """Set one slice-mode bit (FF enables, output mux selects, ...)."""
        if not 0 <= bit < MODE_BITS:
            raise errors.BitstreamError(f"mode bit {bit} out of range")
        base = PIP_BITS + LUT_BITS + bit
        self.memory.set_bit(self.memory.tile_bit_address(row, col, base), value)

    def get_mode_bit(self, row: int, col: int, bit: int) -> bool:
        base = PIP_BITS + LUT_BITS + bit
        return self.memory.get_bit(self.memory.tile_bit_address(row, col, base))

    # -- global buffers ---------------------------------------------------------------

    def set_global_buffer(self, idx: int, on: bool) -> None:
        """Enable/disable one of the four dedicated global-net buffers."""
        if not 0 <= idx < wires.N_GCLK:
            raise errors.BitstreamError(f"global buffer {idx} out of range")
        self.memory.set_bit(self.memory.global_bit_address(idx), on)

    def get_global_buffer(self, idx: int) -> bool:
        if not 0 <= idx < wires.N_GCLK:
            raise errors.BitstreamError(f"global buffer {idx} out of range")
        return self.memory.get_bit(self.memory.global_bit_address(idx))

    # -- readback ------------------------------------------------------------------------

    def readback(self) -> ConfigMemory:
        """Snapshot of the full configuration memory (device readback)."""
        return self.memory.copy()
