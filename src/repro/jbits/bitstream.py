"""Configuration memory model: tiles, bits, and column-major frames.

Virtex configuration memory is organised in vertical *frames*; a column of
CLBs is configured by a group of frames, and partial reconfiguration
rewrites only the frames that changed.  This module models that layout:

* every CLB tile owns a fixed-size bit region: one bit per name-level PIP
  (see :data:`repro.arch.connectivity.PIP_LIST`), 16 bits per LUT (4 LUTs)
  and 16 slice-mode bits;
* a device column's bits are split into :data:`FRAMES_PER_COLUMN` equal
  frames (48, as on Virtex);
* a small *global region* (one extra frame) holds the 4 global-buffer
  enables;
* the memory tracks which frames were touched since the last sync, which
  is what gives partial reconfiguration its frame-proportional cost.

Bits are stored one-per-byte in a numpy array — simple, fast to slice,
and trivially serialisable by the packet layer.
"""

from __future__ import annotations

import numpy as np

from .. import errors
from ..arch import connectivity, wires
from ..arch.virtex import VirtexArch

__all__ = [
    "ConfigMemory",
    "FRAMES_PER_COLUMN",
    "PIP_BITS",
    "LUT_BITS",
    "MODE_BITS",
    "TILE_BITS",
    "N_GLOBAL_BITS",
]

FRAMES_PER_COLUMN = 48  #: as on Virtex

PIP_BITS = connectivity.N_PIP_SLOTS
LUT_BITS = 4 * 16   #: four 4-input LUTs per CLB (two slices x F,G)
MODE_BITS = 16      #: slice mode bits (FF enables, mux selects, ...)
TILE_BITS = PIP_BITS + LUT_BITS + MODE_BITS
N_GLOBAL_BITS = wires.N_GCLK  #: global-buffer enables


class ConfigMemory:
    """Bit-addressable configuration memory for one device."""

    def __init__(self, arch: VirtexArch) -> None:
        self.arch = arch
        self.rows = arch.rows
        self.cols = arch.cols
        #: bits of one CLB column
        self.column_bits = self.rows * TILE_BITS
        #: bits of one frame (columns are padded up to a whole number)
        self.frame_bits = -(-self.column_bits // FRAMES_PER_COLUMN)
        #: total frames: per-column frames plus one global frame
        self.n_frames = self.cols * FRAMES_PER_COLUMN + 1
        self._global_frame = self.n_frames - 1
        self.bits = np.zeros(self.n_frames * self.frame_bits, dtype=np.uint8)
        self._dirty: set[int] = set()

    # -- addressing -----------------------------------------------------------

    def tile_bit_address(self, row: int, col: int, local_bit: int) -> int:
        """Absolute bit address of a tile-local configuration bit."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise errors.BitstreamError(f"tile ({row},{col}) out of range")
        if not 0 <= local_bit < TILE_BITS:
            raise errors.BitstreamError(f"local bit {local_bit} out of range")
        within_column = row * TILE_BITS + local_bit
        frame, offset = divmod(within_column, self.frame_bits)
        return (col * FRAMES_PER_COLUMN + frame) * self.frame_bits + offset

    def global_bit_address(self, idx: int) -> int:
        """Absolute address of a global-region bit (global-buffer enables)."""
        if not 0 <= idx < self.frame_bits:
            raise errors.BitstreamError(f"global bit {idx} out of range")
        return self._global_frame * self.frame_bits + idx

    def frame_of_address(self, address: int) -> int:
        return address // self.frame_bits

    # -- bit access --------------------------------------------------------------

    def set_bit(self, address: int, value: bool) -> None:
        if self.bits[address] != value:
            self.bits[address] = value
            self._dirty.add(self.frame_of_address(address))

    def get_bit(self, address: int) -> bool:
        return bool(self.bits[address])

    def set_bits(self, address: int, values: np.ndarray) -> None:
        """Write a contiguous run of bits starting at ``address``."""
        end = address + len(values)
        region = self.bits[address:end]
        if not np.array_equal(region, values):
            self.bits[address:end] = values
            for f in range(self.frame_of_address(address), self.frame_of_address(end - 1) + 1):
                self._dirty.add(f)

    def get_bits(self, address: int, count: int) -> np.ndarray:
        return self.bits[address : address + count].copy()

    # -- frames ---------------------------------------------------------------------

    def get_frame(self, frame: int) -> np.ndarray:
        """Copy of one frame's bits (the readback primitive)."""
        if not 0 <= frame < self.n_frames:
            raise errors.BitstreamError(f"frame {frame} out of range")
        start = frame * self.frame_bits
        return self.bits[start : start + self.frame_bits].copy()

    def set_frame(self, frame: int, data: np.ndarray) -> None:
        """Overwrite one frame (the configuration-write primitive)."""
        if not 0 <= frame < self.n_frames:
            raise errors.BitstreamError(f"frame {frame} out of range")
        if len(data) != self.frame_bits:
            raise errors.BitstreamError(
                f"frame data length {len(data)} != frame size {self.frame_bits}"
            )
        start = frame * self.frame_bits
        if not np.array_equal(self.bits[start : start + self.frame_bits], data):
            self.bits[start : start + self.frame_bits] = data
            self._dirty.add(frame)

    def frames_of_column(self, col: int) -> range:
        """Frame numbers configuring CLB column ``col``."""
        return range(col * FRAMES_PER_COLUMN, (col + 1) * FRAMES_PER_COLUMN)

    # -- dirty tracking ------------------------------------------------------------------

    @property
    def dirty_frames(self) -> frozenset[int]:
        """Frames modified since the last :meth:`clear_dirty`."""
        return frozenset(self._dirty)

    def clear_dirty(self) -> None:
        self._dirty.clear()

    # -- convenience ------------------------------------------------------------------

    def copy(self) -> "ConfigMemory":
        other = ConfigMemory(self.arch)
        other.bits = self.bits.copy()
        other._dirty = set(self._dirty)
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigMemory):
            return NotImplemented
        return self.arch.part == other.arch.part and np.array_equal(
            self.bits, other.bits
        )

    # mutable container with value equality: explicitly unhashable (the
    # standard way — ``hash(mem)`` raises TypeError, and tools that probe
    # ``__hash__ is None`` see a consistent eq/hash contract)
    __hash__ = None  # type: ignore[assignment]

    def locate_bit(self, address: int) -> tuple[int, int, int] | None:
        """Map an absolute bit address back to ``(row, col, local_bit)``.

        The inverse of :meth:`tile_bit_address`, used by the scrubber to
        classify configuration drift.  Returns None for addresses outside
        any tile region (column padding or the global frame).
        """
        if not 0 <= address < len(self.bits):
            raise errors.BitstreamError(
                f"bit address {address} out of range",
                frame=address // self.frame_bits if address >= 0 else None,
                offset=address % self.frame_bits if address >= 0 else None,
            )
        frame = address // self.frame_bits
        if frame == self._global_frame:
            return None
        col, frame_in_col = divmod(frame, FRAMES_PER_COLUMN)
        within_column = frame_in_col * self.frame_bits + address % self.frame_bits
        row, local_bit = divmod(within_column, TILE_BITS)
        if row >= self.rows:
            return None  # padding past the last tile of the column
        return row, col, local_bit

    def diff_frames(self, other: "ConfigMemory") -> list[int]:
        """Frames whose contents differ between two memories."""
        if self.n_frames != other.n_frames:
            raise errors.BitstreamError("memories are for different devices")
        a = self.bits.reshape(self.n_frames, self.frame_bits)
        b = other.bits.reshape(self.n_frames, self.frame_bits)
        return [int(f) for f in np.flatnonzero((a != b).any(axis=1))]
