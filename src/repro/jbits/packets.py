"""Configuration packet stream: a simplified Virtex bitstream format.

Virtex devices are configured by a stream of 32-bit words: dummy words, a
sync word, then type-1 packets writing configuration registers — FAR (the
frame address), FDRI (frame data input), CRC and CMD.  This module
implements that shape over :class:`~repro.jbits.bitstream.ConfigMemory`:

* :func:`write_bitstream` serialises a memory (all frames, or a chosen
  subset — which is what a *partial reconfiguration* bitstream is);
* :func:`apply_bitstream` parses a stream and writes its frames into a
  memory, verifying sync and CRC.

The word-level encoding is simplified (single type-1 packet form, additive
CRC) but preserves what matters for run-time reconfiguration studies:
cost is proportional to the number of frames shipped, and partial streams
compose onto an existing configuration.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .. import errors
from .bitstream import ConfigMemory

__all__ = [
    "DUMMY_WORD",
    "SYNC_WORD",
    "REG_CRC",
    "REG_FAR",
    "REG_FDRI",
    "REG_CMD",
    "CMD_WCFG",
    "CMD_DESYNC",
    "write_bitstream",
    "apply_bitstream",
    "parse_packets",
    "Packet",
]

DUMMY_WORD = 0xFFFFFFFF
SYNC_WORD = 0xAA995566

REG_CRC = 0
REG_FAR = 1
REG_FDRI = 2
REG_CMD = 4

CMD_WCFG = 1
CMD_DESYNC = 13

_TYPE1 = 0b001


def _header(reg: int, count: int) -> int:
    if count >= (1 << 11):
        raise errors.BitstreamError(f"packet too long ({count} words)")
    return (_TYPE1 << 29) | (0b10 << 27) | (reg << 13) | count


def _words_per_frame(mem: ConfigMemory) -> int:
    return -(-mem.frame_bits // 32)


def _pack_frame(frame_bits: np.ndarray) -> list[int]:
    """Pack a frame's bits into 32-bit words, bit i at word i//32, lsb-first."""
    n_words = -(-len(frame_bits) // 32)
    padded = np.zeros(n_words * 32, dtype=np.uint8)
    padded[: len(frame_bits)] = frame_bits
    lanes = padded.reshape(n_words, 32)
    weights = (1 << np.arange(32, dtype=np.uint64))
    return [int(w) for w in (lanes.astype(np.uint64) * weights).sum(axis=1)]


def _unpack_frame(words: Sequence[int], frame_bits: int) -> np.ndarray:
    lanes = np.asarray(list(words), dtype=np.uint64)
    bits = (lanes[:, None] >> np.arange(32, dtype=np.uint64)) & 1
    return bits.astype(np.uint8).reshape(-1)[:frame_bits]


class Packet:
    """One parsed type-1 write packet."""

    __slots__ = ("register", "payload")

    def __init__(self, register: int, payload: list[int]) -> None:
        self.register = register
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Packet(reg={self.register}, words={len(self.payload)})"


def write_bitstream(
    mem: ConfigMemory, frames: Iterable[int] | None = None
) -> bytes:
    """Serialise configuration frames into a packet stream.

    ``frames=None`` produces a full bitstream; passing a frame subset
    produces a partial-reconfiguration bitstream (e.g.
    ``mem.dirty_frames`` after a run-time change).
    """
    frame_list = sorted(range(mem.n_frames) if frames is None else set(frames))
    for f in frame_list:
        if not 0 <= f < mem.n_frames:
            raise errors.BitstreamError(f"frame {f} out of range")
    wpf = _words_per_frame(mem)
    words: list[int] = [DUMMY_WORD, SYNC_WORD]
    words.append(_header(REG_CMD, 1))
    words.append(CMD_WCFG)
    crc = 0
    for f in frame_list:
        words.append(_header(REG_FAR, 1))
        words.append(f)
        payload = _pack_frame(mem.get_frame(f))
        assert len(payload) == wpf
        words.append(_header(REG_FDRI, wpf))
        words.extend(payload)
        crc = (crc + f + sum(payload)) & 0xFFFFFFFF
    words.append(_header(REG_CRC, 1))
    words.append(crc)
    words.append(_header(REG_CMD, 1))
    words.append(CMD_DESYNC)
    return b"".join(w.to_bytes(4, "big") for w in words)


def parse_packets(stream: bytes) -> list[Packet]:
    """Parse a packet stream into write packets (after sync detection)."""
    if len(stream) % 4:
        raise errors.BitstreamError("bitstream length is not word aligned")
    words = [int.from_bytes(stream[i : i + 4], "big") for i in range(0, len(stream), 4)]
    # scan for sync
    try:
        pos = words.index(SYNC_WORD) + 1
    except ValueError:
        raise errors.BitstreamError("no sync word in bitstream") from None
    packets: list[Packet] = []
    while pos < len(words):
        header = words[pos]
        pos += 1
        if header == DUMMY_WORD:
            continue
        if (header >> 29) != _TYPE1:
            raise errors.BitstreamError(f"unsupported packet header {header:#010x}")
        reg = (header >> 13) & 0x3FFF
        count = header & 0x7FF
        if pos + count > len(words):
            raise errors.BitstreamError("truncated packet payload")
        packets.append(Packet(reg, words[pos : pos + count]))
        pos += count
    return packets


def apply_bitstream(stream: bytes, mem: ConfigMemory) -> list[int]:
    """Apply a (full or partial) bitstream to a configuration memory.

    Returns the list of frames written.  Verifies the CRC and requires a
    terminating DESYNC command, as the device's configuration logic does.
    """
    packets = parse_packets(stream)
    far: int | None = None
    crc = 0
    claimed_crc: int | None = None
    desynced = False
    written: list[int] = []
    wpf = _words_per_frame(mem)
    for pkt in packets:
        if desynced:
            raise errors.BitstreamError("data after DESYNC")
        if pkt.register == REG_CMD:
            if pkt.payload == [CMD_DESYNC]:
                desynced = True
            elif pkt.payload == [CMD_WCFG]:
                pass
            else:
                raise errors.BitstreamError(f"unknown command {pkt.payload}")
        elif pkt.register == REG_FAR:
            if len(pkt.payload) != 1:
                raise errors.BitstreamError("FAR packet must carry one word")
            far = pkt.payload[0]
        elif pkt.register == REG_FDRI:
            if far is None:
                raise errors.BitstreamError("FDRI before any FAR")
            if len(pkt.payload) != wpf:
                raise errors.BitstreamError(
                    f"FDRI payload {len(pkt.payload)} words, expected {wpf}"
                )
            mem.set_frame(far, _unpack_frame(pkt.payload, mem.frame_bits))
            written.append(far)
            crc = (crc + far + sum(pkt.payload)) & 0xFFFFFFFF
            far = None
        elif pkt.register == REG_CRC:
            claimed_crc = pkt.payload[0]
        else:
            raise errors.BitstreamError(f"write to unknown register {pkt.register}")
    if not desynced:
        raise errors.BitstreamError("bitstream missing DESYNC")
    if claimed_crc is None or claimed_crc != crc:
        raise errors.BitstreamError(
            f"CRC mismatch: stream claims {claimed_crc}, computed {crc}"
        )
    return written
