"""Readback decoding: recover routing from configuration bits.

Debug tools like BoardScope work from the *device's* configuration, not
from the router's bookkeeping.  This module decodes a
:class:`~repro.jbits.bitstream.ConfigMemory` back into the set of on-PIPs
(and LUT/global state), which lets tests and the debug layer cross-check
that the bit-level view and the behavioural routing state never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch import connectivity, wires
from ..device.fabric import Device
from .bitstream import FRAMES_PER_COLUMN, PIP_BITS, TILE_BITS, ConfigMemory

__all__ = [
    "PipMismatch",
    "decode_pips",
    "decode_global_buffers",
    "verify_against_device",
]


@dataclass(frozen=True, slots=True)
class PipMismatch:
    """One PIP-level discrepancy between bitstream and device state.

    ``kind`` is ``"spurious"`` when the bitstream has a PIP the device
    state does not (the classification of an SEU *setting* a PIP bit) and
    ``"dropped"`` when the device state has a PIP the bitstream lost.
    The location fields mirror :meth:`repro.errors.RoutingFailure.context`
    so scrub reports, E16 fault reports and readback verification share
    one structured shape.
    """

    kind: str          #: "spurious" | "dropped"
    row: int
    col: int
    from_wire: str     #: wire *names* (strings), ready for reports
    to_wire: str
    #: canonical source id of the net the device state drives through the
    #: PIP's destination wire, when known (None for spurious PIPs that
    #: touch no live net)
    net: int | None = None
    #: numeric wire-name ids, for machine repair (scrubber, reconcile)
    from_id: int = -1
    to_id: int = -1

    def context(self) -> dict[str, int | str]:
        """Structured fields, :meth:`RoutingFailure.context`-shaped."""
        out: dict[str, int | str] = {
            "row": self.row,
            "col": self.col,
            "wire": self.to_wire,
        }
        if self.net is not None:
            out["net"] = self.net
        return out

    def __str__(self) -> str:
        if self.kind == "spurious":
            return (
                f"bitstream has PIP {self.from_wire} -> {self.to_wire} "
                f"at ({self.row},{self.col}) but the device state does not"
            )
        return (
            f"device state has PIP {self.from_wire} -> {self.to_wire} "
            f"at ({self.row},{self.col}) but the bitstream does not"
        )


def decode_pips(mem: ConfigMemory) -> set[tuple[int, int, int, int]]:
    """All on-PIPs ``(row, col, from_name, to_name)`` encoded in the memory.

    Vectorised per CLB column: a column's bits occupy a contiguous region
    at the start of its frame group, so one reshape exposes a
    ``rows x TILE_BITS`` matrix per column.
    """
    pips: set[tuple[int, int, int, int]] = set()
    col_region = FRAMES_PER_COLUMN * mem.frame_bits
    for col in range(mem.cols):
        start = col * col_region
        tiles = mem.bits[start : start + mem.rows * TILE_BITS].reshape(
            mem.rows, TILE_BITS
        )
        rows_idx, slots = np.nonzero(tiles[:, :PIP_BITS])
        for row, slot in zip(rows_idx.tolist(), slots.tolist()):
            from_name, to_name = connectivity.PIP_LIST[slot]
            pips.add((row, col, from_name, to_name))
    return pips


def decode_global_buffers(mem: ConfigMemory) -> tuple[bool, ...]:
    """States of the four global-buffer enables."""
    return tuple(
        mem.get_bit(mem.global_bit_address(i)) for i in range(wires.N_GCLK)
    )


def verify_against_device(mem: ConfigMemory, device: Device) -> list[PipMismatch]:
    """Compare bit-level routing with the device's behavioural state.

    Returns structured :class:`PipMismatch` records (empty when
    coherent); ``str(mismatch)`` renders the human-readable line.  Used
    by the test suite after every routing scenario, by the debug tools'
    self-check and by the scrubber's drift classification.
    """
    problems: list[PipMismatch] = []
    bit_pips = decode_pips(mem)
    state_pips = {
        (rec.row, rec.col, rec.from_name, rec.to_name)
        for rec in device.state.pip_of.values()
    }

    def net_of(row: int, col: int, to_name: int) -> int | None:
        canon = device.arch.canonicalize(row, col, to_name)
        if canon is None or not device.state.is_driven(canon):
            return None
        return device.state.root_of(canon)

    for row, col, f, t in sorted(bit_pips - state_pips):
        problems.append(
            PipMismatch(
                "spurious", row, col,
                wires.wire_name(f), wires.wire_name(t),
                net=net_of(row, col, t),
                from_id=f, to_id=t,
            )
        )
    for row, col, f, t in sorted(state_pips - bit_pips):
        problems.append(
            PipMismatch(
                "dropped", row, col,
                wires.wire_name(f), wires.wire_name(t),
                net=net_of(row, col, t),
                from_id=f, to_id=t,
            )
        )
    return problems
