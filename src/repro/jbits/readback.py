"""Readback decoding: recover routing from configuration bits.

Debug tools like BoardScope work from the *device's* configuration, not
from the router's bookkeeping.  This module decodes a
:class:`~repro.jbits.bitstream.ConfigMemory` back into the set of on-PIPs
(and LUT/global state), which lets tests and the debug layer cross-check
that the bit-level view and the behavioural routing state never diverge.
"""

from __future__ import annotations

import numpy as np

from ..arch import connectivity, wires
from ..device.fabric import Device
from .bitstream import FRAMES_PER_COLUMN, PIP_BITS, TILE_BITS, ConfigMemory

__all__ = ["decode_pips", "decode_global_buffers", "verify_against_device"]


def decode_pips(mem: ConfigMemory) -> set[tuple[int, int, int, int]]:
    """All on-PIPs ``(row, col, from_name, to_name)`` encoded in the memory.

    Vectorised per CLB column: a column's bits occupy a contiguous region
    at the start of its frame group, so one reshape exposes a
    ``rows x TILE_BITS`` matrix per column.
    """
    pips: set[tuple[int, int, int, int]] = set()
    col_region = FRAMES_PER_COLUMN * mem.frame_bits
    for col in range(mem.cols):
        start = col * col_region
        tiles = mem.bits[start : start + mem.rows * TILE_BITS].reshape(
            mem.rows, TILE_BITS
        )
        rows_idx, slots = np.nonzero(tiles[:, :PIP_BITS])
        for row, slot in zip(rows_idx.tolist(), slots.tolist()):
            from_name, to_name = connectivity.PIP_LIST[slot]
            pips.add((row, col, from_name, to_name))
    return pips


def decode_global_buffers(mem: ConfigMemory) -> tuple[bool, ...]:
    """States of the four global-buffer enables."""
    return tuple(
        mem.get_bit(mem.global_bit_address(i)) for i in range(wires.N_GCLK)
    )


def verify_against_device(mem: ConfigMemory, device: Device) -> list[str]:
    """Compare bit-level routing with the device's behavioural state.

    Returns human-readable discrepancies (empty when coherent).  Used by
    the test suite after every routing scenario and by the debug tools'
    self-check.
    """
    problems: list[str] = []
    bit_pips = decode_pips(mem)
    state_pips = {
        (rec.row, rec.col, rec.from_name, rec.to_name)
        for rec in device.state.pip_of.values()
    }
    for p in sorted(bit_pips - state_pips):
        row, col, f, t = p
        problems.append(
            f"bitstream has PIP {wires.wire_name(f)} -> {wires.wire_name(t)} "
            f"at ({row},{col}) but the device state does not"
        )
    for p in sorted(state_pips - bit_pips):
        row, col, f, t = p
        problems.append(
            f"device state has PIP {wires.wire_name(f)} -> {wires.wire_name(t)} "
            f"at ({row},{col}) but the bitstream does not"
        )
    return problems
