"""JBits substrate: bit-level configuration of the simulated device.

The original JRoute is "built on JBits", a Java interface to Xilinx
configuration bitstreams.  This package reproduces that substrate:
:class:`~repro.jbits.jbits.JBits` (get/set of PIP, LUT, mode and global
bits, mirrored from the behavioural device), the frame-organised
:class:`~repro.jbits.bitstream.ConfigMemory`, the packet serialisation of
:mod:`~repro.jbits.packets` (full + partial reconfiguration), and
:mod:`~repro.jbits.readback` decoding.
"""

from .bitstream import (
    FRAMES_PER_COLUMN,
    LUT_BITS,
    MODE_BITS,
    PIP_BITS,
    TILE_BITS,
    ConfigMemory,
)
from .jbits import LUT_S0F, LUT_S0G, LUT_S1F, LUT_S1G, JBits
from .packets import apply_bitstream, parse_packets, write_bitstream
from .readback import (
    PipMismatch,
    decode_global_buffers,
    decode_pips,
    verify_against_device,
)

__all__ = [
    "ConfigMemory",
    "FRAMES_PER_COLUMN",
    "PIP_BITS",
    "LUT_BITS",
    "MODE_BITS",
    "TILE_BITS",
    "JBits",
    "LUT_S0F",
    "LUT_S0G",
    "LUT_S1F",
    "LUT_S1G",
    "write_bitstream",
    "apply_bitstream",
    "parse_packets",
    "decode_pips",
    "decode_global_buffers",
    "verify_against_device",
    "PipMismatch",
]
