"""The service job lifecycle: a tiny state machine with one hard rule.

Every *accepted* job reaches a terminal state **exactly once**.  That is
the invariant the whole daemon is built around (and what the E20 chaos
gate measures): workers may die mid-route, the same job may be executed
twice after a respawn (safe — re-routing an already-routed sink is a
0-PIP no-op in :meth:`~repro.core.router.JRouter.route_p2p_batch`), a
late result may race a worker-lost re-enqueue, but the *accounting*
converges because :meth:`Job.finish` is the single, locked door into a
terminal state and every later attempt to walk through it is ignored.

States::

    QUEUED ──→ DISPATCHED ──→ SUCCEEDED | FAILED
       │            │
       │            └──(worker lost)──→ QUEUED   (attempts += 1)
       └──(shed / quota / breaker at admission)──→ REJECTED

``REJECTED`` is terminal but *pre-acceptance*: shed jobs are never
journaled as accepted, so they do not count against the zero-lost-jobs
invariant — the client got a fast 429 with a retry-after instead of a
promise.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from threading import Lock
from typing import Callable

from ..core.deadline import Deadline

__all__ = ["Job", "JobState"]


def _new_job_id() -> str:
    # globally unique, never a counter: the journal outlives the process,
    # so a restart reusing ids would let old terminal records shadow new
    # jobs in recover_jobs() — a silently lost accepted job
    return f"job-{uuid.uuid4().hex}"


class JobState(str, Enum):
    """Lifecycle states; the str base keeps JSON serialization trivial."""

    QUEUED = "queued"
    DISPATCHED = "dispatched"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    REJECTED = "rejected"

    @property
    def terminal(self) -> bool:
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.REJECTED)


@dataclass
class Job:
    """One accepted point-to-point route request.

    ``source`` / ``sink`` are ``(row, col, wire)`` triples with the wire
    as a canonical int (the HTTP layer parses wire *names* before a job
    is built, so bad requests fail fast at admission).
    """

    tenant: str
    source: tuple[int, int, int]
    sink: tuple[int, int, int]
    priority: int = 0
    deadline_ms: float | None = None
    job_id: str = field(default_factory=_new_job_id)
    state: JobState = JobState.QUEUED
    attempts: int = 0
    result: dict = field(default_factory=dict)
    #: monotonic instant of the terminal transition (drives TTL eviction
    #: of settled jobs so a long-lived daemon's job table stays bounded)
    finished_at: float | None = None
    #: cooperative per-job deadline token, armed at acceptance
    deadline: Deadline | None = None
    _lock: Lock = field(default_factory=Lock, repr=False)
    _done_cbs: list[Callable[["Job"], None]] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        if self.deadline is None and self.deadline_ms is not None:
            self.deadline = Deadline(self.deadline_ms)

    # -- state transitions ---------------------------------------------------

    def mark_dispatched(self) -> bool:
        """QUEUED → DISPATCHED; False if the job already went terminal."""
        with self._lock:
            if self.state.terminal:
                return False
            self.state = JobState.DISPATCHED
            self.attempts += 1
            return True

    def mark_requeued(self) -> bool:
        """DISPATCHED → QUEUED after a worker loss; False when terminal."""
        with self._lock:
            if self.state.terminal:
                return False
            self.state = JobState.QUEUED
            return True

    def finish(self, state: JobState, **result) -> bool:
        """Move to a terminal state exactly once.

        Returns True for the one caller that performed the transition;
        every later call (a duplicate result from a respawned worker, a
        worker-lost sweep racing a late success) returns False and
        changes nothing.  Done-callbacks fire outside the lock, once.
        """
        if not state.terminal:
            raise ValueError(f"finish() needs a terminal state, got {state}")
        with self._lock:
            if self.state.terminal:
                return False
            self.state = state
            self.result = result
            self.finished_at = time.monotonic()
            cbs, self._done_cbs = self._done_cbs, []
        for cb in cbs:
            cb(self)
        return True

    def add_done_callback(self, cb: Callable[["Job"], None]) -> None:
        """Run ``cb(job)`` at the terminal transition (or now, if past it)."""
        with self._lock:
            if not self.state.terminal:
                self._done_cbs.append(cb)
                return
        cb(self)

    # -- views ---------------------------------------------------------------

    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def remaining_ms(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline.remaining_ms()

    def to_wire(self) -> dict:
        """Picklable/JSON description shipped to workers and the journal."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "source": list(self.source),
            "sink": list(self.sink),
            "priority": self.priority,
            "deadline_ms": self.deadline_ms,
            "remaining_ms": self.remaining_ms(),
        }

    @classmethod
    def from_wire(cls, d: dict) -> "Job":
        """Rebuild an accepted job from its journaled description."""
        return cls(
            tenant=d["tenant"],
            source=tuple(d["source"]),
            sink=tuple(d["sink"]),
            priority=int(d.get("priority", 0)),
            deadline_ms=d.get("deadline_ms"),
            job_id=d["job_id"],
        )

    def describe(self) -> dict:
        """Client-facing status document."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state.value,
            "priority": self.priority,
            "attempts": self.attempts,
            "result": self.result,
        }
