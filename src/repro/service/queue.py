"""Bounded priority admission: shed load fast, never buffer unboundedly.

The queue is the service's overload policy made concrete.  Admission can
fail three ways, each with a distinct reason and a ``retry_after`` hint
the HTTP layer turns into a 429 + ``Retry-After`` header:

* ``shed`` — total queued depth hit ``max_depth``.  The alternative,
  unbounded buffering, converts overload into unbounded latency and an
  OOM kill; a fast rejection lets a well-behaved client back off
  (see :meth:`~repro.core.recovery.RetryPolicy.backoff_for`).
* ``quota`` — one tenant holds ``tenant_quota`` outstanding (queued +
  in-flight) jobs; refusing the hog protects everyone else's latency.
* ``draining`` — the service is shutting down gracefully.

Re-admission after a worker loss (:meth:`AdmissionQueue.requeue`)
deliberately bypasses the depth check: those jobs were *already
accepted* — journaled, promised — and dropping them would violate the
zero-lost-jobs invariant.  The bound still holds in expectation because
requeues only recycle depth that admission already granted.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from threading import Condition, Lock

from .jobs import Job

__all__ = ["Admission", "AdmissionQueue"]


@dataclass(frozen=True, slots=True)
class Admission:
    """Outcome of one admission attempt."""

    accepted: bool
    reason: str | None = None       #: "shed" | "quota" | "draining"
    retry_after: float = 0.0        #: seconds; client backoff hint


class AdmissionQueue:
    """Thread-safe bounded priority queue with per-tenant quotas.

    Higher ``priority`` dequeues first; FIFO within a priority class
    (heap ties broken by a monotone sequence).  Delayed re-enqueues
    (retry backoff) sit in a side heap keyed by ready-time and migrate
    into the main heap as they mature.
    """

    def __init__(
        self,
        *,
        max_depth: int = 256,
        tenant_quota: int = 64,
        retry_after: float = 0.5,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.tenant_quota = tenant_quota
        self.retry_after = retry_after
        self._lock = Lock()
        self._ready = Condition(self._lock)
        self._heap: list[tuple[int, int, Job]] = []
        self._delayed: list[tuple[float, int, Job]] = []
        self._seq = itertools.count()
        self._outstanding: dict[str, int] = {}
        self._draining = False
        self.shed = 0
        self.quota_refused = 0

    # -- admission -----------------------------------------------------------

    def offer(self, job: Job) -> Admission:
        """Admit a *new* job, or refuse it with a reason and a hint."""
        with self._lock:
            if self._draining:
                return Admission(False, "draining", self.retry_after)
            if len(self._heap) + len(self._delayed) >= self.max_depth:
                self.shed += 1
                return Admission(False, "shed", self.retry_after)
            if self._outstanding.get(job.tenant, 0) >= self.tenant_quota:
                self.quota_refused += 1
                return Admission(False, "quota", self.retry_after)
            self._outstanding[job.tenant] = (
                self._outstanding.get(job.tenant, 0) + 1
            )
            self._push(job)
            return Admission(True)

    def requeue(self, job: Job, *, delay: float = 0.0) -> None:
        """Re-admit an already-accepted job (worker loss / restart).

        Never refused: the job's acceptance was journaled and its quota
        slot is still held.  A positive ``delay`` parks it in the
        retry heap so backoff jitter desynchronizes the herd.
        """
        with self._lock:
            if job.tenant not in self._outstanding:
                # restart recovery path: quota slot was lost with the process
                self._outstanding[job.tenant] = 1
            if delay > 0.0:
                heapq.heappush(
                    self._delayed,
                    (time.monotonic() + delay, next(self._seq), job),
                )
                self._ready.notify()
            else:
                self._push(job)

    def _push(self, job: Job) -> None:
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
        self._ready.notify()

    # -- consumption ---------------------------------------------------------

    def take(self, max_n: int, timeout: float) -> list[Job]:
        """Up to ``max_n`` ready jobs; waits ``timeout`` for the first."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while True:
                self._mature()
                if self._heap:
                    out: list[Job] = []
                    while self._heap and len(out) < max_n:
                        out.append(heapq.heappop(self._heap)[2])
                    return out
                now = time.monotonic()
                wait = deadline - now
                if wait <= 0:
                    return []
                if self._delayed:
                    wait = min(wait, self._delayed[0][0] - now)
                self._ready.wait(max(wait, 0.001))

    def _mature(self) -> None:
        now = time.monotonic()
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            self._push(job)

    # -- lifecycle accounting ------------------------------------------------

    def release(self, tenant: str) -> None:
        """A job of ``tenant`` went terminal: free its quota slot."""
        with self._lock:
            n = self._outstanding.get(tenant, 0)
            if n <= 1:
                self._outstanding.pop(tenant, None)
            else:
                self._outstanding[tenant] = n - 1

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True
            self._ready.notify_all()

    def depth(self) -> int:
        with self._lock:
            return len(self._heap) + len(self._delayed)

    def outstanding(self, tenant: str | None = None) -> int:
        with self._lock:
            if tenant is not None:
                return self._outstanding.get(tenant, 0)
            return sum(self._outstanding.values())
