"""Load generation and invariant auditing for the routing daemon.

Shared by the E20 experiment (:func:`repro.bench.experiments.run_e20`)
and ``benchmarks/bench_e20_service.py`` so the CI gate and the
experiment table measure the same thing: concurrent clients driving the
HTTP front door, and an after-the-fact audit of the job journal proving
the service's one hard invariant — **every accepted job reached a
terminal state exactly once** — held through whatever the run threw at
it (overload, worker kills, stalls, WAL truncation).
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import threading
import time
from dataclasses import dataclass, field

from .client import ServiceClient
from .journal import iter_journal
from .server import RoutingService
from .supervisor import ServiceConfig

__all__ = ["LoadReport", "drive_load", "burst", "await_terminal",
           "audit_journal", "percentile", "running_service"]


@contextlib.contextmanager
def running_service(config: ServiceConfig, data_dir: str, *,
                    drain_timeout: float = 60.0):
    """Boot a :class:`RoutingService` on its own event-loop thread.

    Yields the service (``svc.port`` is the ephemeral listen port);
    drains it gracefully on exit — after which the journal audit must
    show every accepted job terminal.
    """
    svc = RoutingService(config, data_dir)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    async def _boot() -> None:
        await svc.start()
        started.set()
        await svc.serve_forever()

    def _run() -> None:
        try:
            loop.run_until_complete(_boot())
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="svc-loop", daemon=True)
    thread.start()
    if not started.wait(60.0):
        raise RuntimeError("service failed to start listening")
    try:
        yield svc
    finally:
        fut = asyncio.run_coroutine_threadsafe(
            svc.drain(drain_timeout), loop
        )
        with contextlib.suppress(Exception):
            fut.result(drain_timeout + 15.0)
        thread.join(timeout=10.0)


def percentile(xs: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not xs:
        return 0.0
    ordered = sorted(xs)
    k = min(len(ordered) - 1, max(0, int(round(q / 100.0 * len(ordered))) - 1))
    return ordered[k]


@dataclass
class LoadReport:
    """What one load phase saw from the client side."""

    submitted: int = 0
    succeeded: int = 0
    failed: int = 0
    rejected: int = 0
    errors: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return self.succeeded + self.failed

    @property
    def rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def p(self, q: float) -> float:
        return percentile(self.latencies_s, q)

    def row(self) -> str:
        return (
            f"{self.completed}/{self.submitted} done "
            f"({self.succeeded} ok, {self.failed} failed, "
            f"{self.rejected} shed), {self.rps:.1f} req/s, "
            f"p50 {self.p(50) * 1e3:.0f} ms, p99 {self.p(99) * 1e3:.0f} ms"
        )


def drive_load(
    host: str,
    port: int,
    pairs: list[tuple[tuple, tuple]],
    *,
    threads: int = 4,
    tenants: int = 3,
    deadline_ms: float | None = None,
    use_retry: bool = True,
) -> LoadReport:
    """Drive ``pairs`` through concurrent blocking clients, waiting each
    job to its terminal state; per-job latency is submit→terminal."""
    report = LoadReport()
    lock = threading.Lock()
    it = iter(list(enumerate(pairs)))

    def one_client() -> None:
        client = ServiceClient(host, port)
        try:
            while True:
                with lock:
                    nxt = next(it, None)
                if nxt is None:
                    return
                i, (src, sink) = nxt
                t0 = time.monotonic()
                try:
                    submit = (
                        client.submit_with_retry if use_retry
                        else client.submit
                    )
                    status, doc = submit(
                        src, sink, tenant=f"tenant-{i % tenants}",
                        deadline_ms=deadline_ms, wait=True,
                    )
                except Exception:  # repro: noqa RPR006  (chaos load: any client error is a counted outcome, never a crash)
                    with lock:
                        report.errors += 1
                    continue
                dt = time.monotonic() - t0
                with lock:
                    report.submitted += 1
                    if status in (200, 202):
                        report.latencies_s.append(dt)
                        if doc.get("state") == "succeeded":
                            report.succeeded += 1
                        else:
                            report.failed += 1
                    else:
                        report.rejected += 1
        finally:
            client.close()

    t0 = time.monotonic()
    pool = [
        threading.Thread(target=one_client, daemon=True)
        for _ in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    report.wall_s = time.monotonic() - t0
    return report


def burst(
    host: str,
    port: int,
    pairs: list[tuple[tuple, tuple]],
    *,
    tenant: str = "burst",
) -> tuple[list[str], int]:
    """Fire-and-forget submissions as fast as one connection can go.

    Returns ``(accepted_job_ids, rejected_count)`` — the overload phase
    expects rejections: a burst larger than the queue bound must come
    back 429, not queue unboundedly.
    """
    client = ServiceClient(host, port)
    accepted: list[str] = []
    rejected = 0
    try:
        for src, sink in pairs:
            status, doc = client.submit(src, sink, tenant=tenant)
            if status == 202:
                accepted.append(doc["job_id"])
            else:
                rejected += 1
    finally:
        client.close()
    return accepted, rejected


def await_terminal(
    host: str,
    port: int,
    job_ids: list[str],
    *,
    timeout: float = 120.0,
) -> dict[str, str]:
    """Poll every job to a terminal state; returns job_id → state."""
    client = ServiceClient(host, port)
    states: dict[str, str] = {}
    try:
        for jid in job_ids:
            doc = client.wait_job(jid, timeout=timeout)
            states[jid] = doc["state"]
    finally:
        client.close()
    return states


def audit_journal(path: str) -> dict:
    """The zero-lost-jobs audit over a (possibly live) job journal.

    * ``lost`` — accepted jobs with no terminal record;
    * ``duplicates`` — jobs with more than one terminal record (an
      exactly-once violation);
    * ``drained`` — the clean-shutdown marker was written.
    """
    events, torn = iter_journal(path)
    accepted: set[str] = set()
    terminal = collections.Counter()
    drained = False
    for ev in events:
        kind = ev.get("ev")
        if kind == "accepted":
            accepted.add(ev["job"]["job_id"])
        elif kind == "terminal":
            terminal[ev["job_id"]] += 1
        elif kind == "drain":
            drained = True
    lost = sorted(accepted - set(terminal))
    duplicates = sorted(j for j, n in terminal.items() if n > 1)
    return {
        "accepted": len(accepted),
        "terminal": len(terminal),
        "lost": lost,
        "duplicates": duplicates,
        "torn": torn,
        "drained": drained,
    }
