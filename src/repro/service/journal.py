"""The job journal: accepted/terminal events, durable before dispatch.

The PIP :class:`~repro.core.wal.WriteAheadLog` makes *device* state
durable; this journal makes the *promise to the client* durable.  A job
is appended as ``accepted`` before its admission response leaves the
process, and as ``terminal`` when (and only when) :meth:`Job.finish`
performs the exactly-once transition.  A ``kill -9`` at any byte offset
therefore loses zero accepted jobs: on restart,
:func:`recover_jobs` replays the journal and returns every accepted job
with no terminal record, and the supervisor re-enqueues them.

Same framing discipline as the PIP WAL — one CRC-framed JSON object per
line, a torn tail (the half-written line of a crash) detected and
ignored — so the PR 5 artifact linter's WAL rules apply unchanged.
"""

from __future__ import annotations

import json
import os
import zlib
from threading import Lock

from .jobs import Job, JobState

__all__ = ["JobJournal", "iter_journal", "recover_jobs"]

JOURNAL_VERSION = 1


def _crc(payload: dict) -> int:
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode("ascii"))


def _frame(payload: dict) -> str:
    frame = dict(payload)
    frame["crc"] = _crc(payload)
    return json.dumps(frame, sort_keys=True) + "\n"


def _trim_torn_tail(path: str) -> None:
    """Drop an unterminated last line before resume-appending.

    A crash mid-append leaves a partial line with no newline; appending
    after it would weld the next record onto the torn one, turning a
    tolerated torn *tail* into mid-file corruption that the scanner
    correctly refuses as tampering.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return
    with open(path, "rb+") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return
        fh.seek(0)
        data = fh.read()
        keep = data.rfind(b"\n") + 1  # 0 when no newline at all
        fh.truncate(keep)


class JobJournal:
    """Append-only accepted/terminal log with size-triggered compaction.

    Normal operation only ever appends; :meth:`compact` (driven by the
    supervisor when :meth:`size` crosses a threshold) atomically
    rewrites the file keeping just the open promises, so a long-lived
    daemon's journal stays bounded instead of growing forever.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = Lock()
        _trim_torn_tail(path)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._bytes = 0 if fresh else os.path.getsize(path)
        self._fh = open(path, "a", encoding="ascii")
        if fresh:
            self._write({"jobwal": JOURNAL_VERSION})

    def _write(self, payload: dict) -> None:
        line = _frame(payload)
        self._fh.write(line)
        self._fh.flush()
        self._bytes += len(line)

    def accepted(self, job: Job) -> None:
        with self._lock:
            self._write({"ev": "accepted", "job": job.to_wire()})

    def terminal(self, job: Job) -> None:
        with self._lock:
            self._write(
                {
                    "ev": "terminal",
                    "job_id": job.job_id,
                    "state": job.state.value,
                }
            )

    def drained(self) -> None:
        """Mark a graceful drain: everything accepted has gone terminal."""
        with self._lock:
            self._write({"ev": "drain"})

    def size(self) -> int:
        """Bytes appended so far (compaction trigger input)."""
        with self._lock:
            return self._bytes

    def compact(self) -> dict:
        """Atomically rewrite the journal keeping only open promises.

        Replays the file under the lock (writers are quiescent), keeps
        the ``accepted`` frames of jobs with no terminal record — the
        only records :func:`recover_jobs` needs — plus any drain
        marker, writes them to a temp file (flush + fsync + rename) and
        resumes appending.  Settled jobs' accepted/terminal history is
        dropped: bounded disk beats a full audit trail for a long-lived
        daemon (audits that need the full history run with compaction
        disabled).  Returns ``{"kept": .., "dropped": ..}``.
        """
        with self._lock:
            self._fh.flush()
            events, _torn = iter_journal(self.path)
            accepted: dict[str, dict] = {}
            terminal: set[str] = set()
            drained = False
            for ev in events:
                kind = ev.get("ev")
                if kind == "accepted":
                    accepted[ev["job"]["job_id"]] = ev
                elif kind == "terminal":
                    terminal.add(ev["job_id"])
                elif kind == "drain":
                    drained = True
            live = [
                ev for jid, ev in accepted.items() if jid not in terminal
            ]
            lines = [_frame({"jobwal": JOURNAL_VERSION})]
            lines += [_frame(ev) for ev in live]
            if drained:
                lines.append(_frame({"ev": "drain"}))
            tmp = self.path + ".compact"
            with open(tmp, "w", encoding="ascii") as fh:
                fh.write("".join(lines))
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = open(self.path, "a", encoding="ascii")
            self._bytes = os.path.getsize(self.path)
            return {"kept": len(live), "dropped": len(terminal)}

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_journal(path: str) -> tuple[list[dict], bool]:
    """All intact events in ``path``; ``torn`` flags a damaged tail.

    Only a *trailing* damaged record is tolerated (the signature of a
    crash mid-append); corruption followed by intact records means the
    file was tampered with and raises.
    """
    events: list[dict] = []
    torn = False
    if not os.path.exists(path):
        return events, torn
    with open(path, encoding="ascii", errors="replace") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        try:
            frame = json.loads(line)
            crc = frame.pop("crc")
            ok = crc == _crc(frame)
        except (ValueError, KeyError, TypeError):
            ok = False
        if not ok:
            if i != len(lines) - 1:
                raise ValueError(
                    f"{path}: corrupt record at line {i + 1} is not the tail"
                )
            torn = True
            break
        events.append(frame)
    return events, torn


def recover_jobs(path: str) -> tuple[list[Job], dict]:
    """Jobs accepted but not terminal, plus accounting for the report.

    Returns ``(orphans, stats)`` where ``orphans`` are rebuilt
    :class:`~repro.service.jobs.Job` objects ready to re-enqueue and
    ``stats`` counts ``accepted`` / ``terminal`` / ``torn`` / ``drained``
    for the recovery log line.
    """
    events, torn = iter_journal(path)
    accepted: dict[str, dict] = {}
    terminal: set[str] = set()
    drained = False
    for ev in events:
        kind = ev.get("ev")
        if kind == "accepted":
            job = ev["job"]
            accepted[job["job_id"]] = job
        elif kind == "terminal":
            terminal.add(ev["job_id"])
        elif kind == "drain":
            drained = True
    orphans = [
        Job.from_wire(d)
        for jid, d in accepted.items()
        if jid not in terminal
    ]
    for job in orphans:
        job.state = JobState.QUEUED
    stats = {
        "accepted": len(accepted),
        "terminal": len(terminal),
        "orphans": len(orphans),
        "torn": torn,
        "drained": drained,
    }
    return orphans, stats
