"""The worker-pool supervisor: scheduling, liveness, exactly-once results.

Three daemon threads around a pool of spawned worker processes:

* **dispatcher** — drains the admission queue, coalesces up to
  ``batch_max`` compatible p2p jobs (one device part → always
  compatible) into one ``route_p2p_batch`` message, and hands it to an
  idle worker.  Jobs whose deadline expired while queued are failed
  here, without wasting a worker.
* **collector** — the only reader of the shared response queue.  Every
  message refreshes the sender's liveness stamp (judged by *this*
  process's monotonic clock — cross-process clock comparison is exactly
  the kind of hazard ``RPR002`` exists for); ``done`` results walk each
  job through its exactly-once :meth:`~repro.service.jobs.Job.finish`.
* **monitor** — kills (SIGKILL) any worker whose last message is older
  than the miss window, re-enqueues its in-flight jobs (idempotent:
  the respawned worker recovers its WAL shard, so a re-executed job's
  already-routed sink is a 0-PIP no-op), and respawns it.  Jobs that
  exhaust ``job_max_attempts`` worker losses go terminal ``failed``
  rather than cycling forever.

Failure classes seen by clients:

* ``timeout`` — the job's deadline expired (queued or mid-search).
  Counts against the tenant's circuit breaker.
* ``retryable`` — the worker died mid-route; re-enqueued with seeded
  jittered backoff (:meth:`~repro.core.recovery.RetryPolicy.backoff_for`)
  until attempts run out.
* ``permanent`` — unroutable / contention / fault; retrying cannot help.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue
import signal
import time
from dataclasses import dataclass, field
from threading import Condition, Event, Lock, Thread
from typing import Callable

from ..core.recovery import CircuitBreaker, RetryPolicy
from .jobs import Job, JobState
from .journal import JobJournal, recover_jobs
from .queue import Admission, AdmissionQueue
from .worker import worker_main

__all__ = ["ServiceConfig", "RoutingSupervisor"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every service knob in one frozen, test-friendly bag."""

    part: str = "XCV50"
    workers: int = 2
    queue_depth: int = 256
    tenant_quota: int = 64
    retry_after_s: float = 0.5
    batch_max: int = 16
    batch_linger_s: float = 0.02
    heartbeat_s: float = 0.25
    #: liveness miss window, in heartbeat periods
    heartbeat_misses: float = 8.0
    job_max_attempts: int = 3
    #: liveness grace after a (re)spawn: recovery of a large WAL shard
    #: emits no heartbeats, and killing a booting worker would loop
    boot_grace_s: float = 20.0
    #: backoff for worker-loss re-enqueues (seeded jitter desynchronizes
    #: the re-dispatch herd after a crash takes out a full batch)
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            backoff_base=0.05, backoff_cap=1.0, jitter_seed=0x5E41CE
        )
    )
    breaker_trips: int = 5
    breaker_cooldown_s: float = 2.0
    #: deadline applied to jobs that do not bring their own
    default_deadline_ms: float | None = 5000.0
    worker_max_nodes: int = 50_000
    checkpoint_every: int | None = 256
    #: terminal jobs stay queryable (GET /jobs/ID) this long, then are
    #: evicted from the in-memory table; None retains them forever
    job_ttl_s: float | None = 300.0
    #: compact the job journal when it outgrows this; None disables
    #: (e.g. for audits that need the full accepted/terminal history)
    journal_max_bytes: int | None = 16 << 20

    @property
    def liveness_timeout_s(self) -> float:
        return self.heartbeat_s * self.heartbeat_misses


class _Worker:
    """Supervisor-side view of one worker process."""

    __slots__ = (
        "wid", "proc", "req_q", "ready", "busy", "last_seen",
        "in_flight", "restarts", "restarting", "wal_path",
    )

    def __init__(self, wid: int, wal_path: str) -> None:
        self.wid = wid
        self.wal_path = wal_path
        self.proc = None
        self.req_q = None
        self.ready = False
        self.busy = False
        self.last_seen = 0.0
        self.in_flight: dict[str, Job] = {}
        self.restarts = 0
        #: a kill/respawn cycle is in progress; concurrent kill_worker
        #: calls for this wid become no-ops instead of double-respawning
        self.restarting = False


class RoutingSupervisor:
    """Owns the queue, the journal, the breaker, and the worker pool."""

    def __init__(self, config: ServiceConfig, data_dir: str) -> None:
        self.config = config
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.queue = AdmissionQueue(
            max_depth=config.queue_depth,
            tenant_quota=config.tenant_quota,
            retry_after=config.retry_after_s,
        )
        self.journal = JobJournal(os.path.join(data_dir, "jobs.journal"))
        self.breaker = CircuitBreaker(
            config.breaker_trips, cooldown_s=config.breaker_cooldown_s
        )
        self.jobs: dict[str, Job] = {}
        self._mp = multiprocessing.get_context("spawn")
        self.res_q = self._mp.Queue()
        self._workers = [
            _Worker(i, os.path.join(data_dir, f"worker{i}.wal"))
            for i in range(config.workers)
        ]
        self._wlock = Lock()
        self._idle = Condition(self._wlock)
        self._stop = Event()
        self._draining = False
        self._threads: list[Thread] = []
        self._open_jobs = 0
        self._done = Condition(Lock())
        self.counters = {
            "accepted": 0, "succeeded": 0, "failed": 0, "rejected": 0,
            "requeued": 0, "worker_restarts": 0, "recovered_orphans": 0,
            "timeouts": 0, "batches": 0, "evicted": 0, "compactions": 0,
            "compaction_errors": 0,
        }
        self._clock = Lock()  # counters guard

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> dict:
        """Recover orphaned jobs, spawn the pool, start the threads."""
        orphans, jstats = recover_jobs(self.journal.path)
        for job in orphans:
            self._adopt(job)
            self.queue.requeue(job)
        if orphans:
            self._bump("recovered_orphans", len(orphans))
        for w in self._workers:
            self._spawn(w)
        for name, fn in (
            ("dispatcher", self._dispatch_loop),
            ("collector", self._collect_loop),
            ("monitor", self._monitor_loop),
        ):
            t = Thread(target=fn, name=f"svc-{name}", daemon=True)
            t.start()
            self._threads.append(t)
        return jstats

    def _spawn(self, w: _Worker) -> None:
        cfg = self.config
        w.req_q = self._mp.Queue()
        w.ready = False
        w.busy = False
        w.proc = self._mp.Process(
            target=worker_main,
            args=(w.wid, w.req_q, self.res_q),
            kwargs=dict(
                part=cfg.part,
                wal_path=w.wal_path,
                heartbeat_s=cfg.heartbeat_s,
                deadline_ms=cfg.default_deadline_ms,
                checkpoint_every=cfg.checkpoint_every,
            ),
            daemon=True,
        )
        w.proc.start()
        w.last_seen = time.monotonic() + self.config.boot_grace_s

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        tenant: str,
        source: tuple[int, int, int],
        sink: tuple[int, int, int],
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> tuple[Admission, Job]:
        """Admit one job, or reject it fast with a retry-after hint.

        An accepted job is journaled *before* this returns: once the
        client sees the job id, a ``kill -9`` cannot lose the job.
        """
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        job = Job(
            tenant=tenant,
            source=source,
            sink=sink,
            priority=priority,
            deadline_ms=deadline_ms,
        )
        if self._draining:
            adm = Admission(False, "draining", self.config.retry_after_s)
        elif self.breaker.is_open(tenant):
            adm = Admission(False, "breaker", self.breaker.retry_after(tenant))
        else:
            adm = self.queue.offer(job)
        if not adm.accepted:
            if adm.reason != "breaker":
                # if this job was the tenant's half-open probe, admission
                # refused it before it could prove anything — return the
                # probe or the breaker stays half-open forever (no-op
                # when no probe is out)
                self.breaker.probe_abort(tenant)
            self._bump("rejected")
            job.finish(
                JobState.REJECTED, reason=adm.reason,
                retry_after=adm.retry_after,
            )
            return adm, job
        self._adopt(job)
        self.journal.accepted(job)
        self._bump("accepted")
        return adm, job

    def _adopt(self, job: Job) -> None:
        self.jobs[job.job_id] = job
        with self._done:
            self._open_jobs += 1
        job.add_done_callback(self._on_terminal)

    def _on_terminal(self, job: Job) -> None:
        self.journal.terminal(job)
        self.queue.release(job.tenant)
        if (
            job.state is JobState.FAILED
            and job.result.get("error_class") != "timeout"
        ):
            # permanent / retry-exhausted failures say nothing about the
            # congestion that opened the breaker, but they must still
            # resolve an outstanding half-open probe (timeouts resolve
            # theirs via record_trip, successes via record_success)
            self.breaker.probe_abort(job.tenant)
        self._bump(
            "succeeded" if job.state is JobState.SUCCEEDED else "failed"
        )
        with self._done:
            self._open_jobs -= 1
            self._done.notify_all()

    def _bump(self, key: str, n: int = 1) -> None:
        with self._clock:
            self.counters[key] += n

    # -- dispatcher ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        cfg = self.config
        while not self._stop.is_set():
            jobs = self.queue.take(1, timeout=0.05)
            if not jobs:
                continue
            # coalesce: linger briefly to fill the batch
            jobs += self.queue.take(cfg.batch_max - 1, cfg.batch_linger_s)
            live: list[Job] = []
            for job in jobs:
                if job.expired():
                    self._fail_timeout(job, "deadline expired in queue")
                elif job.mark_dispatched():
                    live.append(job)
            if not live:
                continue
            w = self._acquire_idle()
            if w is None:  # stopping; put them back for a later drain pass
                for job in live:
                    if job.mark_requeued():
                        self.queue.requeue(job)
                continue
            with self._wlock:
                w.in_flight = {j.job_id: j for j in live}
            w.req_q.put(("batch", [j.to_wire() for j in live]))
            self._bump("batches")

    def _acquire_idle(self):
        with self._idle:
            while not self._stop.is_set():
                for w in self._workers:
                    if w.ready and not w.busy:
                        w.busy = True
                        return w
                self._idle.wait(0.1)
        return None

    def _fail_timeout(self, job: Job, why: str) -> None:
        if job.finish(JobState.FAILED, error=why, error_class="timeout"):
            self._bump("timeouts")
            self.breaker.record_trip(job.tenant)

    # -- collector -----------------------------------------------------------

    def _collect_loop(self) -> None:
        while not self._stop.is_set():
            try:
                msg = self.res_q.get(timeout=0.1)
            except _queue.Empty:
                continue
            kind, wid = msg[0], msg[1]
            w = self._workers[wid]
            w.last_seen = time.monotonic()
            if kind == "ready":
                with self._idle:
                    w.ready = True
                    w.busy = False
                    self._idle.notify_all()
            elif kind == "done":
                self._absorb_results(w, msg[2])

    def _absorb_results(self, w: _Worker, results: list[tuple]) -> None:
        with self._wlock:
            in_flight, w.in_flight = w.in_flight, {}
        for job_id, ok, pips, method, err in results:
            job = in_flight.pop(job_id, None) or self.jobs.get(job_id)
            if job is None:  # pragma: no cover - unknown id, late duplicate
                continue
            if ok:
                if job.finish(
                    JobState.SUCCEEDED, pips_added=pips, method=method
                ):
                    self.breaker.record_success(job.tenant)
            elif err is not None and "abandoned" in err:
                if job.expired():
                    self._fail_timeout(job, err)
                else:
                    # the shared (grouped) batch clamp ran out, not this
                    # job's own deadline — the promise still stands:
                    # re-enqueue with backoff instead of charging the
                    # tenant's breaker for a timeout it never earned
                    self._requeue_lost(job)
            else:
                job.finish(
                    JobState.FAILED, error=err or "routing failed",
                    error_class="permanent",
                )
        with self._idle:
            w.busy = False
            self._idle.notify_all()

    # -- monitor -------------------------------------------------------------

    def _monitor_loop(self) -> None:
        cfg = self.config
        while not self._stop.wait(cfg.heartbeat_s):
            now = time.monotonic()
            for w in self._workers:
                if w.proc is None or w.restarting:
                    continue
                dead = w.proc.exitcode is not None
                stale = now - w.last_seen > cfg.liveness_timeout_s
                if dead or stale:
                    self.kill_worker(w.wid, reason="dead" if dead else "hung")
            self._enforce_bounds(now)

    def _enforce_bounds(self, now: float) -> None:
        """Keep the job table and the journal from growing forever."""
        cfg = self.config
        if cfg.job_ttl_s is not None:
            cutoff = now - cfg.job_ttl_s
            evicted = 0
            for jid, job in list(self.jobs.items()):
                if (
                    job.state.terminal
                    and job.finished_at is not None
                    and job.finished_at <= cutoff
                ):
                    self.jobs.pop(jid, None)
                    evicted += 1
            if evicted:
                self._bump("evicted", evicted)
        if (
            cfg.journal_max_bytes is not None
            and self.journal.size() > cfg.journal_max_bytes
        ):
            try:
                self.journal.compact()
            except (OSError, ValueError):
                # a damaged or unwritable journal: appends still work (or
                # fail loudly in submit); surface via the stats counter
                # and retry on the next monitor tick
                self._bump("compaction_errors")
            else:
                self._bump("compactions")

    def kill_worker(
        self,
        wid: int,
        *,
        reason: str = "chaos",
        mutate: Callable[[str], None] | None = None,
    ) -> None:
        """SIGKILL a worker, re-enqueue its jobs, respawn it.

        ``mutate`` runs between the kill and the respawn with the
        worker's WAL shard path — the chaos harness uses it to truncate
        the WAL tail and prove recovery shrugs off torn writes.

        Reentrancy-safe: the monitor (which sees ``exitcode`` flip the
        instant anyone SIGKILLs the process) can race a chaos or drain
        caller on the same wid.  Only the first caller kills and
        respawns; a concurrent second call is a no-op — two respawns
        would leave two live processes appending to one WAL shard, and
        the recovery scanner rejects their interleaved frames as
        tampering.
        """
        w = self._workers[wid]
        with self._wlock:
            if w.restarting:
                return
            w.restarting = True
            proc, w.ready, w.busy = w.proc, False, True
            in_flight, w.in_flight = w.in_flight, {}
        try:
            if proc is not None and proc.exitcode is None:
                os.kill(proc.pid, signal.SIGKILL)
            if proc is not None:
                proc.join(timeout=10.0)
            for job in in_flight.values():
                self._requeue_lost(job)
            if mutate is not None:
                mutate(w.wal_path)
            if not self._stop.is_set():
                w.restarts += 1
                self._bump("worker_restarts")
                self._spawn(w)
        finally:
            with self._wlock:
                w.restarting = False

    def _requeue_lost(self, job: Job) -> None:
        """Idempotent re-enqueue of a job whose attempt went nowhere
        (worker lost, or abandoned by a shared clamp before its own
        deadline)."""
        if job.expired():
            self._fail_timeout(job, "deadline expired during worker loss")
            return
        if job.attempts >= self.config.job_max_attempts:
            job.finish(
                JobState.FAILED,
                error=f"worker lost {job.attempts}x, giving up",
                error_class="retryable",
            )
            return
        if job.mark_requeued():
            delay = self.config.retry.backoff_for(
                job.attempts + 1, token=hash(job.job_id)
            )
            self.queue.requeue(job, delay=delay)
            self._bump("requeued")

    def send_chaos(self, wid: int, knobs: dict) -> bool:
        """Forward a chaos knob dict to a live worker (test hook)."""
        w = self._workers[wid]
        if w.proc is None or w.proc.exitcode is not None:
            return False
        w.req_q.put(("chaos", dict(knobs)))
        return True

    # -- drain / stop --------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> bool:
        """SIGTERM semantics: stop admitting, finish everything, stop.

        Returns True when every accepted job reached a terminal state
        before the timeout (and journals the clean-drain marker); False
        leaves the journal un-marked so the next start re-enqueues the
        stragglers — either way nothing is lost.
        """
        self._draining = True
        self.queue.start_draining()
        deadline = time.monotonic() + timeout
        with self._done:
            while self._open_jobs > 0:
                left = deadline - time.monotonic()
                if left <= 0:
                    break
                self._done.wait(min(left, 0.2))
            clean = self._open_jobs == 0
        if clean:
            self.journal.drained()
        self.stop()
        return clean

    def stop(self) -> None:
        """Stop threads and workers; accepted jobs stay journaled."""
        self._stop.set()
        with self._idle:
            self._idle.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)
        for w in self._workers:
            if w.proc is not None and w.proc.exitcode is None:
                try:
                    w.req_q.put(("stop",))
                    w.proc.join(timeout=5.0)
                finally:
                    if w.proc.exitcode is None:
                        w.proc.kill()
                        w.proc.join(timeout=5.0)
        self.journal.close()

    # -- views ---------------------------------------------------------------

    def stats(self) -> dict:
        with self._clock:
            counters = dict(self.counters)
        counters["queue_depth"] = self.queue.depth()
        counters["queue_shed"] = self.queue.shed
        counters["quota_refused"] = self.queue.quota_refused
        counters["open_jobs"] = self._open_jobs
        counters["jobs_tracked"] = len(self.jobs)
        counters["journal_bytes"] = self.journal.size()
        counters["workers"] = [
            {
                "wid": w.wid,
                "alive": w.proc is not None and w.proc.exitcode is None,
                "ready": w.ready,
                "busy": w.busy,
                "restarts": w.restarts,
            }
            for w in self._workers
        ]
        counters["open_breakers"] = self.breaker.open_nets()
        return counters

    def get_job(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)
