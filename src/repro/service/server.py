"""The asyncio HTTP/1.1 front door (``repro serve``).

A deliberately small, dependency-free HTTP layer: parse a request line,
headers and a ``Content-Length`` body; answer JSON; keep-alive until the
client closes.  The interesting part is what it does *not* do:

* **No blocking work on the event loop.**  Admission journals to disk,
  so every submit hops to a worker thread via :func:`asyncio.to_thread`;
  waiting for a job rides the job's done-callback through
  ``loop.call_soon_threadsafe`` into a future, so ten thousand waiters
  cost ten thousand futures, not ten thousand blocked threads.
  Codelint rule ``RPR008`` (blocking-call-in-async) keeps it that way.
* **No unbounded buffering.**  Overload answers ``429`` with a
  ``Retry-After`` header the moment admission refuses — the queue's
  depth bound is the only buffer.

Routes::

    POST /route    {tenant, source, sink, priority?, deadline_ms?, wait?}
                   → 202 {job_id} | 200 (wait=true, terminal doc)
                   → 429 + Retry-After (shed/quota/breaker/draining)
    GET  /jobs/ID  → job status document (404 unknown)
    GET  /stats    → counters, queue depth, worker liveness
    GET  /healthz  → 200 while serving, 503 while draining
    POST /drain    → graceful drain (also wired to SIGTERM)
"""

from __future__ import annotations

import asyncio
import json
import signal

from ..arch import wires
from .jobs import Job
from .supervisor import RoutingSupervisor, ServiceConfig

__all__ = ["RoutingService"]

_REASON_STATUS = {"shed": 429, "quota": 429, "breaker": 429, "draining": 503}


def _parse_pin(raw) -> tuple[int, int, int]:
    """``[row, col, wire]`` with the wire as canonical int or name."""
    if not isinstance(raw, (list, tuple)) or len(raw) != 3:
        raise ValueError(f"pin must be [row, col, wire], got {raw!r}")
    row, col, wire = raw
    if isinstance(wire, str):
        wire = wires.parse_wire_name(wire)
    return int(row), int(col), int(wire)


class RoutingService:
    """One supervisor behind one listening socket."""

    def __init__(
        self,
        config: ServiceConfig,
        data_dir: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config
        self.host = host
        self.port = port
        self.supervisor = RoutingSupervisor(config, data_dir)
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._drained = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain())
            )

    async def drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting, finish in-flight work, close the socket."""
        if self._draining:
            await self._drained.wait()
            return True
        self._draining = True
        clean = await asyncio.to_thread(self.supervisor.drain, timeout)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()
        return clean

    async def serve_forever(self) -> None:
        assert self._server is not None
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                request, _, header_blob = head.partition(b"\r\n")
                method, _, rest = request.decode("ascii").partition(" ")
                path = rest.split(" ", 1)[0]
                length = 0
                for line in header_blob.decode("ascii").split("\r\n"):
                    name, _, value = line.partition(":")
                    if name.strip().lower() == "content-length":
                        length = int(value.strip())
                body = await reader.readexactly(length) if length else b""
                status, payload, extra = await self._route(method, path, body)
                blob = json.dumps(payload).encode()
                headers = [
                    f"HTTP/1.1 {status} X",
                    "Content-Type: application/json",
                    f"Content-Length: {len(blob)}",
                ]
                headers += [f"{k}: {v}" for k, v in extra.items()]
                writer.write(
                    "\r\n".join(headers).encode() + b"\r\n\r\n" + blob
                )
                await writer.drain()
        finally:
            writer.close()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, dict]:
        try:
            if method == "POST" and path == "/route":
                return await self._post_route(body)
            if method == "GET" and path.startswith("/jobs/"):
                job = self.supervisor.get_job(path[len("/jobs/"):])
                if job is None:
                    return 404, {"error": "unknown job"}, {}
                return 200, job.describe(), {}
            if method == "GET" and path == "/stats":
                stats = await asyncio.to_thread(self.supervisor.stats)
                return 200, stats, {}
            if method == "GET" and path == "/healthz":
                if self._draining:
                    return 503, {"status": "draining"}, {}
                return 200, {"status": "ok"}, {}
            if method == "POST" and path == "/drain":
                asyncio.ensure_future(self.drain())
                return 202, {"status": "draining"}, {}
            return 404, {"error": f"no route for {method} {path}"}, {}
        except ValueError as e:
            return 400, {"error": str(e)}, {}

    async def _post_route(self, body: bytes) -> tuple[int, dict, dict]:
        try:
            req = json.loads(body or b"{}")
            tenant = str(req.get("tenant", "default"))
            source = _parse_pin(req["source"])
            sink = _parse_pin(req["sink"])
        except (KeyError, ValueError, TypeError) as e:
            return 400, {"error": f"bad request: {e}"}, {}
        adm, job = await asyncio.to_thread(
            self.supervisor.submit,
            tenant,
            source,
            sink,
            priority=int(req.get("priority", 0)),
            deadline_ms=req.get("deadline_ms"),
        )
        if not adm.accepted:
            status = _REASON_STATUS.get(adm.reason, 429)
            doc = {"job_id": job.job_id, "rejected": adm.reason}
            return status, doc, {"Retry-After": f"{adm.retry_after:.3f}"}
        if req.get("wait"):
            await self._wait_terminal(job)
            return 200, job.describe(), {}
        return 202, {"job_id": job.job_id, "state": job.state.value}, {}

    @staticmethod
    async def _wait_terminal(job: Job) -> None:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()

        def _done(_job: Job) -> None:
            # fires on a supervisor thread; hop back to the loop
            loop.call_soon_threadsafe(
                lambda: fut.done() or fut.set_result(None)
            )

        job.add_done_callback(_done)
        await fut
