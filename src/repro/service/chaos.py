"""Chaos harness: hostile conditions against a *live* service.

Four injections, all drawn from one seeded RNG so a chaos run is
reproducible end to end:

* **kill** — ``SIGKILL`` a random worker mid-batch.  The monitor must
  detect it, respawn it (which recovers the worker's WAL shard), and
  re-enqueue its in-flight jobs; the E20 gate then checks that every
  accepted job still reached a terminal state exactly once.
* **truncate** — between a kill and its respawn, chop bytes off the
  dead worker's WAL tail, forging the torn write of a crash at an
  arbitrary byte offset; recovery must shrug (the WAL scanner tolerates
  exactly this and nothing else).
* **stall** — tell a worker to sleep through its next batch.  No
  heartbeats flow while it sleeps, so the supervisor's miss window must
  fire and treat it as dead — hung and killed are the same failure.
* **fault flip** — swap the worker's device fault model for a seeded
  random one mid-flight, forcing searches to re-mask and proving a
  changing fabric does not wedge the pipeline.

The monkey never touches supervisor internals beyond its public
``kill_worker`` / ``send_chaos`` hooks, so everything it can do, an
operator's fat finger or a real fault could do too.
"""

from __future__ import annotations

import os
import random
import time
from threading import Event, Thread

from .supervisor import RoutingSupervisor

__all__ = ["ChaosMonkey", "truncate_tail"]


def truncate_tail(path: str, nbytes: int) -> int:
    """Chop up to ``nbytes`` off a file's tail; returns bytes removed."""
    if not os.path.exists(path):
        return 0
    size = os.path.getsize(path)
    cut = min(nbytes, max(0, size - 1))
    if cut > 0:
        with open(path, "rb+") as fh:
            fh.truncate(size - cut)
    return cut


class ChaosMonkey:
    """Injects failures on a cadence while load is running."""

    def __init__(
        self,
        supervisor: RoutingSupervisor,
        *,
        seed: int = 0,
        period_s: float = 0.5,
        kill: bool = True,
        stall_s: float = 0.0,
        truncate_bytes: int = 0,
        fault_rate: float | None = None,
    ) -> None:
        self.supervisor = supervisor
        self.rng = random.Random(seed)
        self.period_s = period_s
        self.kill = kill
        self.stall_s = stall_s
        self.truncate_bytes = truncate_bytes
        self.fault_rate = fault_rate
        self.events: list[dict] = []
        self._stop = Event()
        self._thread: Thread | None = None

    # -- single injections (also usable scripted, without the thread) --------

    def inject_kill(self, wid: int | None = None) -> dict:
        wid = self._pick(wid)
        mutate = None
        cut = self.truncate_bytes
        if cut > 0 and self.rng.random() < 0.5:

            def mutate(wal_path: str, _cut=cut) -> None:
                truncate_tail(wal_path, self.rng.randrange(1, _cut + 1))

        self.supervisor.kill_worker(wid, reason="chaos-kill", mutate=mutate)
        return self._log("kill", wid=wid, truncated=mutate is not None)

    def inject_stall(self, wid: int | None = None) -> dict:
        wid = self._pick(wid)
        ok = self.supervisor.send_chaos(wid, {"stall_s": self.stall_s})
        return self._log("stall", wid=wid, delivered=ok, stall_s=self.stall_s)

    def inject_fault_flip(self, wid: int | None = None) -> dict:
        wid = self._pick(wid)
        ok = self.supervisor.send_chaos(
            wid,
            {
                "fault_rate": self.fault_rate,
                "fault_seed": self.rng.randrange(1 << 16),
            },
        )
        return self._log("fault_flip", wid=wid, delivered=ok)

    def _pick(self, wid: int | None) -> int:
        if wid is None:
            wid = self.rng.randrange(self.supervisor.config.workers)
        return wid

    def _log(self, action: str, **detail) -> dict:
        ev = {"action": action, "t": time.monotonic(), **detail}
        self.events.append(ev)
        return ev

    # -- background cadence --------------------------------------------------

    def start(self) -> None:
        self._thread = Thread(target=self._run, name="chaos", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        actions = []
        if self.kill:
            actions.append(self.inject_kill)
        if self.stall_s > 0.0:
            actions.append(self.inject_stall)
        if self.fault_rate is not None:
            actions.append(self.inject_fault_flip)
        if not actions:
            return
        while not self._stop.wait(self.period_s):
            self.rng.choice(actions)()
