"""Process-worker entry point: one durable device session per worker.

Each worker owns a full :class:`~repro.core.router.JRouter` with its own
simulated device and a private WAL shard (``worker<N>.wal``).  On start
it *recovers* that shard if one exists — so a SIGKILL'd worker's respawn
resumes the same device state and re-executing its in-flight jobs is
idempotent (an already-routed sink is a 0-PIP no-op).

The control protocol is deliberately dumb — picklable tuples over two
``multiprocessing`` queues:

request queue (supervisor → worker)
    ``("batch", [job_wire, ...])`` — route the jobs, one
    :meth:`~repro.core.router.JRouter.route_p2p_batch` call.
    ``("chaos", {"stall_s": .., "fault_rate": ..})`` — test hooks.
    ``("stop",)`` — checkpoint and exit 0.

response queue (worker → supervisor)
    ``("ready", wid, pid)`` once at boot (after recovery),
    ``("hb", wid)`` heartbeats — emitted when the request queue is idle
    *and* before starting a batch, so a stalled batch is indistinguishable
    from a dead process and the monitor treats both the same way,
    ``("done", wid, [(job_id, ok, pips, method, error), ...])`` results.

Liveness is judged by the *supervisor's* clock on message arrival, never
by comparing timestamps across processes.
"""

from __future__ import annotations

import os
import queue as _queue
import time

from ..core.recovery import RetryPolicy
from ..core.router import JRouter
from ..core.wal import DurableSession, recover
from ..device.faults import FaultModel
from .jobs import Job

__all__ = ["worker_main", "execute_batch"]


def _pin(triple) -> "object":
    from ..core.endpoints import Pin

    row, col, wire = triple
    return Pin(int(row), int(col), int(wire))


#: jobs whose remaining budgets differ by more than this factor never
#: share a sub-batch: the group deadline is the group *minimum*, and
#: letting one nearly-expired job clamp batchmates with generous budgets
#: would fail them as timeouts their own deadlines never justified
BUDGET_SPREAD = 4.0


def _budget_groups(jobs: list[dict]) -> list[list[int]]:
    """Partition batch indices into deadline-compatible groups.

    Bounded jobs are bucketed so every member's remaining budget is
    within ``BUDGET_SPREAD``x of its group's minimum (a member can lose
    at most ``1 - 1/BUDGET_SPREAD`` of its budget to the shared clamp);
    unbounded jobs form their own group and keep the router's default.
    """
    bounded = sorted(
        (i for i, j in enumerate(jobs) if j.get("remaining_ms") is not None),
        key=lambda i: jobs[i]["remaining_ms"],
    )
    groups: list[list[int]] = []
    for i in bounded:
        if (
            groups
            and jobs[i]["remaining_ms"]
            <= jobs[groups[-1][0]]["remaining_ms"] * BUDGET_SPREAD
        ):
            groups[-1].append(i)
        else:
            groups.append([i])
    unbounded = [
        i for i, j in enumerate(jobs) if j.get("remaining_ms") is None
    ]
    if unbounded:
        groups.append(unbounded)
    return groups


def execute_batch(router: JRouter, jobs: list[dict]) -> list[tuple]:
    """Route one coalesced batch of job descriptions on ``router``.

    The per-job deadline budget that survived queueing bounds each
    *budget-compatible sub-batch* (see :func:`_budget_groups`): within a
    group the deadline is the minimum remaining budget, so no job can
    overstay its own promise, and a job on the edge of its deadline
    cannot starve batchmates whose deadlines are far away.  Returns one
    ``(job_id, ok, pips, method, error)`` tuple per job, request order.
    """
    saved = router.deadline_ms
    outcomes: list = [None] * len(jobs)
    try:
        for group in _budget_groups(jobs):
            remaining = [
                jobs[i]["remaining_ms"]
                for i in group
                if jobs[i].get("remaining_ms") is not None
            ]
            router.deadline_ms = (
                max(1.0, min(remaining)) if remaining else saved
            )
            pairs = [
                (_pin(jobs[i]["source"]), _pin(jobs[i]["sink"]))
                for i in group
            ]
            for i, out in zip(group, router.route_p2p_batch(pairs)):
                outcomes[i] = out
    finally:
        router.deadline_ms = saved
    results = []
    for j, out in zip(jobs, outcomes):
        err = None if out.error is None else str(out.error)
        results.append(
            (j["job_id"], out.success, out.pips_added, out.method, err)
        )
    return results


def build_worker_router(
    wal_path: str,
    *,
    part: str,
    deadline_ms: float | None,
    max_nodes: int = 50_000,
) -> tuple[JRouter, bool]:
    """Recover the shard's router if a WAL exists, else build it fresh."""
    kwargs = dict(
        part=part,
        deadline_ms=deadline_ms,
        max_nodes=max_nodes,
        retry=RetryPolicy(max_attempts=2),
    )
    if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
        router, _report = recover(wal_path, router_kwargs=kwargs)
        return router, True
    return JRouter(**kwargs), False


def worker_main(
    wid: int,
    req_q,
    res_q,
    *,
    part: str = "XCV50",
    wal_path: str,
    heartbeat_s: float = 0.25,
    deadline_ms: float | None = 2000.0,
    checkpoint_every: int | None = 256,
) -> None:
    """Top of the worker process (``multiprocessing.Process`` target)."""
    router, recovered = build_worker_router(
        wal_path, part=part, deadline_ms=deadline_ms
    )
    stall_s = 0.0
    with DurableSession(router, wal_path, checkpoint_every=checkpoint_every):
        res_q.put(("ready", wid, os.getpid(), recovered))
        while True:
            try:
                msg = req_q.get(timeout=heartbeat_s)
            except _queue.Empty:
                res_q.put(("hb", wid))
                continue
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "chaos":
                knobs = msg[1]
                stall_s = float(knobs.get("stall_s", stall_s))
                rate = knobs.get("fault_rate")
                if rate is not None:
                    # flip the device's fault model mid-flight: searches
                    # must re-mask and routes must keep succeeding
                    router.device.set_fault_model(
                        FaultModel.random(
                            router.device.arch,
                            seed=int(knobs.get("fault_seed", wid)),
                            stuck_open_rate=float(rate),
                        )
                    )
                continue
            if kind != "batch":  # pragma: no cover - protocol guard
                continue
            res_q.put(("hb", wid))
            if stall_s > 0.0:
                # injected hang: no heartbeats while sleeping, so the
                # monitor's miss window fires and SIGKILLs this process
                time.sleep(stall_s)
            results = execute_batch(router, msg[1])
            res_q.put(("done", wid, results))


def make_job(d: dict) -> Job:
    """Convenience for tests: wire dict → Job (mirrors Job.from_wire)."""
    return Job.from_wire(d)
