"""A small blocking client for ``repro submit``, tests and the E20 bench.

Deliberately synchronous (``http.client`` over a keep-alive connection):
the bench drives concurrency with a thread pool of these, which is also
how real tenants — scripts, CI jobs, cores requesting reroutes — would
hit the daemon.  Retries honour the server's ``Retry-After`` hint plus
seeded full-jitter backoff from
:meth:`~repro.core.recovery.RetryPolicy.backoff_for`, so a thousand
rejected clients do not come back as one synchronized herd.
"""

from __future__ import annotations

import http.client
import json
import time

from ..core.recovery import RetryPolicy

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Transport-level failure talking to the daemon."""


class ServiceClient:
    """One keep-alive connection to a :class:`RoutingService`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy(
            max_attempts=4, backoff_base=0.05, backoff_cap=1.0,
            jitter_seed=0xC11E47,
        )
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str, payload: dict | None = None):
        """One HTTP exchange → (status, json_doc, headers)."""
        body = None if payload is None else json.dumps(payload)
        try:
            conn = self._connection()
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            doc = json.loads(resp.read() or b"{}")
            return resp.status, doc, dict(resp.getheaders())
        except (OSError, http.client.HTTPException) as e:
            self.close()
            raise ServiceError(f"{method} {path}: {e}") from e

    # -- verbs ---------------------------------------------------------------

    def submit(
        self,
        source,
        sink,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline_ms: float | None = None,
        wait: bool = False,
    ) -> tuple[int, dict]:
        """Submit one p2p route job; no client-side retry."""
        payload = {
            "tenant": tenant,
            "source": list(source),
            "sink": list(sink),
            "priority": priority,
            "wait": wait,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        status, doc, _ = self.request("POST", "/route", payload)
        return status, doc

    def submit_with_retry(self, source, sink, **kw) -> tuple[int, dict]:
        """Submit, honouring 429 Retry-After with jittered backoff.

        Returns the final ``(status, doc)`` — still 429 if the service
        stayed overloaded through every attempt (that is the *correct*
        client-visible outcome of sustained overload, not an error).
        """
        policy = self.retry
        token = hash((source, sink, kw.get("tenant", "default")))
        status, doc = 429, {}
        for attempt in range(1, policy.max_attempts + 1):
            payload = dict(kw)
            payload_wait = payload.pop("retry_sleep_cap", None)
            status, doc = self.submit(source, sink, **payload)
            if status not in (429, 503):
                return status, doc
            delay = policy.backoff_for(attempt + 1, token=token)
            if payload_wait is not None:
                delay = min(delay, payload_wait)
            time.sleep(delay)
        return status, doc

    def job(self, job_id: str) -> tuple[int, dict]:
        return self.request("GET", f"/jobs/{job_id}")[:2]

    def wait_job(self, job_id: str, timeout: float = 30.0) -> dict:
        """Poll a job to a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status, doc = self.job(job_id)
            if status == 200 and doc.get("state") in (
                "succeeded", "failed", "rejected"
            ):
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(f"job {job_id} not terminal in {timeout}s")
            time.sleep(0.05)

    def stats(self) -> dict:
        return self.request("GET", "/stats")[1]

    def healthz(self) -> tuple[int, dict]:
        return self.request("GET", "/healthz")[:2]

    def drain(self) -> dict:
        return self.request("POST", "/drain")[1]
