"""Routing-as-a-service: a supervised, overload-safe routing daemon.

The paper's premise is *run-time* routing — hardware rerouted while the
system is live.  This package makes that premise literal at service
scale: ``repro serve`` runs an asyncio HTTP/JSON front door over a pool
of durable device sessions, scheduling point-to-point route jobs onto
process workers via the batched kernel (PR 7) while the robustness
machinery from earlier PRs (retry, WAL/recovery, deadlines, breakers)
holds the line under concurrent, hostile traffic.

Layering (each module is one layer, lower layers know nothing of upper):

* :mod:`~repro.service.jobs` — the job lifecycle state machine with
  exactly-once terminal accounting.
* :mod:`~repro.service.journal` — the accepted/terminal job journal
  (CRC-framed JSON lines, same torn-tail discipline as the PIP WAL).
* :mod:`~repro.service.queue` — bounded priority admission queue with
  per-tenant quotas and explicit overload shedding.
* :mod:`~repro.service.worker` — the process-worker entry point: one
  recovered :class:`~repro.core.router.JRouter` + WAL shard per worker,
  heartbeats, batch execution.
* :mod:`~repro.service.supervisor` — dispatcher/collector/monitor
  threads: coalescing, dead-worker detection, kill+respawn, idempotent
  re-enqueue, per-tenant circuit breakers, graceful drain.
* :mod:`~repro.service.server` — the asyncio HTTP/1.1 front end
  (``repro serve``); SIGTERM drains.
* :mod:`~repro.service.client` — blocking client used by ``repro
  submit`` and the E20 bench.
* :mod:`~repro.service.chaos` — fault injection (worker kills, stalls,
  WAL truncation, fault-model flips) against a live service.
"""

from .chaos import ChaosMonkey
from .client import ServiceClient
from .jobs import Job, JobState
from .journal import JobJournal, recover_jobs
from .queue import Admission, AdmissionQueue
from .server import RoutingService
from .supervisor import RoutingSupervisor, ServiceConfig

__all__ = [
    "Job",
    "JobState",
    "JobJournal",
    "recover_jobs",
    "Admission",
    "AdmissionQueue",
    "RoutingSupervisor",
    "ServiceConfig",
    "RoutingService",
    "ServiceClient",
    "ChaosMonkey",
]
