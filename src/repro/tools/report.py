"""Design report generator: a human-readable snapshot of a live system.

Another Section 1 tool: given a router, produce a markdown report of
everything on the device — floorplan, nets with timing, resource
utilisation, configuration statistics and health checks — the kind of
artefact an RTR control program would log between reconfigurations.
"""

from __future__ import annotations

from ..arch import wires
from ..core.router import JRouter
from ..core.tracer import trace_net
from ..debug.boardscope import BoardScope
from ..debug.visualize import congestion_stats
from ..timing import DEFAULT_DELAY_MODEL, DelayModel, net_timing

__all__ = ["design_report"]


def design_report(
    router: JRouter, *, model: DelayModel = DEFAULT_DELAY_MODEL, title: str = "Design report"
) -> str:
    """Render a markdown report of the router's current design state."""
    device = router.device
    arch = device.arch
    scope = BoardScope(device, router.jbits)
    lines: list[str] = [f"# {title}", ""]

    # -- device -----------------------------------------------------------
    lines += [
        f"- device: **{arch.part.name}** ({arch.rows}x{arch.cols} CLBs)",
        f"- PIPs on: **{device.state.n_pips_on}**",
        f"- wires in use: **{int(device.state.occupied.sum())}**",
    ]
    if router.jbits is not None:
        mem = router.jbits.memory
        lines.append(
            f"- configuration: {mem.n_frames} frames, "
            f"{len(mem.dirty_frames)} dirty since last sync"
        )
    lines.append("")

    # -- floorplan ----------------------------------------------------------
    floorplan = getattr(router, "_floorplan", None)
    lines.append("## Floorplan")
    lines.append("")
    if floorplan is None or not floorplan.placed():
        lines.append("(no cores placed)")
    else:
        lines.append("| core | position | size |")
        lines.append("|---|---|---|")
        for name, rect in sorted(floorplan.placed().items()):
            lines.append(
                f"| {name} | ({rect.row},{rect.col}) | "
                f"{rect.height}x{rect.width} |"
            )
    lines.append("")

    # -- nets ------------------------------------------------------------------
    lines.append("## Nets")
    lines.append("")
    roots = scope.net_sources()
    if not roots:
        lines.append("(no nets routed)")
    else:
        lines.append("| source | sinks | pips | max delay (ns) | skew (ns) |")
        lines.append("|---|---|---|---|---|")
        for root in roots:
            trace = trace_net(device, root)
            timing = net_timing(device, root, model)
            r, c, n = arch.primary_name(root)
            lines.append(
                f"| {wires.wire_name(n)}@({r},{c}) | {len(trace.sinks)} | "
                f"{len(trace.pips)} | {timing.max_delay:.1f} | "
                f"{timing.skew:.1f} |"
            )
    lines.append("")

    # -- utilisation ---------------------------------------------------------------
    lines.append("## Resource utilisation")
    lines.append("")
    stats = congestion_stats(device)
    used_classes = {k: v for k, v in sorted(stats.items()) if v > 0}
    if not used_classes:
        lines.append("(fabric unused)")
    else:
        lines.append("| class | used |")
        lines.append("|---|---|")
        for cls, frac in used_classes.items():
            lines.append(f"| {cls} | {frac:.2%} |")
    lines.append("")

    # -- health ------------------------------------------------------------------------
    lines.append("## Health")
    lines.append("")
    problems = scope.crosscheck()
    if problems:
        lines.append(f"**{len(problems)} problem(s):**")
        lines.extend(f"- {p}" for p in problems)
    else:
        lines.append("state/bitstream coherent; no contention. OK.")
    lines.append("")
    return "\n".join(lines)
