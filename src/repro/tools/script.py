"""A small routing-script language over the JRoute API.

JBits-era designs were often driven from scripts; this module provides
the equivalent for this library: a line-oriented text format that maps
one-to-one onto JRoute calls, so workloads can be written, versioned and
replayed without Python.  The CLI exposes it as ``python -m repro run``.

Grammar (one statement per line; ``#`` starts a comment)::

    device XCV50                         # must appear first
    pip     R C FROM_WIRE TO_WIRE        # route level 1
    route   WIRE@R,C -> WIRE@R,C [...]   # auto route, 1 source, N sinks
    clock   INDEX WIRE@R,C [...]         # global net to clock pins
    unroute WIRE@R,C                     # forward unroute from a source
    assert_on  R C WIRE                  # isOn() must be true
    assert_off R C WIRE                  # isOn() must be false

Wire names are the human-readable labels (``SingleEast[5]``, ``S1_YQ``);
pins are ``NAME@row,col``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import errors
from ..arch import wires
from ..core.endpoints import Pin
from ..core.router import JRouter

__all__ = ["ScriptError", "ScriptResult", "run_script"]


class ScriptError(errors.JRouteError):
    """A routing script failed to parse or execute."""


@dataclass(slots=True)
class ScriptResult:
    """Outcome of one script run."""

    router: JRouter
    statements: int = 0
    pips_added: int = 0
    log: list[str] = field(default_factory=list)


def _parse_pin(token: str, lineno: int) -> Pin:
    try:
        name_part, pos = token.split("@")
        row_s, col_s = pos.split(",")
        return Pin(int(row_s), int(col_s), wires.parse_wire_name(name_part))
    except (ValueError, KeyError) as e:
        raise ScriptError(f"line {lineno}: bad pin {token!r} ({e})") from None


def _parse_wire(token: str, lineno: int) -> int:
    try:
        return wires.parse_wire_name(token)
    except KeyError:
        raise ScriptError(f"line {lineno}: unknown wire {token!r}") from None


def run_script(
    text: str, *, router: JRouter | None = None, attach_jbits: bool = True
) -> ScriptResult:
    """Execute a routing script; returns the router and a statement log.

    A fresh router is created by the script's ``device`` statement unless
    one is passed in (in which case ``device`` lines must match its part).
    Execution stops at the first failing statement with
    :class:`ScriptError`; statements already executed remain applied
    (scripts are imperative, like the API they wrap).
    """
    result = ScriptResult(router=router)  # router may still be None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        op = tokens[0].lower()
        args = tokens[1:]
        try:
            if op == "device":
                if len(args) != 1:
                    raise ScriptError(f"line {lineno}: device takes one part name")
                if result.router is None:
                    result.router = JRouter(part=args[0], attach_jbits=attach_jbits)
                elif result.router.device.arch.part.name != args[0]:
                    raise ScriptError(
                        f"line {lineno}: script wants {args[0]}, router is "
                        f"{result.router.device.arch.part.name}"
                    )
            elif result.router is None:
                raise ScriptError(
                    f"line {lineno}: 'device PART' must come before {op!r}"
                )
            elif op == "pip":
                if len(args) != 4:
                    raise ScriptError(f"line {lineno}: pip R C FROM TO")
                row, col = int(args[0]), int(args[1])
                fn = _parse_wire(args[2], lineno)
                tn = _parse_wire(args[3], lineno)
                result.pips_added += result.router.route(row, col, fn, tn)
            elif op == "route":
                if "->" not in args:
                    raise ScriptError(f"line {lineno}: route SRC -> SINK [...]")
                arrow = args.index("->")
                if arrow != 1 or len(args) < 3:
                    raise ScriptError(f"line {lineno}: route SRC -> SINK [...]")
                src = _parse_pin(args[0], lineno)
                sinks = [_parse_pin(t, lineno) for t in args[arrow + 1 :]]
                result.pips_added += result.router.route(src, sinks)
            elif op == "clock":
                if len(args) < 2:
                    raise ScriptError(f"line {lineno}: clock INDEX PIN [...]")
                idx = int(args[0])
                sinks = [_parse_pin(t, lineno) for t in args[1:]]
                result.pips_added += result.router.route_clock(idx, sinks)
            elif op == "unroute":
                if len(args) != 1:
                    raise ScriptError(f"line {lineno}: unroute PIN")
                result.router.unroute(_parse_pin(args[0], lineno))
            elif op in ("assert_on", "assert_off"):
                if len(args) != 3:
                    raise ScriptError(f"line {lineno}: {op} R C WIRE")
                row, col = int(args[0]), int(args[1])
                wire = _parse_wire(args[2], lineno)
                is_on = result.router.is_on(row, col, wire)
                want = op == "assert_on"
                if is_on != want:
                    raise ScriptError(
                        f"line {lineno}: {op} failed for "
                        f"{wires.wire_name(wire)}@({row},{col})"
                    )
            else:
                raise ScriptError(f"line {lineno}: unknown statement {op!r}")
        except ScriptError:
            raise
        except (errors.JRouteError, ValueError) as e:
            raise ScriptError(f"line {lineno}: {e}") from e
        result.statements += 1
        result.log.append(line)
    if result.router is None:
        raise ScriptError("script has no 'device' statement")
    return result
