"""Tools built over the JRoute API (the paper's Section 1 promise)."""

from .defrag import DefragResult, defrag, find_fit, largest_free_rect
from .report import design_report
from .script import ScriptError, ScriptResult, run_script

__all__ = [
    "DefragResult",
    "defrag",
    "find_fit",
    "largest_free_rect",
    "design_report",
    "ScriptError",
    "ScriptResult",
    "run_script",
]
