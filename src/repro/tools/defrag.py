"""Floorplan defragmentation: an RTR tool built on core relocation.

A long-running run-time-reconfigurable system places and removes cores
continuously; the free area fragments, until a new core fits in total
free CLBs but in no contiguous rectangle.  This tool compacts the
floorplan by relocating live cores toward the south-west corner, one at
a time — each move is the paper's Section 3.3 relocation (unroute,
move, auto-reconnect from remembered port connections), so the design
stays fully routed between moves.

This is exactly the kind of tool the paper's Section 1 anticipates being
built over the API ("these can range from debugging tools to extensions
that increase functionality").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import errors
from ..core.router import JRouter
from ..cores.core import Core, Floorplan, Rect, _floorplan_of
from ..cores.relocate import relocate_core

__all__ = ["DefragResult", "defrag", "largest_free_rect", "find_fit"]


def _free_map(floorplan: Floorplan):
    """Boolean occupancy grid of the floorplan (True = free)."""
    import numpy as np

    free = np.ones((floorplan.rows, floorplan.cols), dtype=bool)
    for rect in floorplan.placed().values():
        free[rect.row : rect.row + rect.height, rect.col : rect.col + rect.width] = False
    return free


def largest_free_rect(floorplan: Floorplan) -> Rect:
    """The largest free axis-aligned rectangle of the floorplan.

    Classic largest-rectangle-in-histogram sweep over the free map.
    """
    import numpy as np

    free = _free_map(floorplan)
    rows, cols = free.shape
    heights = np.zeros(cols, dtype=np.int64)
    best = Rect(0, 0, 0, 0)
    best_area = 0
    for r in range(rows):
        heights = np.where(free[r], heights + 1, 0)
        # classic largest-rectangle-in-histogram stack sweep
        stack: list[int] = []
        # the stack carries a loop-borne dependency no ufunc expresses
        for c in range(cols + 1):  # repro: noqa RPR007
            h = int(heights[c]) if c < cols else 0
            while stack and int(heights[stack[-1]]) >= h:
                top = stack.pop()
                rect_h = int(heights[top])
                left = stack[-1] + 1 if stack else 0
                width = c - left
                if rect_h * width > best_area:
                    best_area = rect_h * width
                    best = Rect(r - rect_h + 1, left, rect_h, width)
            stack.append(c)
    return best


def find_fit(floorplan: Floorplan, height: int, width: int) -> tuple[int, int] | None:
    """South-west-most free position where a height x width core fits."""
    import numpy as np

    free = _free_map(floorplan)
    rows, cols = free.shape
    if height > rows or width > cols:
        return None
    # 2D summed-area over the free map for O(1) window checks
    cum = np.zeros((rows + 1, cols + 1), dtype=np.int64)
    cum[1:, 1:] = np.cumsum(np.cumsum(free, axis=0), axis=1)
    hi_r, hi_c = rows - height + 1, cols - width + 1
    totals = (
        cum[height:, width:]
        - cum[:hi_r, width:]
        - cum[height:, :hi_c]
        + cum[:hi_r, :hi_c]
    )
    # argwhere is row-major: first hit is the south-west-most position
    hits = np.argwhere(totals == height * width)
    if len(hits):
        r, c = hits[0]
        return int(r), int(c)
    return None


@dataclass(slots=True)
class DefragResult:
    """Outcome of a defragmentation pass."""

    moves: list[tuple[str, tuple[int, int], tuple[int, int]]] = field(
        default_factory=list
    )
    largest_free_before: Rect = Rect(0, 0, 0, 0)
    largest_free_after: Rect = Rect(0, 0, 0, 0)

    @property
    def improved(self) -> bool:
        return (
            self.largest_free_after.height * self.largest_free_after.width
            > self.largest_free_before.height * self.largest_free_before.width
        )


def defrag(router: JRouter, cores: list[Core], *, max_passes: int = 3) -> DefragResult:
    """Compact live cores toward the south-west corner.

    ``cores`` are the live top-level core objects (the floorplan alone
    does not know the objects).  Cores are processed nearest-the-corner
    first; each is moved to the south-west-most free position that
    improves its corner distance.  Relocation re-routes remembered
    connections, so the design remains functional after every move.

    Returns the move list and the largest free rectangle before/after.
    Cores whose relocation fails (e.g. congestion at the new spot) are
    left in place — relocate_core restores them.
    """
    floorplan = _floorplan_of(router)
    result = DefragResult(largest_free_before=largest_free_rect(floorplan))
    live = {c.instance_name: c for c in cores if c.parent is None}
    for _ in range(max_passes):
        moved_any = False
        order = sorted(live.values(), key=lambda c: (c.row + c.col, c.instance_name))
        for core in order:
            rect = core.footprint()
            # temporarily ignore this core's own area when searching
            floorplan.remove(core.instance_name)
            spot = find_fit(floorplan, rect.height, rect.width)
            floorplan.place(core.instance_name, rect)
            if spot is None:
                continue
            r, c = spot
            if (r + c) >= (core.row + core.col):
                continue  # no improvement toward the corner
            old_pos = (core.row, core.col)
            try:
                new_core = relocate_core(core, r, c)
            except errors.JRouteError:  # repro: noqa RPR006
                continue  # restored in place by relocate_core
            live[new_core.instance_name] = new_core
            result.moves.append((new_core.instance_name, old_pos, (r, c)))
            moved_any = True
        if not moved_any:
            break
    result.largest_free_after = largest_free_rect(floorplan)
    return result
