"""Routing state of a device: which PIPs are on, who drives what.

The state is a forest over canonical wire ids: every driven wire records
its driver and the tile at which the driving PIP sits; every wire records
the wires it currently drives.  This is exactly the information the
paper's unrouter and tracer need ("the unrouter then follows each of the
wires the pin drives and turns it off").

A numpy ``occupied`` array mirrors "wire is in use" for the routers'
availability checks (vectorised masking in the maze router).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..arch.virtex import VirtexArch

__all__ = ["PipRecord", "RoutingState"]


@dataclass(frozen=True, slots=True)
class PipRecord:
    """One turned-on PIP: at tile (row, col), ``from_name`` drives
    ``to_name``; ``canon_from``/``canon_to`` are the resolved wires."""

    row: int
    col: int
    from_name: int
    to_name: int
    canon_from: int
    canon_to: int


class RoutingState:
    """Mutable routing state over a device's canonical wire space."""

    def __init__(self, arch: VirtexArch) -> None:
        self.arch = arch
        #: driver[w] = canonical id of the wire driving w, or -1
        self.driver = np.full(arch.n_wires, -1, dtype=np.int64)
        #: children[w] = list of canonical ids w currently drives
        self.children: dict[int, list[int]] = {}
        #: pip_of[w] = the PipRecord that drives w
        self.pip_of: dict[int, PipRecord] = {}
        #: occupied[w] = wire participates in some net (driven or driving)
        self.occupied = np.zeros(arch.n_wires, dtype=bool)
        self.n_pips_on = 0

    # -- mutation ------------------------------------------------------------

    def add_pip(self, rec: PipRecord) -> None:
        """Record a turned-on PIP.  Caller has validated legality."""
        self.driver[rec.canon_to] = rec.canon_from
        self.pip_of[rec.canon_to] = rec
        self.children.setdefault(rec.canon_from, []).append(rec.canon_to)
        self.occupied[rec.canon_to] = True
        self.occupied[rec.canon_from] = True
        self.n_pips_on += 1

    def remove_pip(self, canon_to: int) -> PipRecord:
        """Remove the PIP driving ``canon_to`` and return its record."""
        rec = self.pip_of.pop(canon_to)
        self.driver[canon_to] = -1
        kids = self.children[rec.canon_from]
        kids.remove(canon_to)
        if not kids:
            del self.children[rec.canon_from]
        self.n_pips_on -= 1
        self._refresh_occupied(rec.canon_from)
        self._refresh_occupied(canon_to)
        return rec

    def _refresh_occupied(self, canon: int) -> None:
        self.occupied[canon] = (
            self.driver[canon] != -1 or bool(self.children.get(canon))
        )

    def clear(self) -> None:
        """Return to the unconfigured state (all PIPs off)."""
        self.driver.fill(-1)
        self.children.clear()
        self.pip_of.clear()
        self.occupied.fill(False)
        self.n_pips_on = 0

    # -- queries ---------------------------------------------------------------

    def driver_of(self, canon: int) -> int:
        """Canonical id of the driver of ``canon``, or -1."""
        return int(self.driver[canon])

    def children_of(self, canon: int) -> tuple[int, ...]:
        """Wires currently driven by ``canon``."""
        return tuple(self.children.get(canon, ()))

    def is_used(self, canon: int) -> bool:
        """Paper's ``isOn`` semantics: the wire participates in a net."""
        return bool(self.occupied[canon])

    def is_driven(self, canon: int) -> bool:
        return self.driver[canon] != -1

    def root_of(self, canon: int) -> int:
        """Walk drivers up to the net's source wire."""
        w = canon
        d = self.driver[w]
        while d != -1:
            w = int(d)
            d = self.driver[w]
        return w

    def is_ancestor(self, maybe_ancestor: int, canon: int) -> bool:
        """True if ``maybe_ancestor`` appears on the driver chain of
        ``canon`` (inclusive of ``canon`` itself)."""
        w = canon
        while w != -1:
            if w == maybe_ancestor:
                return True
            w = int(self.driver[w])
        return False

    def subtree(self, canon: int) -> Iterator[int]:
        """Yield ``canon`` and every wire reachable through on-PIPs."""
        stack = [canon]
        while stack:
            w = stack.pop()
            yield w
            stack.extend(self.children.get(w, ()))

    def net_pips(self, source: int) -> list[PipRecord]:
        """All PIP records of the net rooted at ``source`` (preorder)."""
        out: list[PipRecord] = []
        stack = [source]
        while stack:
            w = stack.pop()
            for kid in self.children.get(w, ()):
                out.append(self.pip_of[kid])
                stack.append(kid)
        return out

    def used_wires(self) -> np.ndarray:
        """Canonical ids of all wires currently in use (sorted)."""
        return np.flatnonzero(self.occupied)

    def fingerprint(self) -> str:
        """Order-independent digest of the full PIP configuration.

        Two states fingerprint equal iff the same PIPs are on — the
        cheap equality check crash-recovery uses to prove a recovered
        state matches an uninterrupted run without comparing arrays.
        """
        h = hashlib.sha256()
        for canon_to in sorted(self.pip_of):
            rec = self.pip_of[canon_to]
            h.update(
                b"%d,%d,%d,%d;" % (rec.row, rec.col, rec.from_name, rec.to_name)
            )
        return h.hexdigest()

    # -- auditing ---------------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Audit ``driver``/``children``/``pip_of``/``occupied`` mutual
        consistency.

        Returns human-readable violations (empty when healthy).  Used by
        :class:`repro.core.txn.RouteTransaction` after a rollback and by
        the test suite; any violation means the forest is corrupt and the
        device state can no longer be trusted.
        """
        problems: list[str] = []
        if self.n_pips_on != len(self.pip_of):
            problems.append(
                f"n_pips_on={self.n_pips_on} but {len(self.pip_of)} PIP records"
            )
        for canon_to, rec in self.pip_of.items():
            if rec.canon_to != canon_to:
                problems.append(
                    f"pip_of[{canon_to}] records target {rec.canon_to}"
                )
            if self.driver[canon_to] != rec.canon_from:
                problems.append(
                    f"driver[{canon_to}]={int(self.driver[canon_to])} but PIP "
                    f"record says {rec.canon_from}"
                )
            if canon_to not in self.children.get(rec.canon_from, ()):
                problems.append(
                    f"{canon_to} missing from children[{rec.canon_from}]"
                )
        driven = np.flatnonzero(self.driver != -1)
        # dict-membership audit of a cold invariant checker
        for w in driven:  # repro: noqa RPR007
            if int(w) not in self.pip_of:
                problems.append(f"driver[{int(w)}] set but no PIP record")
        for canon_from, kids in self.children.items():
            if not kids:
                problems.append(f"children[{canon_from}] is empty but present")
            if len(set(kids)) != len(kids):
                problems.append(f"children[{canon_from}] has duplicates")
            for kid in kids:
                rec = self.pip_of.get(kid)
                if rec is None or rec.canon_from != canon_from:
                    problems.append(
                        f"children[{canon_from}] lists {kid} without a "
                        f"matching PIP record"
                    )
        expected = np.zeros_like(self.occupied)
        expected[driven] = True
        for canon_from, kids in self.children.items():
            if kids:
                expected[canon_from] = True
        bad = np.flatnonzero(expected != self.occupied)
        for w in bad[:10]:
            problems.append(
                f"occupied[{int(w)}]={bool(self.occupied[w])} but forest "
                f"says {bool(expected[w])}"
            )
        if len(bad) > 10:
            problems.append(f"... and {len(bad) - 10} more occupancy mismatches")
        return problems
