"""Contention analysis helpers (paper Section 3.4).

The hard contention *enforcement* lives in
:meth:`repro.device.fabric.Device.turn_on` — a wire never gets two
drivers.  This module adds the advisory queries routers and user tools
use to avoid tripping that enforcement: dry-run checks for a single PIP
or for a whole planned path, and an audit that verifies the invariant
over a device's entire state (used by tests and the debug tools).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..arch import connectivity, wires
from .fabric import Device, _NAME_DRIVABLE

__all__ = ["would_contend", "path_conflicts", "audit_no_contention"]


def would_contend(device: Device, row: int, col: int, from_name: int, to_name: int) -> bool:
    """True if turning on this PIP would raise
    :class:`~repro.errors.ContentionError` (the target wire already has a
    different driver).  Nonexistent resources/PIPs also report True —
    they cannot be turned on."""
    if not connectivity.pip_exists(from_name, to_name) or not _NAME_DRIVABLE[to_name]:
        return True
    canon_from = device.arch.canonicalize(row, col, from_name)
    canon_to = device.arch.canonicalize(row, col, to_name)
    if canon_from is None or canon_to is None or canon_from == canon_to:
        return True
    rec = device.state.pip_of.get(canon_to)
    return rec is not None and rec.canon_from != canon_from


def path_conflicts(
    device: Device, pips: Iterable[tuple[int, int, int, int]]
) -> list[tuple[int, int, int, int]]:
    """Dry-run a planned sequence of PIPs ``(row, col, from, to)``.

    Returns the subset that would conflict, considering both the current
    device state and conflicts *within* the plan (two planned PIPs driving
    the same wire).  An empty result means the plan can be applied.
    """
    conflicts: list[tuple[int, int, int, int]] = []
    planned_targets: dict[int, int] = {}
    for row, col, from_name, to_name in pips:
        canon_to = device.arch.canonicalize(row, col, to_name)
        canon_from = device.arch.canonicalize(row, col, from_name)
        if would_contend(device, row, col, from_name, to_name):
            conflicts.append((row, col, from_name, to_name))
            continue
        assert canon_to is not None and canon_from is not None
        prev = planned_targets.get(canon_to)
        if prev is not None and prev != canon_from:
            conflicts.append((row, col, from_name, to_name))
            continue
        planned_targets[canon_to] = canon_from
    return conflicts


def audit_no_contention(device: Device) -> Sequence[str]:
    """Verify the no-two-drivers invariant over the whole device state.

    Returns a list of human-readable violations (empty when healthy).
    Because :meth:`Device.turn_on` enforces the invariant, violations
    indicate state corruption; tests call this after every scenario.
    """
    problems: list[str] = []
    seen_targets: set[int] = set()
    for canon_to, rec in device.state.pip_of.items():
        if canon_to in seen_targets:  # pragma: no cover - defensive
            problems.append(f"wire {canon_to} recorded twice as a PIP target")
        seen_targets.add(canon_to)
        if rec.canon_to != canon_to:
            problems.append(
                f"pip_of key {canon_to} disagrees with record target {rec.canon_to}"
            )
        if device.state.driver_of(canon_to) != rec.canon_from:
            problems.append(
                f"driver array for {canon_to} disagrees with PIP record"
            )
        if not connectivity.pip_exists(rec.from_name, rec.to_name):
            problems.append(
                f"on-PIP {wires.wire_name(rec.from_name)} -> "
                f"{wires.wire_name(rec.to_name)} does not exist in the arch"
            )
    for canon_from, kids in device.state.children.items():
        for kid in kids:
            rec = device.state.pip_of.get(kid)
            if rec is None or rec.canon_from != canon_from:
                problems.append(
                    f"children list of {canon_from} contains {kid} without a "
                    f"matching PIP record"
                )
    return problems
