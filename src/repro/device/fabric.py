"""The simulated device: fabric geometry + live routing state.

:class:`Device` is the behavioural model of one Virtex part.  It owns the
architecture description and the :class:`~repro.device.state.RoutingState`,
validates and applies PIP changes (including the contention protection of
the paper's Section 3.4), and exposes the wire-graph neighbourhood queries
that every routing algorithm is built on.

Configuration listeners (e.g. the JBits bitstream mirror) are notified of
every PIP change, keeping the bit-level view coherent with the
behavioural state.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .. import errors
from ..arch import connectivity, wires

# The name-level drivability tables moved to the compiled-graph module so
# the CSR builder and the behavioural device share one definition.
from ..arch.graph import DRIVES_DRIVABLE as _DRIVES_DRIVABLE
from ..arch.graph import NAME_DRIVABLE as _NAME_DRIVABLE
from ..arch.graph import routing_graph as _routing_graph
from ..arch.virtex import VirtexArch
from .state import PipRecord, RoutingState

__all__ = ["Device", "PipEvent"]

#: (on: bool, record) passed to configuration listeners.
PipEvent = tuple[bool, PipRecord]


class Device:
    """One simulated Virtex part with live routing state.

    Parameters
    ----------
    part:
        Virtex part name ("XCV50" .. "XCV1000") or a
        :class:`~repro.arch.devices.DevicePart`.
    faults:
        Optional :class:`~repro.device.faults.FaultModel` of permanent
        defects; configuring a faulty resource raises
        :class:`~repro.errors.FaultError`, and fault-aware routers mask
        the resources out of their searches.
    """

    def __init__(self, part: str = "XCV50", *, faults=None) -> None:
        self.arch = VirtexArch(part)
        self.state = RoutingState(self.arch)
        self.faults = faults
        self._listeners: list[Callable[[PipEvent], None]] = []
        self._search_state = None
        self._batch_search_state = None

    def routing_graph(self):
        """The compiled CSR routing graph for this part (process-shared)."""
        return _routing_graph(self.arch)

    def search_state(self):
        """This device's reusable epoch-stamped search state.

        One state serves one search at a time; concurrent searches must
        allocate their own (see parallel PathFinder).
        """
        if self._search_state is None:
            from ..core.kernel import SearchState

            self._search_state = SearchState(self.arch.n_wires)
        return self._search_state

    def batch_search_state(self, k: int):
        """This device's reusable ``k``-lane batched search state.

        Grown on demand (lanes are reused across batches); one state
        serves one batch at a time — concurrent batches (thread-backend
        chunks) must allocate their own.
        """
        if self._batch_search_state is None:
            from ..core.kernel import BatchSearchState

            self._batch_search_state = BatchSearchState(self.arch.n_wires, k)
        else:
            self._batch_search_state.ensure(k)
        return self._batch_search_state

    def set_fault_model(self, faults) -> None:
        """Attach (or clear, with None) the device's fault model.

        Faults describe the physical fabric, not the configuration:
        attaching a model does not disturb already-routed nets, it only
        constrains future ``turn_on`` calls and fault-aware searches.
        """
        self.faults = faults

    @property
    def rows(self) -> int:
        return self.arch.rows

    @property
    def cols(self) -> int:
        return self.arch.cols

    # -- listeners -------------------------------------------------------------

    def add_listener(self, fn: Callable[[PipEvent], None]) -> None:
        """Register a configuration listener (called on every PIP change)."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[PipEvent], None]) -> None:
        self._listeners.remove(fn)

    def _emit(self, on: bool, rec: PipRecord) -> None:
        for fn in self._listeners:
            fn((on, rec))

    # -- resolution helpers ------------------------------------------------------

    def resolve(self, row: int, col: int, name: int) -> int:
        """Canonicalize a wire name at a tile, raising if it doesn't exist."""
        canon = self.arch.canonicalize(row, col, name)
        if canon is None:
            raise errors.InvalidResourceError(
                f"{wires.wire_name(name)} does not exist at CLB ({row},{col}) "
                f"on {self.arch.part.name}"
            )
        return canon

    # -- PIP mutation --------------------------------------------------------------

    def turn_on(self, row: int, col: int, from_name: int, to_name: int) -> PipRecord:
        """Turn on the PIP ``from_name -> to_name`` at CLB ``(row, col)``.

        Validates that the PIP exists in the architecture, that both wires
        exist at this tile, that the target is drivable here, and that the
        connection creates neither contention (two drivers on one wire) nor
        a combinational routing loop.  Idempotent for an already-on PIP.
        """
        if not connectivity.pip_exists(from_name, to_name):
            raise errors.InvalidPipError(
                f"no PIP {wires.wire_name(from_name)} -> "
                f"{wires.wire_name(to_name)} in the architecture"
            )
        canon_from = self.resolve(row, col, from_name)
        canon_to = self.resolve(row, col, to_name)
        if not _NAME_DRIVABLE[to_name]:
            raise errors.InvalidPipError(
                f"{wires.wire_name(to_name)} cannot be driven at ({row},{col})"
            )
        if canon_from == canon_to:
            raise errors.InvalidPipError(
                f"{wires.wire_name(from_name)} and {wires.wire_name(to_name)} "
                f"are the same physical wire at ({row},{col})"
            )
        if self.faults is not None:
            if self.faults.wire_blocked(canon_from) or self.faults.wire_blocked(
                canon_to
            ):
                bad = canon_from if self.faults.wire_blocked(canon_from) else canon_to
                kind = "dead" if self.faults.dead[bad] else "pre-driven"
                raise errors.FaultError(
                    f"wire {wires.wire_name(to_name if bad == canon_to else from_name)} "
                    f"at ({row},{col}) is {kind} (fabric defect)"
                )
            if self.faults.pip_stuck_open(canon_from, canon_to):
                raise errors.FaultError(
                    f"PIP {wires.wire_name(from_name)} -> "
                    f"{wires.wire_name(to_name)} at ({row},{col}) is stuck open"
                )
        existing = self.state.driver_of(canon_to)
        if existing != -1:
            prev = self.state.pip_of[canon_to]
            if prev.canon_from == canon_from:
                return prev  # identical connection, idempotent
            raise errors.ContentionError(
                f"{wires.wire_name(to_name)} at ({row},{col}) is already "
                f"driven by {wires.wire_name(prev.from_name)} at "
                f"({prev.row},{prev.col}); driving it from "
                f"{wires.wire_name(from_name)} would create contention",
                row=row,
                col=col,
                wire=wires.wire_name(to_name),
                net=self.state.root_of(canon_to),
            )
        if self.state.is_ancestor(canon_to, canon_from):
            raise errors.RoutingLoopError(
                f"connecting {wires.wire_name(from_name)} -> "
                f"{wires.wire_name(to_name)} at ({row},{col}) closes a loop"
            )
        rec = PipRecord(row, col, from_name, to_name, canon_from, canon_to)
        self.state.add_pip(rec)
        self._emit(True, rec)
        return rec

    def turn_off(self, row: int, col: int, from_name: int, to_name: int) -> None:
        """Turn off a previously-on PIP.  Raises if it is not on."""
        canon_to = self.resolve(row, col, to_name)
        rec = self.state.pip_of.get(canon_to)
        canon_from = self.resolve(row, col, from_name)
        if rec is None or rec.canon_from != canon_from:
            raise errors.InvalidPipError(
                f"PIP {wires.wire_name(from_name)} -> {wires.wire_name(to_name)} "
                f"at ({row},{col}) is not on"
            )
        self.state.remove_pip(canon_to)
        self._emit(False, rec)

    def turn_off_driver(self, canon_to: int) -> PipRecord:
        """Turn off whatever PIP drives ``canon_to`` (unrouter primitive)."""
        rec = self.state.remove_pip(canon_to)
        self._emit(False, rec)
        return rec

    def clear(self) -> None:
        """Remove every routed connection (full-device unroute)."""
        for canon_to in list(self.state.pip_of):
            self.turn_off_driver(canon_to)

    # -- queries ------------------------------------------------------------------

    def is_on(self, row: int, col: int, name: int) -> bool:
        """The paper's ``isOn(row, col, wire)``: is the wire in use?

        Pre-driven wires (stuck-closed fabric defects) read as in use:
        their signal really is asserted on the physical wire.
        """
        canon = self.resolve(row, col, name)
        if self.faults is not None and self.faults.predriven[canon]:
            return True
        return self.state.is_used(canon)

    def pip_is_on(self, row: int, col: int, from_name: int, to_name: int) -> bool:
        canon_to = self.arch.canonicalize(row, col, to_name)
        if canon_to is None:
            return False
        rec = self.state.pip_of.get(canon_to)
        if rec is None:
            return False
        canon_from = self.arch.canonicalize(row, col, from_name)
        return canon_from is not None and rec.canon_from == canon_from

    # -- wire-graph neighbourhood (what routers expand) ---------------------------

    def fanout_pips(self, canon: int) -> Iterator[tuple[int, int, int, int, int]]:
        """All PIPs through which wire ``canon`` could drive another wire.

        Yields ``(row, col, from_name, to_name, canon_to)`` for every
        presence point of the wire and every architecture-legal, drivable
        target there.  Availability (target not in use) is *not* filtered
        here — algorithms decide how to treat used wires (e.g. reuse of
        the same net's tree in fanout routing).
        """
        arch = self.arch
        for row, col, name in arch.presences(canon):
            for to_name in _DRIVES_DRIVABLE[name]:
                canon_to = arch.canonicalize(row, col, to_name)
                if canon_to is not None:
                    yield row, col, name, to_name, canon_to

    def fanin_pips(self, canon: int) -> Iterator[tuple[int, int, int, int, int]]:
        """All PIPs through which wire ``canon`` could be driven.

        Yields ``(row, col, from_name, to_name, canon_from)``.  Empty for
        wires that are not drivable anywhere (slice outputs, globals).
        """
        arch = self.arch
        for row, col, name in arch.presences(canon):
            if not _NAME_DRIVABLE[name]:
                continue
            for from_name in connectivity.DRIVEN_BY[name]:
                canon_from = arch.canonicalize(row, col, from_name)
                if canon_from is not None:
                    yield row, col, from_name, name, canon_from

    # -- convenience ---------------------------------------------------------------

    def wire_at(self, row: int, col: int, name: int) -> int | None:
        """Canonical id of a name at a tile, or None if nonexistent."""
        return self.arch.canonicalize(row, col, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Device({self.arch.part.name}: {self.rows}x{self.cols} CLBs, "
            f"{self.state.n_pips_on} PIPs on)"
        )
