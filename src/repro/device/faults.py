"""Fault injection for the simulated fabric.

Real run-time reconfigurable systems must route around defective
resources (cf. Ahmadinia et al., *A Practical Approach for Circuit
Routing on Dynamic Reconfigurable Devices*); the paper's fabric is
always perfect.  :class:`FaultModel` injects three classes of permanent
defects into a :class:`~repro.device.fabric.Device`:

* **dead wires** — the wire is broken and carries no signal; it can
  neither be driven nor drive anything;
* **pre-driven wires** — a stuck-*closed* PIP permanently drives the
  wire from some neighbour, so any other driver would contend; the wire
  is unusable by nets and reads as in-use;
* **stuck-open PIPs** — the switch between two specific wires can never
  close, though both wires remain usable via other PIPs.

Faults are deterministic.  Explicit faults are registered per resource;
random faults are drawn either up front (wire masks, seeded numpy
generator) or membership-hashed per PIP (stuck-open at a given rate,
splitmix64 over the canonical wire pair) so that no enumeration of the
full PIP population is ever needed.

The device consults the model in :meth:`Device.turn_on` (raising
:class:`~repro.errors.FaultError`); the maze and template routers mask
faulty resources out of their availability checks so search degrades
gracefully instead of planning invalid connections.
"""

from __future__ import annotations

import numpy as np

from ..arch.virtex import VirtexArch

__all__ = ["FaultModel"]

_M64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 round; stable across processes (unlike hash())."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


class FaultModel:
    """Deterministic defect map over one architecture's wire space.

    Parameters
    ----------
    arch:
        The architecture whose canonical wire ids the model indexes.
    dead_wires, predriven_wires:
        Explicit canonical wire ids to mark dead / pre-driven.
    stuck_open_pips:
        Explicit ``(canon_from, canon_to)`` pairs whose PIP never closes.
    """

    def __init__(
        self,
        arch: VirtexArch,
        *,
        dead_wires: tuple[int, ...] = (),
        predriven_wires: tuple[int, ...] = (),
        stuck_open_pips: tuple[tuple[int, int], ...] = (),
    ) -> None:
        self.arch = arch
        #: dead[w]: wire w is physically broken
        self.dead = np.zeros(arch.n_wires, dtype=bool)
        #: predriven[w]: a stuck-closed PIP permanently drives wire w
        self.predriven = np.zeros(arch.n_wires, dtype=bool)
        self._stuck_open: set[tuple[int, int]] = set(
            (int(a), int(b)) for a, b in stuck_open_pips
        )
        self._stuck_open_rate = 0.0
        self._stuck_open_seed = 0
        self._stuck_open_threshold = 0
        #: bumped on every mutation; derived caches (per-edge fault masks
        #: on compiled routing graphs) key off it
        self.version = 0
        self._edge_masks: dict[int, object] = {}
        for w in dead_wires:
            self.dead[w] = True
        for w in predriven_wires:
            self.predriven[w] = True
        self._refresh()

    # -- construction --------------------------------------------------------

    @classmethod
    def random(
        cls,
        arch: VirtexArch,
        *,
        seed: int = 0,
        stuck_open_rate: float = 0.0,
        stuck_closed_rate: float = 0.0,
        dead_wire_rate: float = 0.0,
    ) -> "FaultModel":
        """Seeded random fault map at the given per-resource rates.

        Wire faults are drawn once over the canonical wire space;
        stuck-open PIP membership is hashed per (from, to) pair, so the
        same seed and rate name the same defective PIPs on every run.
        """
        model = cls(arch)
        rng = np.random.default_rng(seed)
        if dead_wire_rate > 0.0:
            model.dead = rng.random(arch.n_wires) < dead_wire_rate
        if stuck_closed_rate > 0.0:
            model.predriven = rng.random(arch.n_wires) < stuck_closed_rate
        model._stuck_open_rate = float(stuck_open_rate)
        model._stuck_open_seed = int(seed)
        model._stuck_open_threshold = int(stuck_open_rate * (_M64 + 1))
        model._refresh()
        return model

    def _refresh(self) -> None:
        #: unusable[w]: wire w cannot participate in any routed net
        self.unusable = self.dead | self.predriven
        self.version += 1

    # -- explicit mutation ----------------------------------------------------

    def kill_wire(self, canon: int) -> None:
        """Mark one wire dead."""
        self.dead[canon] = True
        self._refresh()

    def predrive_wire(self, canon: int) -> None:
        """Mark one wire as permanently driven by a stuck-closed PIP."""
        self.predriven[canon] = True
        self._refresh()

    def break_pip(self, canon_from: int, canon_to: int) -> None:
        """Mark the PIP between two canonical wires stuck open."""
        self._stuck_open.add((int(canon_from), int(canon_to)))
        self.version += 1

    # -- queries ---------------------------------------------------------------

    def wire_blocked(self, canon: int) -> bool:
        """Is the wire unusable (dead or pre-driven)?"""
        return bool(self.unusable[canon])

    def pip_stuck_open(self, canon_from: int, canon_to: int) -> bool:
        """Can the PIP ``canon_from -> canon_to`` never be closed?"""
        if (canon_from, canon_to) in self._stuck_open:
            return True
        if self._stuck_open_threshold:
            key = _splitmix64(
                (self._stuck_open_seed << 1)
                ^ _splitmix64((canon_from << 24) ^ canon_to)
            )
            return key < self._stuck_open_threshold
        return False

    def pip_blocked(self, canon_from: int, canon_to: int) -> bool:
        """Would using this PIP touch any faulty resource?"""
        return (
            bool(self.unusable[canon_from])
            or bool(self.unusable[canon_to])
            or self.pip_stuck_open(canon_from, canon_to)
        )

    # -- reporting ------------------------------------------------------------

    def counts(self) -> dict[str, int | float]:
        """Summary of the injected fault population."""
        return {
            "dead_wires": int(self.dead.sum()),
            "predriven_wires": int(self.predriven.sum()),
            "stuck_open_explicit": len(self._stuck_open),
            "stuck_open_rate": self._stuck_open_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        c = self.counts()
        return (
            f"FaultModel(dead={c['dead_wires']}, "
            f"predriven={c['predriven_wires']}, "
            f"stuck_open={c['stuck_open_explicit']}"
            f"+{c['stuck_open_rate']:.1%} hashed)"
        )
