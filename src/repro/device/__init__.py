"""Device resource model: instantiated fabric + live routing state.

:class:`~repro.device.fabric.Device` is the behavioural simulation of a
Virtex part; :class:`~repro.device.state.RoutingState` tracks on-PIPs as
a driver/children forest; :mod:`~repro.device.contention` provides the
Section 3.4 contention analysis.
"""

from .contention import audit_no_contention, path_conflicts, would_contend
from .fabric import Device, PipEvent
from .faults import FaultModel
from .state import PipRecord, RoutingState

__all__ = [
    "Device",
    "PipEvent",
    "PipRecord",
    "RoutingState",
    "FaultModel",
    "audit_no_contention",
    "path_conflicts",
    "would_contend",
]
