"""Experiment harness: one runner per experiment of EXPERIMENTS.md.

The paper's evaluation is qualitative (one figure, no numeric tables);
each ``run_eN`` function here quantifies one of its claims and returns a
printable :class:`~repro.bench.metrics.Table`.  ``run_all`` regenerates
every table; the CLI (``python -m repro.bench``) drives it.
"""

from __future__ import annotations

import time

from .. import errors
from ..arch import connectivity, devices, wires
from ..arch.virtex import VirtexArch
from ..arch.wires import WireClass
from ..core import JRouter, Path, Pin, Template
from ..core.tracer import trace_net
from ..arch.templates import TemplateValue as TV
from ..cores import (
    AdderCore,
    ConstantMultiplierCore,
    CounterCore,
    RegisterCore,
    replace_core,
    relocate_core,
)
from ..device.fabric import Device
from ..jbits import write_bitstream
from ..routers import (
    NetSpec,
    route_fanout,
    route_maze,
    route_pathfinder,
    route_point_to_point,
)
from .metrics import Table, best_of, time_call
from .workloads import (
    dataflow_buses,
    high_fanout_net,
    large_bbox_nets,
    random_p2p_nets,
)

__all__ = [
    "run_e1", "run_e2", "run_e3", "run_e4", "run_e5", "run_e6",
    "run_e7", "run_e8", "run_e9", "run_e10", "run_e11", "run_e12", "run_e13", "run_e14",
    "run_e15", "run_e16", "run_e18", "run_e19", "run_e20",
    "run_all", "EXPERIMENTS", "SMOKE_MATRIX",
]

_US = 1e6


# ---------------------------------------------------------------------------
# E1 / Figure 1: architecture census
# ---------------------------------------------------------------------------

def run_e1(parts: tuple[str, ...] = ("XCV50", "XCV300", "XCV1000")) -> Table:
    """Fabric census vs the paper's Section 2 / data-book numbers."""
    t = Table(
        "E1 (Fig. 1): Virtex-class fabric census",
        [
            "part", "CLB array", "singles/dir", "hexes/dir(acc)", "longs H+V",
            "globals", "wires (exist)", "PIP names/tile",
        ],
    )
    for name in parts:
        arch = VirtexArch(name)
        existing = sum(arch.wire_exists(c) for c in range(arch.n_wires))
        t.add(
            name,
            f"{arch.rows}x{arch.cols}",
            wires.N_SINGLES_PER_DIR,
            wires.N_HEXES_PER_DIR,
            f"{wires.N_LONGS}+{wires.N_LONGS}",
            wires.N_GCLK,
            existing,
            connectivity.N_PIP_SLOTS,
        )
    # drive-legality audit: Section 2's rules hold exactly
    cls_of = lambda n: wires.wire_info(n).wire_class  # noqa: E731
    violations = 0
    for (src, dst) in connectivity.PIP_LIST:
        cs, cd = cls_of(src), cls_of(dst)
        ok = (
            (cs is WireClass.SLICE_OUT and cd is WireClass.OUT)
            or (cs is WireClass.OUT)   # outputs drive all lengths + feedback
            or (cs is WireClass.DIRECT and cd in (WireClass.SLICE_IN, WireClass.CTL_IN))
            or (cs in (WireClass.LONG_H, WireClass.LONG_V) and cd is WireClass.HEX)
            or (cs is WireClass.HEX and cd in (WireClass.SINGLE, WireClass.HEX))
            or (
                cs is WireClass.SINGLE
                and cd in (WireClass.SLICE_IN, WireClass.CTL_IN,
                           WireClass.LONG_V, WireClass.SINGLE)
            )
            or (cs is WireClass.GCLK and cd is WireClass.CTL_IN)
            or (cs is WireClass.IOB_IN and cd in (WireClass.SINGLE, WireClass.HEX))
            or (cd is WireClass.IOB_OUT and cs in (WireClass.SINGLE, WireClass.OUT))
        )
        if not ok:
            violations += 1
    t.note(f"drive-legality violations vs Section 2 rules: {violations}")
    t.note("paper: 24 singles/dir, 12 accessible hexes/dir, 12 longs, 4 globals")
    return t


# ---------------------------------------------------------------------------
# E2: routing time vs level of control
# ---------------------------------------------------------------------------

def run_e2(repeats: int = 30) -> Table:
    """Execution-time cost of rising abstraction (Section 3.1's tradeoff)."""
    t = Table(
        "E2: routing time vs level of control (same net, XCV50)",
        ["level", "call form", "time/route (us)", "pips"],
    )
    router = JRouter(part="XCV50")
    src = Pin(5, 7, wires.S1_YQ)

    def lvl1():
        router.route(5, 7, wires.S1_YQ, wires.OUT[1])
        router.route(5, 7, wires.OUT[1], wires.SINGLE_E[5])
        router.route(5, 8, wires.SINGLE_W[5], wires.SINGLE_N[0])
        router.route(6, 8, wires.SINGLE_S[0], wires.S0F[3])
        n = router.device.state.n_pips_on
        router.unroute(src)
        return n

    path = Path(5, 7, [wires.S1_YQ, wires.OUT[1], wires.SINGLE_E[5],
                       wires.SINGLE_N[0], wires.S0F[3]])

    def lvl2():
        router.route(path)
        n = router.device.state.n_pips_on
        router.unroute(src)
        return n

    tmpl = Template([TV.OUTMUX, TV.EAST1, TV.NORTH1, TV.CLBIN])

    def lvl3():
        router.route(src, wires.S0F[3], tmpl)
        n = router.device.state.n_pips_on
        router.unroute(src)
        return n

    sink = Pin(6, 8, wires.S0F[3])

    def lvl4_template():
        router.route(src, sink)
        n = router.device.state.n_pips_on
        router.unroute(src)
        return n

    def lvl4_maze():
        router.try_templates = False
        router.route(src, sink)
        n = router.device.state.n_pips_on
        router.unroute(src)
        router.try_templates = True
        return n

    for label, form, fn in (
        ("1", "route(row,col,from,to) x4", lvl1),
        ("2", "route(Path)", lvl2),
        ("3", "route(Pin,wire,Template)", lvl3),
        ("4a", "route(src,sink) templates", lvl4_template),
        ("4b", "route(src,sink) maze only", lvl4_maze),
    ):
        dt, pips = best_of(fn, repeats=repeats)
        t.add(label, form, dt * _US, pips)
    t.note("paper: higher levels need no architecture knowledge; cost is time")
    return t


# ---------------------------------------------------------------------------
# E3: fanout call vs individual routes
# ---------------------------------------------------------------------------

def run_e3(fanouts: tuple[int, ...] = (2, 4, 8, 16), seed: int = 7) -> Table:
    """Resource usage: route(src, sinks[]) vs per-sink individual routes."""
    t = Table(
        "E3: fanout routing vs individual sink routing (XCV50)",
        ["fanout", "mode", "pips", "wirelength", "time (ms)"],
    )
    for fo in fanouts:
        for mode in ("individual", "fanout"):
            device = Device("XCV50")
            net = high_fanout_net(device.arch, fo, seed=seed)
            src = device.resolve(net.source.row, net.source.col, net.source.wire)
            sinks = [device.resolve(p.row, p.col, p.wire) for p in net.sinks]
            t0 = time.perf_counter()
            if mode == "fanout":
                route_fanout(device, src, sinks, heuristic_weight=0.8)
            else:
                # individual routes share the source's OMUX stage (same
                # physical driver) but not the distribution tree — what a
                # user loop of route(src, sink) calls bought before the
                # fanout call existed
                from ..routers.base import apply_plan

                for s in sinks:
                    reuse = {src} | set(device.state.children_of(src))
                    res = route_maze(device, [src], {s}, reuse=reuse,
                                     use_longs=False, heuristic_weight=0.8)
                    apply_plan(device, res.plan)
            dt = time.perf_counter() - t0
            arch = device.arch
            used = [int(w) for w in device.state.used_wires()]
            wl = sum(
                arch.wire_length(arch.primary_name(w)[2]) for w in used
            )
            t.add(fo, mode, device.state.n_pips_on, wl, dt * 1e3)
    t.note("paper: the fanout call 'minimizes the routing resources used'")
    return t


# ---------------------------------------------------------------------------
# E4: bus routing between core port groups
# ---------------------------------------------------------------------------

def run_e4(width: int = 8) -> Table:
    """Port-to-port bus convenience (multiplier -> adder, Section 3.1)."""
    t = Table(
        "E4: bus routing between core ports (XCV100)",
        ["mode", "user route() calls", "pips", "time (ms)"],
    )

    def build(mode: str):
        router = JRouter(part="XCV100")
        kcm = ConstantMultiplierCore(router, "mult", 2, 2, width=width, constant=11)
        adder = AdderCore(router, "acc", 2, 6, width=width)
        outs = list(kcm.get_ports("out"))[:width]
        ins = list(adder.get_ports("a"))
        base_calls = router.call_count
        base_pips = router.device.state.n_pips_on
        t0 = time.perf_counter()
        if mode == "bus call":
            router.route(outs, ins)
        else:
            for o, i in zip(outs, ins):
                router.route(o, i)
        dt = time.perf_counter() - t0
        return (
            router.call_count - base_calls,
            router.device.state.n_pips_on - base_pips,
            dt,
        )

    for mode in ("per-bit loop", "bus call"):
        calls, pips, dt = build(mode)
        t.add(mode, calls, pips, dt * 1e3)
    t.note("paper: 'the user would not need to connect each bit of the bus'")
    return t


# ---------------------------------------------------------------------------
# E5: run-time core replacement (constant multiplier swap)
# ---------------------------------------------------------------------------

def run_e5(width: int = 4) -> Table:
    """RTR swap: unroute + replace + auto-reconnect vs full rebuild."""
    t = Table(
        "E5: constant-multiplier swap (Section 3.3, XCV100)",
        ["approach", "time (ms)", "pips changed", "frames shipped", "bytes"],
    )

    def fresh():
        router = JRouter(part="XCV100")
        kcm = ConstantMultiplierCore(router, "kcm", 2, 2, width=width, constant=5)
        reg = RegisterCore(router, "reg", 2, 6, width=kcm.out_width)
        router.route(list(kcm.get_ports("out")), list(reg.get_ports("d")))
        assert router.jbits is not None
        router.jbits.memory.clear_dirty()
        return router, kcm, reg

    # approach 1: RTR replace (remembered ports reconnect automatically)
    router, kcm, reg = fresh()
    before = router.device.state.n_pips_on
    t0 = time.perf_counter()
    replace_core(kcm, constant=7)
    dt_replace = time.perf_counter() - t0
    assert router.jbits is not None
    dirty = router.jbits.memory.dirty_frames
    partial = write_bitstream(router.jbits.memory, dirty)
    t.add("unroute+replace+reconnect", dt_replace * 1e3,
          router.device.state.n_pips_on, len(dirty), len(partial))

    # approach 2: full rebuild from scratch (traditional flow)
    t0 = time.perf_counter()
    router2 = JRouter(part="XCV100")
    kcm2 = ConstantMultiplierCore(router2, "kcm", 2, 2, width=width, constant=7)
    reg2 = RegisterCore(router2, "reg", 2, 6, width=kcm2.out_width)
    router2.route(list(kcm2.get_ports("out")), list(reg2.get_ports("d")))
    dt_rebuild = time.perf_counter() - t0
    assert router2.jbits is not None
    full = write_bitstream(router2.jbits.memory)
    t.add("full rebuild + full config", dt_rebuild * 1e3,
          router2.device.state.n_pips_on,
          router2.jbits.memory.n_frames, len(full))
    t.add("note: pips before swap", before, "", "", "")
    t.note("partial reconfiguration ships only dirty frames")
    return t


# ---------------------------------------------------------------------------
# E6: contention detection
# ---------------------------------------------------------------------------

def run_e6(n_nets: int = 30, seed: int = 3) -> Table:
    """Bidirectional-wire contention protection (Section 3.4)."""
    t = Table(
        "E6: contention detection on bidirectional wires (XCV50)",
        ["scenario", "attempts", "exceptions", "silent corruptions"],
    )
    device = Device("XCV50")
    nets = random_p2p_nets(device.arch, n_nets, seed=seed)
    from ..routers.base import apply_plan

    for net in nets:
        src = device.resolve(net.source.row, net.source.col, net.source.wire)
        sink = device.resolve(net.sinks[0].row, net.sinks[0].col, net.sinks[0].wire)
        res = route_point_to_point(device, src, sink, try_templates=False)
        apply_plan(device, res.plan)

    # try to re-drive every used, drivable wire from every fan-in PIP
    attempts = caught = corrupt = 0
    used = [int(w) for w in device.state.used_wires()]
    for w in used:
        if not device.state.is_driven(w):
            continue
        for row, col, from_name, to_name, canon_from in device.fanin_pips(w):
            if canon_from == device.state.pip_of[w].canon_from:
                continue  # same driver: idempotent, not contention
            attempts += 1
            try:
                device.turn_on(row, col, from_name, to_name)
            except errors.ContentionError:
                caught += 1
            except errors.JRouteError:
                caught += 1  # loop protection also prevents double drive
            else:
                corrupt += 1
    t.add("re-drive routed wires", attempts, caught, corrupt)

    # is_on query throughput
    q = 0
    t0 = time.perf_counter()
    for w in used[:500]:
        r, c, n = device.arch.primary_name(w)
        device.is_on(r, c, n)
        q += 1
    dt = time.perf_counter() - t0
    t.note(f"isOn throughput: {q / dt:,.0f} queries/s")
    t.note("paper: 'an exception is thrown ... the router protects the device'")
    return t


# ---------------------------------------------------------------------------
# E7: JRoute vs raw JBits
# ---------------------------------------------------------------------------

def run_e7(width: int = 8) -> Table:
    """API-call burden: port-level JRoute vs PIP-level JBits (Section 4)."""
    t = Table(
        "E7: JRoute vs routing with raw JBits (XCV100)",
        ["interface", "user calls", "distinct wire names typed", "arch knowledge"],
    )
    router = JRouter(part="XCV100")
    kcm = ConstantMultiplierCore(router, "mult", 2, 2, width=width, constant=9)
    adder = AdderCore(router, "add", 2, 6, width=width)
    base_calls = router.call_count
    router.route(list(kcm.get_ports("out"))[:width], list(adder.get_ports("a")))
    jroute_calls = router.call_count - base_calls

    from ..debug.netlist import export_netlist

    netlist = export_netlist(router.device)
    # what the same connectivity costs through raw JBits: one set() per PIP
    pip_calls = sum(len(n["pips"]) for n in netlist)
    names_typed = set()
    for n in netlist:
        for p in n["pips"]:
            names_typed.add(p["from"])
            names_typed.add(p["to"])
    t.add("JRoute port bus", jroute_calls, 0, "none (ports only)")
    t.add("raw JBits PIPs", pip_calls, len(names_typed), "full routing arch")
    t.note("paper: 'a user can create designs without knowledge of the routing "
           "architecture by using port to port connections'")
    return t


# ---------------------------------------------------------------------------
# E8: router shoot-out
# ---------------------------------------------------------------------------

def run_e8(n_nets: int = 40, seed: int = 11) -> Table:
    """Greedy JRoute calls vs maze variants vs PathFinder baseline."""
    t = Table(
        "E8: router comparison on random workloads (XCV50)",
        ["router", "nets routed", "failed", "pips", "time (ms)"],
    )
    arch = VirtexArch("XCV50")
    nets = random_p2p_nets(arch, n_nets, seed=seed)
    from ..routers.base import apply_plan

    def run_sequential(**kw):
        device = Device("XCV50")
        ok = fail = 0
        t0 = time.perf_counter()
        for net in nets:
            src = device.resolve(net.source.row, net.source.col, net.source.wire)
            sink = device.resolve(net.sinks[0].row, net.sinks[0].col, net.sinks[0].wire)
            try:
                res = route_point_to_point(device, src, sink, **kw)
                apply_plan(device, res.plan)
                ok += 1
            except errors.JRouteError:
                fail += 1
        return ok, fail, device.state.n_pips_on, time.perf_counter() - t0

    for label, kw in (
        ("greedy templates+maze", dict(try_templates=True)),
        ("greedy maze (Dijkstra)", dict(try_templates=False)),
        ("greedy A* (w=0.8)", dict(try_templates=False, heuristic_weight=0.8)),
        ("greedy maze, no longs", dict(try_templates=False, use_longs=False)),
    ):
        ok, fail, pips, dt = run_sequential(**kw)
        t.add(label, ok, fail, pips, dt * 1e3)

    # bidirectional meet-in-the-middle (cost-optimal, fewer expansions)
    from ..routers.bidir import route_bidirectional
    from ..routers.base import apply_plan as _apply

    device_bi = Device("XCV50")
    ok = fail = 0
    t0 = time.perf_counter()
    for net in nets:
        src = device_bi.resolve(net.source.row, net.source.col, net.source.wire)
        sink = device_bi.resolve(net.sinks[0].row, net.sinks[0].col,
                                 net.sinks[0].wire)
        try:
            res = route_bidirectional(device_bi, src, sink)
            _apply(device_bi, res.plan)
            ok += 1
        except errors.JRouteError:
            fail += 1
    t.add("bidirectional Dijkstra", ok, fail, device_bi.state.n_pips_on,
          (time.perf_counter() - t0) * 1e3)

    device = Device("XCV50")
    specs = []
    for net in nets:
        src = device.resolve(net.source.row, net.source.col, net.source.wire)
        sink = device.resolve(net.sinks[0].row, net.sinks[0].col, net.sinks[0].wire)
        specs.append(NetSpec.of(src, [sink]))
    t0 = time.perf_counter()
    res = route_pathfinder(device, specs)
    dt = time.perf_counter() - t0
    t.add(
        f"PathFinder ({res.iterations} iters)",
        len(specs) if res.converged else 0,
        0 if res.converged else len(specs),
        device.state.n_pips_on,
        dt * 1e3,
    )
    t.note("paper: 'in an RTR environment traditional routing algorithms "
           "require too much time'")
    return t


# ---------------------------------------------------------------------------
# E9: template hit rate vs displacement
# ---------------------------------------------------------------------------

def run_e9(samples_per_bucket: int = 12, seed: int = 23) -> Table:
    """Predefined-template success rate as a function of net span."""
    t = Table(
        "E9: predefined templates vs maze fallback (XCV50, empty fabric)",
        ["span bucket", "nets", "template hits", "maze fallbacks",
         "template time (us)", "maze time (us)"],
    )
    arch = VirtexArch("XCV50")
    buckets = ((1, 3), (4, 7), (8, 12), (13, 20), (21, 30))
    for lo, hi in buckets:
        nets = random_p2p_nets(
            arch, samples_per_bucket, seed=seed + lo, min_span=lo, max_span=hi
        )
        hits = falls = 0
        t_tmpl = t_maze = 0.0
        for net in nets:
            device = Device("XCV50")
            src = device.resolve(net.source.row, net.source.col, net.source.wire)
            sink = device.resolve(net.sinks[0].row, net.sinks[0].col, net.sinks[0].wire)
            dt, res = time_call(
                lambda: route_point_to_point(device, src, sink, try_templates=True)
            )
            if res.method == "template":
                hits += 1
                t_tmpl += dt
            else:
                falls += 1
            dtm, _ = time_call(
                lambda: route_point_to_point(device, src, sink, try_templates=False)
            )
            t_maze += dtm
        n = len(nets)
        t.add(
            f"{lo}-{hi}",
            n,
            hits,
            falls,
            (t_tmpl / hits * _US) if hits else float("nan"),
            t_maze / n * _US,
        )
    t.note("paper: templates 'reduce the search space'; maze is the fallback")
    return t


# ---------------------------------------------------------------------------
# E10: scaling across the family
# ---------------------------------------------------------------------------

def run_e10(parts: tuple[str, ...] | None = None) -> Table:
    """Fabric scale and cross-chip route cost, XCV50 .. XCV1000."""
    t = Table(
        "E10: scaling across the Virtex family",
        ["part", "CLBs", "wires", "build (ms)", "cross-chip route (ms)",
         "config frames", "full bitstream (KiB)"],
    )
    parts = parts if parts is not None else devices.part_names()
    for name in parts:
        dt_build, device = time_call(lambda: Device(name))
        arch = device.arch
        src = device.resolve(1, 1, wires.S0_X)
        sink = device.resolve(arch.rows - 2, arch.cols - 2, wires.S1G[2])
        dt_route, res = time_call(
            lambda: route_maze(device, [src], {sink}, heuristic_weight=0.8)
        )
        from ..jbits import ConfigMemory

        mem = ConfigMemory(arch)
        t.add(
            name,
            arch.n_tiles,
            arch.n_wires,
            dt_build * 1e3,
            dt_route * 1e3,
            mem.n_frames,
            mem.n_frames * mem.frame_bits / 32 * 4 / 1024,
        )
    return t


# ---------------------------------------------------------------------------
# E11: long-line ablation
# ---------------------------------------------------------------------------

def run_e11(n_nets: int = 10, seed: int = 31) -> Table:
    """Long lines on large-bounding-box nets (Section 6 future work)."""
    t = Table(
        "E11: long-line ablation on large-bbox nets (XCV300)",
        ["mode", "nets routed", "pips", "route cost", "time (ms)"],
    )
    arch = VirtexArch("XCV300")
    nets = large_bbox_nets(arch, n_nets, seed=seed)
    from ..routers.base import apply_plan, plan_cost

    for label, use_longs in (("no longs (paper today)", False),
                             ("with longs (future work)", True)):
        device = Device("XCV300")
        ok = 0
        cost = 0.0
        t0 = time.perf_counter()
        for net in nets:
            src = device.resolve(net.source.row, net.source.col, net.source.wire)
            sink = device.resolve(net.sinks[0].row, net.sinks[0].col, net.sinks[0].wire)
            try:
                res = route_maze(device, [src], {sink}, use_longs=use_longs,
                                 heuristic_weight=0.5)
            except errors.UnroutableError:
                continue
            apply_plan(device, res.plan)
            cost += plan_cost(device, res.plan)
            ok += 1
        dt = time.perf_counter() - t0
        t.add(label, ok, device.state.n_pips_on, cost, dt * 1e3)
    t.note("paper: longs 'would improve the routing of nets with large "
           "bounding boxes'")
    return t


# ---------------------------------------------------------------------------
# E12: core relocation
# ---------------------------------------------------------------------------

def run_e12(width: int = 4) -> Table:
    """Relocate a counter core; partial-reconfig cost vs full config."""
    t = Table(
        "E12: counter relocation (Section 3.3, XCV100)",
        ["step", "time (ms)", "pips on", "frames shipped", "bytes"],
    )
    router = JRouter(part="XCV100")
    ctr = CounterCore(router, "ctr", 2, 2, width=width)
    reg = RegisterCore(router, "mon", 2, 8, width=width)
    router.route(list(ctr.get_ports("q")), list(reg.get_ports("d")))
    assert router.jbits is not None
    full = write_bitstream(router.jbits.memory)
    t.add("initial build", "", router.device.state.n_pips_on,
          router.jbits.memory.n_frames, len(full))
    router.jbits.memory.clear_dirty()
    t0 = time.perf_counter()
    relocate_core(ctr, 8, 2)
    dt = time.perf_counter() - t0
    dirty = router.jbits.memory.dirty_frames
    partial = write_bitstream(router.jbits.memory, dirty)
    t.add("relocate (2,2)->(8,2)", dt * 1e3, router.device.state.n_pips_on,
          len(dirty), len(partial))
    t.note("remembered port connections re-route automatically after the move")
    return t


# ---------------------------------------------------------------------------
# E13: skew-aware routing (Section 6 future work: "skew minimization")
# ---------------------------------------------------------------------------

def run_e13(fanouts: tuple[int, ...] = (4, 8), seed: int = 5) -> Table:
    """Skew of greedy vs balanced vs equalised fanout routing."""
    from ..timing import equalize_skew, net_timing, route_balanced_fanout

    t = Table(
        "E13: clock-style fanout skew (Section 6 future work, XCV50)",
        ["fanout", "strategy", "pips", "skew (ns)", "max delay (ns)"],
    )
    for fo in fanouts:
        for strategy in ("greedy", "balanced", "greedy+equalize"):
            device = Device("XCV50")
            net = high_fanout_net(device.arch, fo, seed=seed)
            src = device.resolve(net.source.row, net.source.col, net.source.wire)
            sinks = [device.resolve(p.row, p.col, p.wire) for p in net.sinks]
            if strategy == "balanced":
                route_balanced_fanout(device, src, sinks)
            else:
                route_fanout(device, src, sinks, heuristic_weight=0.8)
                if strategy == "greedy+equalize":
                    equalize_skew(device, src, tolerance=0.5)
            timing = net_timing(device, src)
            t.add(fo, strategy, device.state.n_pips_on, timing.skew,
                  timing.max_delay)
    t.note("dedicated global nets remain the zero-skew option for clocks")
    return t


# ---------------------------------------------------------------------------
# E14: IOB routing (Section 6 future work: "Virtex features such as IOBs")
# ---------------------------------------------------------------------------

def run_e14(width: int = 8) -> Table:
    """Off-chip I/O: pad bus -> register -> pad bus, measured end to end."""
    from ..cores import RegisterCore
    from ..io import IoRing, PadDirection, Side

    t = Table(
        "E14: IOB ring routing (Section 6 future work, XCV100)",
        ["step", "pips", "time (ms)", "detail"],
    )
    router = JRouter(part="XCV100")
    ring = IoRing(router.device.arch)
    t.add("pad inventory", "", "", f"{ring.n_pads()} pads "
          f"({wires.N_IOB_PER_TILE} in + {wires.N_IOB_PER_TILE} out per "
          f"perimeter CLB)")
    reg = RegisterCore(router, "reg", 8, 8, width=width)
    in_bus = ring.bus(Side.WEST, PadDirection.IN, width, offset=18)
    out_bus = ring.bus(Side.EAST, PadDirection.OUT, width, offset=18)
    before = router.device.state.n_pips_on
    dt_in, _ = time_call(lambda: router.route(in_bus, list(reg.get_ports("d"))))
    mid = router.device.state.n_pips_on
    t.add("pads -> register d", mid - before, dt_in * 1e3, f"{width} bits from WEST")
    dt_out, _ = time_call(lambda: router.route(list(reg.get_ports("q")), out_bus))
    t.add("register q -> pads", router.device.state.n_pips_on - mid,
          dt_out * 1e3, f"{width} bits to EAST")
    # functional check through the simulator
    from ..sim import Simulator

    sim = Simulator(router.device, router.jbits)
    sim.drive_bus(in_bus, 0xA5 & ((1 << width) - 1))
    sim.step()
    got = sim.read_bus(out_bus)
    t.add("simulated loopback", "", "", f"drove 0x{0xA5 & ((1 << width) - 1):02X}, "
          f"read 0x{got:02X} after one clock")
    t.note("paper: 'Virtex features such as IOBs ... will be supported'")
    return t


# ---------------------------------------------------------------------------
# E15: floorplan defragmentation (an RTR tool built on the API, Section 1)
# ---------------------------------------------------------------------------

def run_e15() -> Table:
    """Fragmentation -> compaction: free-space recovery via relocation."""
    from ..cores import AccumulatorCore, ConstantCore, RegisterCore
    from ..cores.core import _floorplan_of
    from ..tools import defrag, find_fit, largest_free_rect

    t = Table(
        "E15: run-time floorplan defragmentation (XCV100)",
        ["state", "largest free rect", "18x24 core fits", "moves", "time (ms)"],
    )
    router = JRouter(part="XCV100")
    acc = AccumulatorCore(router, "acc", 8, 12, width=4)
    k = ConstantCore(router, "k", 3, 22, width=4, value=3)
    mon = RegisterCore(router, "mon", 14, 5, width=4)
    router.route(list(k.get_ports("out")), list(acc.get_ports("in")))
    router.route(list(acc.get_ports("q")), list(mon.get_ports("d")))
    fp = _floorplan_of(router)
    before = largest_free_rect(fp)
    t.add("fragmented", f"{before.height}x{before.width}",
          find_fit(fp, 18, 24) is not None, "", "")
    t0 = time.perf_counter()
    result = defrag(router, [acc, k, mon])
    dt = time.perf_counter() - t0
    after = result.largest_free_after
    t.add("defragmented", f"{after.height}x{after.width}",
          find_fit(fp, 18, 24) is not None, len(result.moves), dt * 1e3)
    t.note("every move is a Section 3.3 relocation with automatic reconnection")
    return t


# ---------------------------------------------------------------------------
# E16: fault-injected fabrics + rip-up/retry (robustness extension)
# ---------------------------------------------------------------------------

def run_e16(
    n_nets: int = 60,
    seed: int = 17,
    fault_seed: int = 5,
    rates: tuple[float, ...] = (0.0, 0.01, 0.05),
    smoke: bool = False,
) -> Table:
    """Route-success rate and retry overhead under injected PIP faults."""
    from ..core import RetryPolicy
    from ..device import FaultModel

    if smoke:
        n_nets = min(n_nets, 24)
    t = Table(
        "E16: fault-injected routing with rip-up/retry (XCV50)",
        ["stuck-open rate", "retry", "routed", "success %", "ripped",
         "faults avoided", "time (ms)"],
    )
    arch = VirtexArch("XCV50")
    nets = random_p2p_nets(arch, n_nets, seed=seed)
    for rate in rates:
        for policy in (None, RetryPolicy(max_attempts=4)):
            faults = (
                FaultModel.random(arch, seed=fault_seed, stuck_open_rate=rate)
                if rate else None
            )
            router = JRouter(part="XCV50", faults=faults, retry=policy)
            ok = ripped = avoided = 0
            t0 = time.perf_counter()
            for net in nets:
                try:
                    router.route(net.source, net.sinks[0])
                # failures are the point of fault injection; the outcome
                # is accounted from last_report just below
                except errors.JRouteError:  # repro: noqa RPR006
                    pass
                rep = router.last_report
                if rep is not None:
                    ok += rep.success
                    ripped += len(rep.ripped_nets)
                    avoided += rep.faults_avoided
            dt = (time.perf_counter() - t0) * 1e3
            t.add(f"{rate:.0%}", "on" if policy else "off",
                  f"{ok}/{n_nets}", f"{100 * ok / n_nets:.1f}",
                  ripped, avoided, dt)
    t.note("acceptance target: >= 90% success at a 5% stuck-open rate; the "
           "retry rows show the recovery loop's cost on the same workload")
    return t


# ---------------------------------------------------------------------------
# E18: durable sessions — WAL overhead, crash recovery, scrubbing, deadlines
# ---------------------------------------------------------------------------

def run_e18(
    n_nets: int = 40,
    seed: int = 23,
    n_seu: int = 12,
    smoke: bool = False,
) -> Table:
    """Durability costs and guarantees: WAL, recovery, scrub, deadlines."""
    import os
    import tempfile

    from ..core import Deadline, DurableSession, Scrubber, inject_seu, recover
    from ..jbits.readback import verify_against_device

    if smoke:
        n_nets = min(n_nets, 16)
        n_seu = min(n_seu, 6)
    t = Table(
        "E18: durable routing sessions (XCV50)",
        ["stage", "detail", "result", "time (ms)"],
    )
    arch = VirtexArch("XCV50")
    nets = random_p2p_nets(arch, n_nets, seed=seed)

    def route_all(router):
        ok = 0
        for net in nets:
            try:
                ok += bool(router.route(net.source, net.sinks[0]))
            # unroutable nets only lower the ok count; the bench
            # compares ok across configurations
            except errors.JRouteError:  # repro: noqa RPR006
                pass
        return ok

    # baseline vs journaled session (WAL fsync-per-event overhead)
    plain = JRouter(part="XCV50")
    dt_plain, ok_plain = time_call(lambda: route_all(plain))
    t.add("route, no WAL", f"{n_nets} p2p nets", f"{ok_plain} routed",
          dt_plain * 1e3)
    tmp = tempfile.mkdtemp(prefix="e18-")
    wal_path = os.path.join(tmp, "session.wal")
    live = JRouter(part="XCV50")
    with DurableSession(live, wal_path, checkpoint_every=64) as session:
        dt_wal, ok_wal = time_call(lambda: route_all(live))
        events = session.seq
    t.add("route, WAL + ckpt/64", f"{events} events journaled",
          f"{ok_wal} routed "
          f"(+{100 * (dt_wal - dt_plain) / dt_plain:.0f}% overhead)",
          dt_wal * 1e3)

    # crash recovery: rebuild from the log, prove state identity
    dt_rec, (recovered, report) = time_call(lambda: recover(wal_path))
    identical = (
        recovered.device.state.fingerprint() == live.device.state.fingerprint()
        and recovered.jbits.memory == live.jbits.memory
    )
    t.add("crash recovery", report.summary(),
          f"state identical: {identical}", dt_rec * 1e3)

    # scrubbing: seeded SEUs detected, classified, repaired
    scrubber = Scrubber(live.jbits.memory, device=live.device)
    inject_seu(live.jbits.memory, n_flips=n_seu, seed=seed)
    dt_scrub, scrub_report = time_call(scrubber.scrub)
    coherent = not verify_against_device(live.jbits.memory, live.device)
    t.add("SEU scrub", scrub_report.summary(),
          f"coherent after repair: {coherent}", dt_scrub * 1e3)

    # deadline-bounded search: tiny budget => partial reports, no hangs
    bounded = JRouter(part="XCV50", deadline_ms=0.05)
    partial = full = 0
    t0 = time.perf_counter()
    for net in nets:
        bounded.route(net.source, net.sinks[0])
        rep = bounded.last_report
        if rep is not None and (rep.timed_out or rep.breaker_open):
            partial += 1
        else:
            full += 1
    dt_deadline = (time.perf_counter() - t0) * 1e3
    t.add("deadline 0.05 ms/net", f"{partial} partial, {full} completed",
          "no hang, no exception escape", dt_deadline)
    t.note("WAL overhead buys replayable sessions; scrub target: 100% of "
           "seeded upsets repaired without touching clean frames")
    return t


def run_e19(
    n_plans: int = 256,
    seed: int = 19,
    smoke: bool = False,
) -> Table:
    """Static-analysis throughput and the seeded-defect detection rate."""
    import os
    import tempfile

    from ..analysis import analyze_paths, default_target
    from ..analysis import routelint
    from ..analysis.plans import load_plans, random_plan_corpus
    from ..core import DurableSession
    from ..core.wal import write_checkpoint

    if smoke:
        n_plans = min(n_plans, 32)
    t = Table(
        "E19: static analysis — lint throughput and detection",
        ["stage", "detail", "result", "time (ms)"],
    )
    arch = VirtexArch("XCV50")

    _, named = load_plans(
        random_plan_corpus("XCV50", n_plans=n_plans, seed=seed)
    )
    n_pips = sum(len(pips) for _, pips in named)
    dt, findings = time_call(lambda: routelint.lint_plans(arch, named))
    t.add("plan lint", f"{n_plans} plans / {n_pips} pips",
          f"{len(findings)} findings, {n_pips / dt:,.0f} pips/s", dt * 1e3)

    _, seeded = load_plans(
        random_plan_corpus(
            "XCV50", n_plans=n_plans, seed=seed, conflict_rate=1.0
        )
    )
    planted = next(
        (len(p) for name, p in seeded if name == "conflict-seed"), 0
    )
    dt, findings = time_call(lambda: routelint.lint_plans(arch, seeded))
    hits = sum(1 for f in findings if f.rule == "RL004")
    t.add("conflict detection", f"{planted} conflicts planted",
          f"{hits}/{planted} detected", dt * 1e3)

    tmp = tempfile.mkdtemp(prefix="e19-")
    wal_path = os.path.join(tmp, "session.wal")
    ckpt_path = os.path.join(tmp, "session.ckpt")
    router = JRouter(part="XCV50")
    pairs = [(net.source, net.sinks[0])
             for net in random_p2p_nets(arch, 8 if smoke else 24, seed=seed)]
    with DurableSession(router, wal_path) as session:
        for src, sink in pairs:
            router.route(src, sink)
        write_checkpoint(ckpt_path, router.device, seq=session.seq,
                         netdb=router.netdb)
    dt, findings = time_call(
        lambda: routelint.lint_wal_file(wal_path)
        + routelint.lint_checkpoint_file(ckpt_path, wal_path=wal_path)
    )
    t.add("wal+ckpt lint", f"{len(pairs)}-net session journal",
          f"{len(findings)} findings", dt * 1e3)

    dt_syn, syntactic = time_call(
        lambda: analyze_paths([default_target()], interprocedural=False)
    )
    t.add("codelint sweep", f"{len(syntactic.inputs)} source files",
          "syntactic layers only", dt_syn * 1e3)
    dt, report = time_call(lambda: analyze_paths([default_target()]))
    t.add("interproc sweep", f"{len(report.inputs)} source files",
          f"{len(report.findings)} findings, "
          f"{len(report.suppressed)} suppressed", dt * 1e3)
    t.note("merge gate: `repro analyze --strict` requires 0 findings on "
           "the package source (call-graph/CFG passes included); "
           "suppressions stay visible, never silent")
    return t


def run_e20(
    n_jobs: int = 200,
    seed: int = 20,
    smoke: bool = False,
) -> Table:
    """Service-level robustness: the daemon under load, overload & chaos.

    Boots a real ``repro serve`` stack (HTTP front door, admission
    queue, spawned process workers with WAL shards) and drives it
    through four phases: steady concurrent load, an overload burst that
    must shed, a chaos window (worker SIGKILL + WAL truncation during
    live traffic), and a graceful drain — then audits the job journal
    for the zero-lost-jobs / exactly-once invariant.
    """
    import os
    import tempfile

    from ..service import ChaosMonkey, ServiceConfig
    from ..service.loadgen import (
        audit_journal, await_terminal, burst, drive_load, running_service,
    )

    if smoke:
        n_jobs = min(n_jobs, 48)
    t = Table(
        "E20: routing-as-a-service — load, overload shedding, chaos",
        ["phase", "detail", "result", "time (ms)"],
    )
    arch = VirtexArch("XCV50")
    nets = random_p2p_nets(arch, n_jobs + 96, seed=seed, min_span=2,
                           max_span=8)
    pairs = [
        (
            (net.source.row, net.source.col, net.source.wire),
            (net.sinks[0].row, net.sinks[0].col, net.sinks[0].wire),
        )
        for net in nets
    ]
    data_dir = tempfile.mkdtemp(prefix="e20-")
    config = ServiceConfig(
        workers=2,
        queue_depth=32,
        tenant_quota=24,
        heartbeat_s=0.2,
        heartbeat_misses=8,
        default_deadline_ms=30_000.0,
        job_max_attempts=4,
        # the post-run audit needs the full accepted/terminal trail
        journal_max_bytes=None,
    )
    with running_service(config, data_dir) as svc:
        host, port = svc.host, svc.port

        dt, load = time_call(lambda: drive_load(
            host, port, pairs[:n_jobs], threads=4,
        ))
        t.add("load", f"{n_jobs} jobs, 4 clients", load.row(), dt * 1e3)

        # stall both workers through their next batch so the burst hits
        # a queue that cannot drain: depth past the bound must shed 429
        for wid in range(config.workers):
            svc.supervisor.send_chaos(wid, {"stall_s": 1.0})
        dt, (accepted, rejected) = time_call(lambda: burst(
            host, port, pairs[: config.queue_depth * 2],
        ))
        await_terminal(host, port, accepted)
        t.add(
            "overload", f"{config.queue_depth * 2} job burst "
            f"(queue bound {config.queue_depth}, workers stalled)",
            f"{rejected} shed with retry-after, "
            f"{len(accepted)} accepted, all terminal",
            dt * 1e3,
        )

        monkey = ChaosMonkey(
            svc.supervisor, seed=seed, period_s=0.25,
            kill=True, stall_s=2.5, truncate_bytes=256,
        )
        monkey.inject_kill(0)  # scripted: one guaranteed mid-load kill
        monkey.start()
        dt, chaos = time_call(lambda: drive_load(
            host, port, pairs[n_jobs:n_jobs + 48], threads=4,
        ))
        monkey.stop()
        kills = sum(1 for e in monkey.events if e["action"] == "kill")
        t.add(
            "chaos", f"48 jobs under {len(monkey.events)} injections "
            f"({kills} kills)",
            chaos.row(), dt * 1e3,
        )
    audit = audit_journal(os.path.join(data_dir, "jobs.journal"))
    restarts = sum(
        w["restarts"] for w in svc.supervisor.stats()["workers"]
    )
    t.add(
        "audit", f"{audit['accepted']} accepted, {restarts} worker "
        f"restart(s)",
        f"lost={len(audit['lost'])} dup={len(audit['duplicates'])} "
        f"drained={audit['drained']}",
        0.0,
    )
    assert not audit["lost"], f"jobs lost: {audit['lost']}"
    assert not audit["duplicates"], f"dup terminals: {audit['duplicates']}"
    return t


EXPERIMENTS = {
    "e1": run_e1, "e2": run_e2, "e3": run_e3, "e4": run_e4,
    "e5": run_e5, "e6": run_e6, "e7": run_e7, "e8": run_e8,
    "e9": run_e9, "e10": run_e10, "e11": run_e11, "e12": run_e12,
    "e13": run_e13, "e14": run_e14, "e15": run_e15, "e16": run_e16,
    "e18": run_e18,
    "e19": run_e19,
    "e20": run_e20,
    # aliases for the CLI's --experiment flag
    "faults": run_e16,
    "durability": run_e18,
    "analysis": run_e19,
    "service": run_e20,
}

#: the experiments `--smoke` runs when none are named.  EXPLICIT so that
#: adding an experiment forces a decision about CI coverage — a new entry
#: either joins the matrix or is visibly absent from it, never silently
#: dropped.
SMOKE_MATRIX = ("e16", "e18", "e19", "e20")


def run_all(
    names: tuple[str, ...] | None = None, *, smoke: bool = False
) -> list[Table]:
    """Run the requested experiments (all by default), printing each.

    ``smoke=True`` asks each runner that supports it for a reduced
    workload, for use as a CI smoke check; with no explicit ``names`` it
    runs exactly :data:`SMOKE_MATRIX`.
    """
    import inspect

    if smoke and names is None:
        names = SMOKE_MATRIX
    tables = []
    seen: set = set()
    for key in names if names is not None else tuple(EXPERIMENTS):
        fn = EXPERIMENTS[key.lower()]
        if fn in seen:  # aliases ("faults" -> e16) run once
            continue
        seen.add(fn)
        kwargs = {}
        if smoke and "smoke" in inspect.signature(fn).parameters:
            kwargs["smoke"] = True
        table = fn(**kwargs)
        table.print()
        tables.append(table)
    return tables
