"""Benchmark harness: workloads, metrics and the experiment runners."""

from .experiments import EXPERIMENTS, run_all
from .metrics import Table, best_of, time_call
from .workloads import (
    NetWorkload,
    dataflow_buses,
    high_fanout_net,
    large_bbox_nets,
    random_p2p_nets,
)

__all__ = [
    "EXPERIMENTS",
    "run_all",
    "Table",
    "best_of",
    "time_call",
    "NetWorkload",
    "dataflow_buses",
    "high_fanout_net",
    "large_bbox_nets",
    "random_p2p_nets",
]
