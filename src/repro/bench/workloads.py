"""Workload generators for the experiment harness.

All generators are deterministic given a seed, and produce pin-level nets
over a device's CLB array: random point-to-point sets, structured
dataflow buses (the paper's motivating design style), high-fanout nets
and large-bounding-box nets for the long-line study.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..arch import wires
from ..arch.virtex import VirtexArch
from ..core.endpoints import Pin

__all__ = [
    "NetWorkload",
    "random_p2p_nets",
    "high_fanout_net",
    "dataflow_buses",
    "large_bbox_nets",
    "SINK_WIRES",
    "SOURCE_WIRES",
]

#: All slice-output names usable as net sources.
SOURCE_WIRES = tuple(wires.ALL_SOURCE_NAMES)
#: All LUT-input names usable as net sinks (excludes control pins, which
#: global nets also target).
SINK_WIRES = tuple(
    n for n in wires.ALL_SINK_NAMES
    if wires.wire_info(n).wire_class is wires.WireClass.SLICE_IN
)


@dataclass(slots=True)
class NetWorkload:
    """One net: a source pin and its sink pins."""

    source: Pin
    sinks: list[Pin]

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def bbox(self) -> tuple[int, int]:
        """(height, width) of the net's bounding box in CLBs."""
        rows = [self.source.row] + [s.row for s in self.sinks]
        cols = [self.source.col] + [s.col for s in self.sinks]
        return max(rows) - min(rows) + 1, max(cols) - min(cols) + 1


class _PinPool:
    """Hands out source/sink pins without reusing a physical pin."""

    def __init__(self, arch: VirtexArch, rng: random.Random) -> None:
        self.arch = arch
        self.rng = rng
        self._used_sources: set[tuple[int, int, int]] = set()
        self._used_sinks: set[tuple[int, int, int]] = set()

    def source_at(self, row: int, col: int) -> Pin:
        names = list(SOURCE_WIRES)
        self.rng.shuffle(names)
        for n in names:
            key = (row, col, n)
            if key not in self._used_sources:
                self._used_sources.add(key)
                return Pin(row, col, n)
        raise RuntimeError(f"tile ({row},{col}) has no free source pins")

    def sink_at(self, row: int, col: int) -> Pin:
        names = list(SINK_WIRES)
        self.rng.shuffle(names)
        for n in names:
            key = (row, col, n)
            if key not in self._used_sinks:
                self._used_sinks.add(key)
                return Pin(row, col, n)
        raise RuntimeError(f"tile ({row},{col}) has no free sink pins")

    def random_tile(self) -> tuple[int, int]:
        return (
            self.rng.randrange(self.arch.rows),
            self.rng.randrange(self.arch.cols),
        )


def random_p2p_nets(
    arch: VirtexArch,
    n: int,
    *,
    seed: int = 0,
    min_span: int = 1,
    max_span: int | None = None,
) -> list[NetWorkload]:
    """``n`` random point-to-point nets with manhattan span in range."""
    rng = random.Random(seed)
    pool = _PinPool(arch, rng)
    max_span = max_span if max_span is not None else arch.rows + arch.cols
    nets: list[NetWorkload] = []
    attempts = 0
    while len(nets) < n:
        attempts += 1
        if attempts > 100 * n:
            raise RuntimeError("could not generate requested workload")
        sr, sc = pool.random_tile()
        tr, tc = pool.random_tile()
        span = abs(sr - tr) + abs(sc - tc)
        if not min_span <= span <= max_span:
            continue
        nets.append(NetWorkload(pool.source_at(sr, sc), [pool.sink_at(tr, tc)]))
    return nets


def high_fanout_net(
    arch: VirtexArch, fanout: int, *, seed: int = 0, radius: int | None = None
) -> NetWorkload:
    """One net with ``fanout`` sinks scattered around a central source."""
    rng = random.Random(seed)
    pool = _PinPool(arch, rng)
    cr, cc = arch.rows // 2, arch.cols // 2
    radius = radius if radius is not None else max(arch.rows, arch.cols) // 2 - 1
    source = pool.source_at(cr, cc)
    sinks: list[Pin] = []
    seen_tiles: set[tuple[int, int]] = set()
    attempts = 0
    while len(sinks) < fanout:
        attempts += 1
        if attempts > 1000 * fanout:
            raise RuntimeError("could not scatter fanout sinks")
        r = cr + rng.randint(-radius, radius)
        c = cc + rng.randint(-radius, radius)
        if not arch.in_bounds(r, c) or (r, c) == (cr, cc):
            continue
        if (r, c) in seen_tiles and rng.random() < 0.7:
            continue  # prefer spreading over clustering
        seen_tiles.add((r, c))
        sinks.append(pool.sink_at(r, c))
    return NetWorkload(source, sinks)


def dataflow_buses(
    arch: VirtexArch,
    *,
    stages: int,
    width: int,
    stage_gap: int = 3,
    origin: tuple[int, int] = (1, 1),
    seed: int = 0,
) -> list[list[tuple[Pin, Pin]]]:
    """Stage-to-stage buses of a pipeline (the paper's dataflow motif).

    Returns one list of (source, sink) pin pairs per stage boundary:
    stage ``i`` column drives stage ``i+1`` column, ``width`` bits each.
    """
    rng = random.Random(seed)
    pool = _PinPool(arch, rng)
    r0, c0 = origin
    rows_needed = -(-width // 4)
    if r0 + rows_needed > arch.rows or c0 + stages * stage_gap > arch.cols:
        raise RuntimeError("pipeline does not fit on the device")
    buses: list[list[tuple[Pin, Pin]]] = []
    for s in range(stages - 1):
        src_col = c0 + s * stage_gap
        dst_col = c0 + (s + 1) * stage_gap
        pairs: list[tuple[Pin, Pin]] = []
        for bit in range(width):
            row = r0 + bit // 4
            pairs.append((pool.source_at(row, src_col), pool.sink_at(row, dst_col)))
        buses.append(pairs)
    return buses


def large_bbox_nets(
    arch: VirtexArch,
    n: int,
    *,
    seed: int = 0,
    min_span: int | None = None,
) -> list[NetWorkload]:
    """Nets whose bounding boxes cover most of the chip (long-line study)."""
    min_span = (
        min_span if min_span is not None else (arch.rows + arch.cols) * 2 // 3
    )
    return random_p2p_nets(arch, n, seed=seed, min_span=min_span)
