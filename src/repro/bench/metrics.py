"""Measurement and table-formatting utilities for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["Table", "time_call", "best_of"]


@dataclass(slots=True)
class Table:
    """A printable experiment-result table (one per table/figure)."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *row: Any) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(self.headers)}"
            )
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def _formatted(self) -> list[list[str]]:
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                if v == 0:
                    return "0"
                if abs(v) >= 1000:
                    return f"{v:,.0f}"
                if abs(v) >= 1:
                    return f"{v:.2f}"
                return f"{v:.4f}"
            return str(v)

        return [[fmt(v) for v in row] for row in self.rows]

    def render(self) -> str:
        body = self._formatted()
        widths = [
            max(len(str(h)), *(len(r[i]) for r in body)) if body else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in body:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]


def time_call(fn: Callable[[], Any]) -> tuple[float, Any]:
    """Wall-clock one call: returns (seconds, result)."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def best_of(fn: Callable[[], Any], *, repeats: int = 3) -> tuple[float, Any]:
    """Minimum wall-clock over ``repeats`` calls (noise suppression).

    The callable must be idempotent or self-resetting.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        dt, result = time_call(fn)
        best = min(best, dt)
    return best, result
