"""CLI: regenerate the experiment tables of EXPERIMENTS.md.

Usage::

    python -m repro.bench            # all experiments
    python -m repro.bench e3 e11     # a subset
"""

from __future__ import annotations

import sys

from .experiments import EXPERIMENTS, run_all


def main(argv: list[str]) -> int:
    names = tuple(a.lower() for a in argv) or None
    unknown = [n for n in (names or ()) if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"known: {', '.join(EXPERIMENTS)}")
        return 2
    run_all(names)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
