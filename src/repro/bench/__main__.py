"""CLI: regenerate the experiment tables of EXPERIMENTS.md.

Usage::

    python -m repro.bench                      # all experiments
    python -m repro.bench e3 e11               # a subset
    python -m repro.bench --experiment faults  # one, by name or alias
    python -m repro.bench --experiment faults --smoke   # CI smoke run
    python -m repro.bench e10 --profile        # + search-kernel counters
"""

from __future__ import annotations

import sys

from .experiments import EXPERIMENTS, run_all


def main(argv: list[str]) -> int:
    names: list[str] = []
    smoke = False
    profile = False
    it = iter(argv)
    for arg in it:
        if arg == "--smoke":
            smoke = True
        elif arg == "--profile":
            profile = True
        elif arg == "--experiment":
            name = next(it, None)
            if name is None:
                print("--experiment requires a name", file=sys.stderr)
                return 2
            names.append(name.lower())
        elif arg.startswith("-"):
            print(f"unknown option {arg!r}", file=sys.stderr)
            print(__doc__)
            return 2
        else:
            names.append(arg.lower())
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"known: {', '.join(EXPERIMENTS)}")
        return 2
    run_all(tuple(names) or None, smoke=smoke)
    if profile:
        from ..core.kernel import GLOBAL_STATS

        print(f"search kernel: {GLOBAL_STATS.summary()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
