"""Netlist export / replay: save and restore a device's routing.

A netlist snapshot captures every net as its ordered PIP list; replaying
it onto a fresh device reproduces the configuration through level-1
route calls.  Useful for golden files in tests, for diffing two routing
solutions, and as the JRoute analogue of saving a design.
"""

from __future__ import annotations

from typing import Any

from ..arch import wires
from ..core.router import JRouter
from ..device.fabric import Device

__all__ = ["export_netlist", "replay_netlist", "netlist_stats"]


def export_netlist(device: Device) -> list[dict[str, Any]]:
    """Snapshot all nets: source wire and ordered PIP list per net.

    PIPs are listed parent-before-child, so replay can apply them in
    order without ever driving from an unknown wire.
    """
    state = device.state
    arch = device.arch
    nets = []
    roots = sorted(w for w in state.children if not state.is_driven(w))
    for root in roots:
        r, c, n = arch.primary_name(root)
        pips = [
            {
                "row": rec.row,
                "col": rec.col,
                "from": rec.from_name,
                "to": rec.to_name,
                "from_label": wires.wire_name(rec.from_name),
                "to_label": wires.wire_name(rec.to_name),
            }
            for rec in state.net_pips(root)
        ]
        nets.append(
            {
                "source": {"row": r, "col": c, "wire": n, "label": wires.wire_name(n)},
                "pips": pips,
            }
        )
    return nets


def replay_netlist(router: JRouter, netlist: list[dict[str, Any]]) -> int:
    """Re-apply an exported netlist through level-1 route calls.

    Returns the number of PIPs turned on.  The target device must have
    the same part (wire names are architecture-wide, but tiles must
    exist).
    """
    count = 0
    for net in netlist:
        for pip in net["pips"]:
            router.route(pip["row"], pip["col"], pip["from"], pip["to"])
            count += 1
    return count


def netlist_stats(netlist: list[dict[str, Any]]) -> dict[str, int]:
    """Aggregate statistics of an exported netlist."""
    return {
        "nets": len(netlist),
        "pips": sum(len(n["pips"]) for n in netlist),
        "max_fanout_pips": max((len(n["pips"]) for n in netlist), default=0),
    }
