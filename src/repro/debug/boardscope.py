"""BoardScope-style debug facilities (paper Sections 1, 3.5).

"Debugging tools, such as BoardScope, can use this to view each sink."

:class:`BoardScope` inspects a live device the way the original tool
inspected hardware: through readback.  It can enumerate nets, trace from
the *bitstream* (independently of the router's in-memory bookkeeping) and
cross-check the two views — the routing-state equivalent of comparing a
readback against the design.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import connectivity, wires
from ..arch.wires import WireClass
from ..core.tracer import NetTrace, trace_net
from ..device.contention import audit_no_contention
from ..device.fabric import Device
from ..jbits.jbits import JBits
from ..jbits.readback import decode_pips, verify_against_device

__all__ = ["BoardScope", "StateSummary"]


@dataclass(slots=True)
class StateSummary:
    """Aggregate routing-state statistics of a device."""

    pips_on: int
    nets: int
    wires_in_use: int
    by_class: dict[str, int]

    def __str__(self) -> str:
        per_class = ", ".join(f"{k}={v}" for k, v in sorted(self.by_class.items()))
        return (
            f"{self.pips_on} PIPs on, {self.nets} nets, "
            f"{self.wires_in_use} wires in use ({per_class})"
        )


class BoardScope:
    """Debug viewer over a device (and optionally its JBits bitstream)."""

    def __init__(self, device: Device, jbits: JBits | None = None) -> None:
        self.device = device
        self.jbits = jbits

    # -- net enumeration ---------------------------------------------------------

    def net_sources(self) -> list[int]:
        """Canonical ids of all net roots (driving wires with no driver)."""
        state = self.device.state
        return sorted(
            w for w in state.children if not state.is_driven(w)
        )

    def nets(self) -> list[NetTrace]:
        """Trace of every net on the device."""
        return [trace_net(self.device, src) for src in self.net_sources()]

    def show(self, source_canon: int) -> str:
        """Human-readable trace of one net."""
        return trace_net(self.device, source_canon).describe(self.device)

    # -- summaries -----------------------------------------------------------------

    def summary(self) -> StateSummary:
        arch = self.device.arch
        state = self.device.state
        by_class: dict[str, int] = {}
        for w in state.used_wires():
            cls = arch.wire_class_of(int(w))
            by_class[cls.name] = by_class.get(cls.name, 0) + 1
        return StateSummary(
            pips_on=state.n_pips_on,
            nets=len(self.net_sources()),
            wires_in_use=int(state.occupied.sum()),
            by_class=by_class,
        )

    # -- bitstream-level views (readback) -----------------------------------------------

    def trace_from_bitstream(self, source_canon: int) -> NetTrace:
        """Trace a net using only configuration bits (true readback path).

        Decodes the bitstream into PIPs, rebuilds the connectivity forest
        and walks it — no use of the router's in-memory state.  Requires
        an attached JBits.
        """
        if self.jbits is None:
            raise ValueError("no JBits attached; bitstream views unavailable")
        arch = self.device.arch
        children: dict[int, list[tuple[int, int, int, int, int]]] = {}
        for row, col, from_name, to_name in decode_pips(self.jbits.memory):
            cf = arch.canonicalize(row, col, from_name)
            ct = arch.canonicalize(row, col, to_name)
            assert cf is not None and ct is not None
            children.setdefault(cf, []).append((row, col, from_name, to_name, ct))
        out = NetTrace(source=source_canon)
        stack = [source_canon]
        seen = {source_canon}
        from ..device.state import PipRecord

        while stack:
            w = stack.pop()
            out.wires.append(w)
            cls = arch.wire_class_of(w)
            if cls in (WireClass.SLICE_IN, WireClass.CTL_IN):
                out.sinks.append(w)
            for row, col, fn, tn, ct in children.get(w, ()):
                if ct in seen:  # pragma: no cover - defensive
                    continue
                seen.add(ct)
                out.pips.append(PipRecord(row, col, fn, tn, w, ct))
                stack.append(ct)
        return out

    def crosscheck(self) -> list[str]:
        """Verify state invariants and bitstream/state coherence.

        Returns a list of problems (empty when healthy).
        """
        problems = list(audit_no_contention(self.device))
        if self.jbits is not None:
            problems.extend(
                str(m)
                for m in verify_against_device(self.jbits.memory, self.device)
            )
        return problems

    # -- wire-level poking -----------------------------------------------------------------

    def wire_report(self, row: int, col: int, name: int) -> str:
        """Everything known about one wire at one tile."""
        arch = self.device.arch
        canon = arch.canonicalize(row, col, name)
        if canon is None:
            return f"{wires.wire_name(name)}@({row},{col}): does not exist"
        state = self.device.state
        lines = [f"{wires.wire_name(name)}@({row},{col}): canonical {canon}"]
        info = wires.wire_info(name)
        lines.append(
            f"  class={info.wire_class.name} dir={info.direction.name} "
            f"len={arch.wire_length(name)}"
        )
        rec = state.pip_of.get(canon)
        if rec is not None:
            lines.append(
                f"  driven by {wires.wire_name(rec.from_name)} at "
                f"({rec.row},{rec.col})"
            )
        else:
            lines.append("  not driven")
        kids = state.children_of(canon)
        lines.append(f"  drives {len(kids)} wire(s)")
        lines.append(
            f"  fanout candidates: {len(connectivity.DRIVES[name])} names"
        )
        return "\n".join(lines)
