"""ASCII visualisation of fabric occupancy and nets.

Terminal-friendly equivalents of BoardScope's graphical views: an
occupancy heat map of the CLB array, and per-net overlays showing the
source, route and sinks of a traced net.
"""

from __future__ import annotations

import threading

import numpy as np

from ..arch.virtex import N_OWNED
from ..arch.wires import WireClass
from ..core.tracer import NetTrace
from ..device.fabric import Device

__all__ = ["occupancy_grid", "render_occupancy", "render_net", "congestion_stats"]

_HEAT = " .:-=+*#%@"


def occupancy_grid(device: Device) -> np.ndarray:
    """Used-wire count per CLB tile (rows x cols array).

    Long lines and globals are charged to their primary tile.
    """
    arch = device.arch
    grid = np.zeros((arch.rows, arch.cols), dtype=np.int32)
    tile_wires = arch.n_tiles * N_OWNED
    used = device.state.used_wires()
    tiles = used[used < tile_wires] // N_OWNED
    np.add.at(grid, (tiles // arch.cols, tiles % arch.cols), 1)
    for w in used[used >= tile_wires]:
        r, c, _ = arch.primary_name(int(w))
        grid[r, c] += 1
    return grid


def render_occupancy(device: Device, *, max_scale: int | None = None) -> str:
    """Heat-map rendering of tile occupancy, row 0 at the bottom
    (NORTH = increasing row, so north is up)."""
    grid = occupancy_grid(device)
    scale = max_scale if max_scale is not None else max(1, int(grid.max()))
    lines = []
    for r in range(device.rows - 1, -1, -1):
        chars = []
        for c in range(device.cols):
            level = min(len(_HEAT) - 1, grid[r, c] * (len(_HEAT) - 1) // scale)
            chars.append(_HEAT[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_net(device: Device, trace: NetTrace) -> str:
    """Overlay of one net on the CLB array: S = source tile, x = sink
    tile, o = routed-through tile."""
    arch = device.arch
    grid = [["." for _ in range(device.cols)] for _ in range(device.rows)]
    for w in trace.wires:
        r, c, _ = arch.primary_name(w)
        if grid[r][c] == ".":
            grid[r][c] = "o"
    for s in trace.sinks:
        r, c, _ = arch.primary_name(s)
        grid[r][c] = "x"
    r, c, _ = arch.primary_name(trace.source)
    grid[r][c] = "S"
    return "\n".join("".join(row) for row in reversed(grid))


_TOTALS_CACHE: dict[str, dict[WireClass, int]] = {}
_TOTALS_LOCK = threading.Lock()


def _class_totals(device: Device) -> dict[WireClass, int]:
    """Existing-wire counts per resource class, cached per part."""
    arch = device.arch
    cached = _TOTALS_CACHE.get(arch.part.name)
    if cached is not None:
        return cached
    totals: dict[WireClass, int] = {}
    for canon in range(arch.n_wires):
        if not arch.wire_exists(canon):
            continue
        cls = arch.wire_class_of(canon)
        totals[cls] = totals.get(cls, 0) + 1
    with _TOTALS_LOCK:
        _TOTALS_CACHE[arch.part.name] = totals
    return totals


def congestion_stats(device: Device) -> dict[str, float]:
    """Utilisation statistics per resource class (fraction of wires used)."""
    arch = device.arch
    counts: dict[WireClass, int] = {}
    for w in device.state.used_wires():
        cls = arch.wire_class_of(int(w))
        counts[cls] = counts.get(cls, 0) + 1
    out: dict[str, float] = {}
    for cls, total in _class_totals(device).items():
        out[cls.name] = counts.get(cls, 0) / total if total else 0.0
    return out
