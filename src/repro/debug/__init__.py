"""Debug tooling: the BoardScope-equivalent views of a live device."""

from .boardscope import BoardScope, StateSummary
from .netlist import export_netlist, netlist_stats, replay_netlist
from .visualize import congestion_stats, occupancy_grid, render_net, render_occupancy

__all__ = [
    "BoardScope",
    "StateSummary",
    "export_netlist",
    "netlist_stats",
    "replay_netlist",
    "congestion_stats",
    "occupancy_grid",
    "render_net",
    "render_occupancy",
]
