"""``python -m repro`` — the CLI tools (see :mod:`repro.cli`)."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
