"""Template: a sequence of template values guiding the router (level 3).

Paper, Section 3.1: "A template is defined as an array of template
values ... The user does not have to know the wire connections and the
resources in use. ... The cost is longer execution time, and there is no
guarantee that an unused path even exists."
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .. import errors
from ..arch.templates import TemplateValue, step_displacement

__all__ = ["Template"]


class Template:
    """An array of :class:`~repro.arch.templates.TemplateValue`."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence[TemplateValue | int] | Iterable[int]) -> None:
        vals = tuple(TemplateValue(v) for v in values)
        if not vals:
            raise errors.JRouteError("a template needs at least one value")
        self.values = vals

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, i: int) -> TemplateValue:
        return self.values[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Template):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __str__(self) -> str:
        return "Template[" + ", ".join(v.name for v in self.values) + "]"

    def displacement(self) -> tuple[int, int]:
        """Net (drow, dcol) a route following this template travels.

        Long-line and global values contribute an unknown displacement and
        make this raise ``ValueError``; callers use it for the fixed-step
        templates of the auto-router's predefined sets.
        """
        dr = dc = 0
        for v in self.values:
            d = step_displacement(v)
            if d is None:
                raise ValueError(f"{v.name} has data-dependent displacement")
            dr += d[0]
            dc += d[1]
        return dr, dc
