"""Net database: routed-net records and the port-connection memory.

Paper, Section 3.2: "When a port gets routed, the source and sinks
connected to the port are saved.  This information is useful for the
unrouter and the debugging features."  Section 3.3: "The port connections
are removed, but are remembered.  If the ports are reused, then they will
be automatically connected to the new core."

Connections are remembered by *stable keys* (a pin's coordinates, or a
port's (core instance, group, index, name) position) rather than object
identity, so a replaced core's fresh Port objects pick up the old
connections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import errors
from .endpoints import EndPoint, Pin, Port

__all__ = ["EndPointRef", "PortMemory", "NetDB"]

#: Stable reference to an endpoint: ``Pin.key`` or ``Port.key``.
EndPointRef = tuple


@dataclass(slots=True)
class PortMemory:
    """Remembered connections of one port position."""

    sources: list[EndPointRef] = field(default_factory=list)
    sinks: list[EndPointRef] = field(default_factory=list)


def endpoint_ref(ep: EndPoint) -> EndPointRef:
    """Stable reference of any endpoint."""
    if isinstance(ep, (Pin, Port)):
        return ep.key
    raise errors.PortError(f"not an endpoint: {ep!r}")


class NetDB:
    """Router-side registry of nets, ports and remembered connections."""

    def __init__(self) -> None:
        #: live port objects by stable key (updated on core registration)
        self.port_registry: dict[EndPointRef, Port] = {}
        #: remembered connections by port key
        self.port_memory: dict[EndPointRef, PortMemory] = {}
        #: intended sinks of each routed net, by source wire canonical id
        self.net_sinks: dict[int, set[int]] = {}
        #: the user-facing source endpoint of each net
        self.net_source_ep: dict[int, EndPoint] = {}

    # -- port registry ------------------------------------------------------

    def register_port(self, port: Port) -> None:
        """(Re)bind a port key to a live Port object.

        Called when a core is placed or replaced; route calls that later
        resolve remembered references find the *new* core's ports.
        """
        self.port_registry[port.key] = port

    def register_core_ports(self, ports) -> None:
        for p in ports:
            self.register_port(p)

    def resolve_ref(self, ref: EndPointRef) -> EndPoint:
        """Turn a stable reference back into a live endpoint."""
        if ref and ref[0] == "pin":
            _, row, col, wire = ref
            return Pin(row, col, wire)
        port = self.port_registry.get(ref)
        if port is None:
            raise errors.PortError(f"no live port registered for {ref!r}")
        return port

    # -- connection memory -----------------------------------------------------

    def remember_connection(self, source: EndPoint, sink: EndPoint) -> None:
        """Record a routed source->sink endpoint pair on any ports involved."""
        if isinstance(source, Port):
            mem = self.port_memory.setdefault(source.key, PortMemory())
            ref = endpoint_ref(sink)
            if ref not in mem.sinks:
                mem.sinks.append(ref)
        if isinstance(sink, Port):
            mem = self.port_memory.setdefault(sink.key, PortMemory())
            ref = endpoint_ref(source)
            if ref not in mem.sources:
                mem.sources.append(ref)

    def forget_connection(self, source: EndPoint, sink: EndPoint) -> None:
        """Erase a remembered pair (when the user wants no auto-reconnect)."""
        if isinstance(source, Port):
            mem = self.port_memory.get(source.key)
            if mem is not None:
                ref = endpoint_ref(sink)
                if ref in mem.sinks:
                    mem.sinks.remove(ref)
        if isinstance(sink, Port):
            mem = self.port_memory.get(sink.key)
            if mem is not None:
                ref = endpoint_ref(source)
                if ref in mem.sources:
                    mem.sources.remove(ref)

    def memory_of(self, port: Port) -> PortMemory:
        """Remembered connections of a port (empty record if none)."""
        return self.port_memory.get(port.key, PortMemory())

    # -- net records ----------------------------------------------------------------

    def record_net(self, source_canon: int, source_ep: EndPoint, sink_canons) -> None:
        self.net_sinks.setdefault(source_canon, set()).update(sink_canons)
        self.net_source_ep.setdefault(source_canon, source_ep)

    def drop_net(self, source_canon: int) -> None:
        self.net_sinks.pop(source_canon, None)
        self.net_source_ep.pop(source_canon, None)

    def drop_sink(self, source_canon: int, sink_canon: int) -> None:
        sinks = self.net_sinks.get(source_canon)
        if sinks is not None:
            sinks.discard(sink_canon)
            if not sinks:
                self.drop_net(source_canon)

    def nets(self) -> dict[int, set[int]]:
        """Snapshot of all recorded nets (source canon -> sink canons)."""
        return {src: set(sinks) for src, sinks in self.net_sinks.items()}
