"""Shared search kernel over the compiled routing graph.

One Dijkstra/A* implementation serves every search level — maze,
greedy fanout, bus and PathFinder — over the flat CSR adjacency of
:class:`~repro.arch.graph.RoutingGraph`.  The run-time promise of the
paper ("the router must be fast enough to use at run time") rests on
three mechanics here:

* **no graph re-expansion** — edges are flat-array reads, not
  ``fanout_pips`` generator calls;
* **epoch-stamped state** — ``dist``/``prev``/``stamp`` are preallocated
  once per device and invalidated by bumping an epoch counter, so
  nothing is reallocated or cleared between searches;
* **pluggable costs** — an optional A* heuristic and PathFinder's
  negotiated congestion (present + history) plug into the same loop.

Instrumentation (node expansions, heap pushes, faulty edges avoided) is
unified behind :class:`SearchStats`.  The process-wide accumulator
:data:`GLOBAL_STATS` (printed by ``repro bench --profile``) is fed by
**explicit, lock-guarded publication**: searches accumulate into their
caller's private :class:`SearchStats` and the owning router publishes
the merged batch once via :func:`record_global`.  The kernel itself
never performs an unsynchronized read-modify-write on the global — with
parallel PathFinder workers (threads today, processes behind the
``backend="process"`` knob) the old in-loop ``GLOBAL_STATS.x += y``
updates silently lost counts.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Collection, Container, Iterable, Sequence

from ..arch.graph import FaultEdgeMask, RoutingGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (deadline -> errors)
    from .deadline import Deadline

#: deadline poll period: one clock read per this-many+1 node expansions
_DEADLINE_MASK = 1023

__all__ = [
    "SearchStats",
    "SearchState",
    "GLOBAL_STATS",
    "record_global",
    "dijkstra",
    "extract_plan",
]


@dataclass(slots=True)
class SearchStats:
    """Unified instrumentation counters of one or more searches."""

    searches: int = 0
    nodes_expanded: int = 0
    heap_pushes: int = 0
    faults_avoided: int = 0

    def merge(self, other: "SearchStats") -> "SearchStats":
        self.searches += other.searches
        self.nodes_expanded += other.nodes_expanded
        self.heap_pushes += other.heap_pushes
        self.faults_avoided += other.faults_avoided
        return self

    def as_dict(self) -> dict[str, int]:
        return {
            "searches": self.searches,
            "nodes_expanded": self.nodes_expanded,
            "heap_pushes": self.heap_pushes,
            "faults_avoided": self.faults_avoided,
        }

    def summary(self) -> str:
        return (
            f"{self.searches} search(es), "
            f"{self.nodes_expanded} node(s) expanded, "
            f"{self.heap_pushes} heap push(es), "
            f"{self.faults_avoided} faulty edge(s) avoided"
        )


#: Process-wide accumulator, surfaced by ``repro bench --profile``.
#: Mutated only under :data:`_GLOBAL_LOCK` (see :func:`record_global`).
GLOBAL_STATS = SearchStats()

_GLOBAL_LOCK = threading.Lock()


def record_global(stats: SearchStats) -> None:
    """Publish a completed batch of search stats into :data:`GLOBAL_STATS`.

    Routers accumulate into a private :class:`SearchStats` (one per
    worker when parallel), merge deterministically at their barrier, and
    call this exactly once per batch.  The lock makes the publication a
    single atomic read-modify-write, so concurrent routing calls — and
    the process backend's merged worker stats — never lose updates the
    way the kernel's old per-search ``GLOBAL_STATS.x += y`` did.
    """
    with _GLOBAL_LOCK:
        GLOBAL_STATS.merge(stats)


class SearchState:
    """Preallocated, epoch-stamped flat search state for one graph.

    ``dist[w]``/``prev[w]`` are valid only when ``stamp[w]`` equals the
    current epoch; a search begins by bumping :attr:`epoch`, which
    invalidates all previous state in O(1).  One state serves one search
    at a time — concurrent searches (parallel PathFinder workers) each
    own a state.
    """

    __slots__ = ("n", "dist", "prev", "stamp", "epoch")

    def __init__(self, n: int) -> None:
        self.n = n
        self.dist: list[float] = [0.0] * n
        #: edge id that relaxed the wire (-1 for search starts)
        self.prev: list[int] = [-1] * n
        self.stamp: list[int] = [0] * n
        self.epoch = 0


def dijkstra(
    graph: RoutingGraph,
    state: SearchState,
    starts: Iterable[int],
    targets: Collection[int],
    *,
    occupied: Sequence[bool] | None = None,
    allow: Container[int] = frozenset(),
    name_blocked: Sequence[int] | None = None,
    h: Callable[[int, int, int, int], float] | None = None,
    congestion: tuple[Sequence[float], Sequence[float], float] | None = None,
    fault_node: Sequence[bool] | None = None,
    fault_edge: FaultEdgeMask | None = None,
    max_nodes: int = 200_000,
    stats: SearchStats | None = None,
    deadline: "Deadline | None" = None,
) -> tuple[int, float, int, int, int, bool, bool]:
    """One lowest-cost search from ``starts`` to any of ``targets``.

    Parameters
    ----------
    occupied:
        Indexable truthiness per canonical wire; a truthy wire is
        impassable unless listed in ``allow``.
    name_blocked:
        Optional per-*name* mask (longs disabled, avoided classes).
    h:
        Optional A* heuristic ``h(canon_to, to_name, row, col)``.
    congestion:
        Optional ``(use_count, history, present_factor)`` flat tables:
        the edge cost becomes
        ``base * (1 + pf * use_count[to]) + history[to]`` (PathFinder).
    fault_node / fault_edge:
        Fault masks; skipped resources are counted as faults avoided.
    deadline:
        Optional cooperative :class:`~repro.core.deadline.Deadline`;
        polled every 1024 expansions.  A tripped deadline abandons the
        search with ``timed_out`` set (the deadline-free fast loops are
        untouched, so a ``None`` deadline costs nothing).

    Returns ``(goal, cost, expanded, pushes, faults_avoided, exceeded,
    timed_out)`` with ``goal == -1`` when no target was reached
    (``exceeded`` set when the node budget ran out first, ``timed_out``
    when the deadline tripped first).
    """
    epoch = state.epoch + 1
    state.epoch = epoch
    dist = state.dist
    prev = state.prev
    stamp = state.stamp
    off = graph.off
    deg = graph.deg
    e_to = graph.e_to
    e_toname = graph.e_toname
    e_cost = graph.e_cost
    e_row = graph.e_row
    e_col = graph.e_col
    materialize = graph._materialize
    target_set = (
        targets if isinstance(targets, (set, frozenset)) else set(targets)
    )
    femask = fault_edge.mask if fault_edge is not None else None
    if congestion is not None:
        use_count, history, pf = congestion
    heap: list[tuple[float, float, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    if h is None:
        for s in starts:
            dist[s] = 0.0
            stamp[s] = epoch
            prev[s] = -1
            heap.append((0.0, 0.0, s))
        heapq.heapify(heap)
    else:
        p_row, p_col, p_name = graph.tiles()
        for s in starts:
            dist[s] = 0.0
            stamp[s] = epoch
            prev[s] = -1
            push(heap, (h(s, p_name[s], p_row[s], p_col[s]), 0.0, s))

    expanded = 0
    pushes = 0
    faults_avoided = 0
    goal = -1
    goal_cost = 0.0
    exceeded = False
    timed_out = False
    # The hot maze configuration (no fault masks, no name filtering, no
    # congestion pricing, no deadline) runs specialized loops with every
    # per-edge branch hoisted out; everything else takes the general loop
    # below.  Keeping deadline-bounded searches out of the fast loops is
    # what makes a ``None`` deadline genuinely free.
    fast = (
        name_blocked is None
        and femask is None
        and fault_node is None
        and congestion is None
        and occupied is not None
        and deadline is None
    )
    if occupied is not None and not isinstance(occupied, (list, memoryview)):
        try:
            occupied = memoryview(occupied)  # cheaper scalar indexing
        except TypeError:
            pass
    if fast and h is None:
        # `fast` requires deadline is None (checked above): this loop is
        # intentionally poll-free — that is the point of the fast path
        while heap:  # repro: noqa RPR004
            f, g, canon = pop(heap)
            if g > dist[canon]:
                continue  # stale entry
            if canon in target_set:
                goal = canon
                goal_cost = g
                break
            expanded += 1
            if expanded > max_nodes:
                exceeded = True
                break
            o = off[canon]
            if o < 0:
                o = materialize(canon)
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if occupied[to] and to not in allow:
                    continue
                ng = g + e_cost[e]
                if stamp[to] != epoch:
                    stamp[to] = epoch
                elif ng >= dist[to]:
                    continue
                dist[to] = ng
                prev[to] = e
                pushes += 1
                push(heap, (ng, ng, to))
    elif fast:
        # same contract: fast implies deadline is None
        while heap:  # repro: noqa RPR004
            f, g, canon = pop(heap)
            if g > dist[canon]:
                continue  # stale entry
            if canon in target_set:
                goal = canon
                goal_cost = g
                break
            expanded += 1
            if expanded > max_nodes:
                exceeded = True
                break
            o = off[canon]
            if o < 0:
                o = materialize(canon)
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if occupied[to] and to not in allow:
                    continue
                ng = g + e_cost[e]
                if stamp[to] != epoch:
                    stamp[to] = epoch
                elif ng >= dist[to]:
                    continue
                dist[to] = ng
                prev[to] = e
                pushes += 1
                push(heap, (ng + h(to, e_toname[e], e_row[e], e_col[e]), ng, to))
    else:
        while heap:
            f, g, canon = pop(heap)
            if g > dist[canon]:
                continue  # stale entry
            if canon in target_set:
                goal = canon
                goal_cost = g
                break
            if fault_node is not None and fault_node[canon]:
                # a dead/pre-driven start wire cannot launch the signal
                faults_avoided += 1
                continue
            if (
                deadline is not None
                and (expanded & _DEADLINE_MASK) == 0
                and deadline.expired()
            ):
                timed_out = True
                break
            expanded += 1
            if expanded > max_nodes:
                exceeded = True
                break
            o = off[canon]
            if o < 0:
                o = materialize(canon)
                if femask is not None:
                    fault_edge.sync()  # extends femask in place
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if name_blocked is not None and name_blocked[e_toname[e]]:
                    continue
                if femask is not None and femask[e]:
                    faults_avoided += 1
                    continue
                if occupied is not None and occupied[to] and to not in allow:
                    continue
                if congestion is None:
                    ng = g + e_cost[e]
                else:
                    ng = g + e_cost[e] * (1.0 + pf * use_count[to]) + history[to]
                if stamp[to] != epoch:
                    stamp[to] = epoch
                elif ng >= dist[to]:
                    continue
                dist[to] = ng
                prev[to] = e
                pushes += 1
                if h is None:
                    push(heap, (ng, ng, to))
                else:
                    push(
                        heap,
                        (ng + h(to, e_toname[e], e_row[e], e_col[e]), ng, to),
                    )

    if stats is not None:
        # Accumulate into the caller's private stats only; the owner
        # publishes the merged batch via record_global() at its barrier.
        stats.searches += 1
        stats.nodes_expanded += expanded
        stats.heap_pushes += pushes
        stats.faults_avoided += faults_avoided
    else:
        # Stats-less callers still count globally, atomically.
        record_global(
            SearchStats(1, expanded, pushes, faults_avoided)
        )
    return goal, goal_cost, expanded, pushes, faults_avoided, exceeded, timed_out


def extract_plan(
    graph: RoutingGraph, state: SearchState, goal: int
) -> list[tuple[int, int, int, int]]:
    """Back-walk ``prev`` edges from ``goal`` into a source-to-sink plan."""
    prev = state.prev
    e_row = graph.e_row
    e_col = graph.e_col
    e_from = graph.e_from
    e_toname = graph.e_toname
    e_src = graph.e_src
    plan: list[tuple[int, int, int, int]] = []
    e = prev[goal]
    while e != -1:
        plan.append((e_row[e], e_col[e], e_from[e], e_toname[e]))
        e = prev[e_src[e]]
    plan.reverse()
    return plan
