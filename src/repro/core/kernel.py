"""Shared search kernel over the compiled routing graph.

One Dijkstra/A* implementation serves every search level — maze,
greedy fanout, bus and PathFinder — over the flat CSR adjacency of
:class:`~repro.arch.graph.RoutingGraph`.  The run-time promise of the
paper ("the router must be fast enough to use at run time") rests on
three mechanics here:

* **no graph re-expansion** — edges are flat-array reads, not
  ``fanout_pips`` generator calls;
* **epoch-stamped state** — ``dist``/``prev``/``stamp`` are preallocated
  once per device and invalidated by bumping an epoch counter, so
  nothing is reallocated or cleared between searches;
* **pluggable costs** — an optional A* heuristic and PathFinder's
  negotiated congestion (present + history) plug into the same loop.

Instrumentation (node expansions, heap pushes, faulty edges avoided) is
unified behind :class:`SearchStats`.  The process-wide accumulator
:data:`GLOBAL_STATS` (printed by ``repro bench --profile``) is fed by
**explicit, lock-guarded publication**: searches accumulate into their
caller's private :class:`SearchStats` and the owning router publishes
the merged batch once via :func:`record_global`.  The kernel itself
never performs an unsynchronized read-modify-write on the global — with
parallel PathFinder workers (threads today, processes behind the
``backend="process"`` knob) the old in-loop ``GLOBAL_STATS.x += y``
updates silently lost counts.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Collection, Container, Iterable, Sequence

import numpy as np

from ..arch.graph import FaultEdgeMask, RoutingGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (deadline -> errors)
    from .deadline import Deadline

#: deadline poll period: one clock read per this-many+1 node expansions
_DEADLINE_MASK = 1023

#: shared read-only index ramp for the batch relax phase; grown on
#: demand, never mutated (threads may race the rebind — both winners
#: are correct, and old views stay alive for their holders)
_ARANGE = np.arange(0, dtype=np.int64)


def _arange(m: int):
    """A length-``m`` ascending index view without a per-call alloc."""
    global _ARANGE
    if _ARANGE.size < m:
        _ARANGE = np.arange(max(m, 2 * _ARANGE.size), dtype=np.int64)
    return _ARANGE[:m]

__all__ = [
    "SearchStats",
    "SearchState",
    "BatchSearchState",
    "CongestionLedger",
    "GLOBAL_STATS",
    "record_global",
    "dijkstra",
    "dijkstra_batch",
    "extract_plan",
    "extract_plan_lane",
]


@dataclass(slots=True)
class SearchStats:
    """Unified instrumentation counters of one or more searches."""

    searches: int = 0
    nodes_expanded: int = 0
    heap_pushes: int = 0
    faults_avoided: int = 0

    def merge(self, other: "SearchStats") -> "SearchStats":
        self.searches += other.searches
        self.nodes_expanded += other.nodes_expanded
        self.heap_pushes += other.heap_pushes
        self.faults_avoided += other.faults_avoided
        return self

    def as_dict(self) -> dict[str, int]:
        return {
            "searches": self.searches,
            "nodes_expanded": self.nodes_expanded,
            "heap_pushes": self.heap_pushes,
            "faults_avoided": self.faults_avoided,
        }

    def summary(self) -> str:
        return (
            f"{self.searches} search(es), "
            f"{self.nodes_expanded} node(s) expanded, "
            f"{self.heap_pushes} heap push(es), "
            f"{self.faults_avoided} faulty edge(s) avoided"
        )


#: Process-wide accumulator, surfaced by ``repro bench --profile``.
#: Mutated only under :data:`_GLOBAL_LOCK` (see :func:`record_global`).
GLOBAL_STATS = SearchStats()

_GLOBAL_LOCK = threading.Lock()


def record_global(stats: SearchStats) -> None:
    """Publish a completed batch of search stats into :data:`GLOBAL_STATS`.

    Routers accumulate into a private :class:`SearchStats` (one per
    worker when parallel), merge deterministically at their barrier, and
    call this exactly once per batch.  The lock makes the publication a
    single atomic read-modify-write, so concurrent routing calls — and
    the process backend's merged worker stats — never lose updates the
    way the kernel's old per-search ``GLOBAL_STATS.x += y`` did.
    """
    with _GLOBAL_LOCK:
        GLOBAL_STATS.merge(stats)


class SearchState:
    """Preallocated, epoch-stamped flat search state for one graph.

    The columns are numpy struct-of-arrays storage — :attr:`cost`,
    :attr:`backptr` and :attr:`node_epoch` are parallel float64/int64
    vectors over canonical wires — so batched kernels
    (:func:`dijkstra_batch`) and future C inner loops can address them
    as flat buffers.  The scalar loop still indexes them element-wise;
    :attr:`dist`/:attr:`prev`/:attr:`stamp` are cached ``memoryview``
    aliases of the same buffers, because CPython scalar indexing of a
    memoryview is ~25% faster than indexing the ndarray itself.

    ``dist[w]``/``prev[w]`` are valid only when ``stamp[w]`` equals the
    current epoch; a search begins by bumping :attr:`epoch`, which
    invalidates all previous state in O(1).  One state serves one search
    at a time — concurrent searches (parallel PathFinder workers) each
    own a state.
    """

    __slots__ = (
        "n", "cost", "backptr", "node_epoch", "dist", "prev", "stamp", "epoch"
    )

    def __init__(self, n: int) -> None:
        self.n = n
        #: SoA column: tentative path cost per wire (float64)
        self.cost = np.zeros(n, dtype=np.float64)
        #: SoA column: edge id that relaxed the wire (-1 for search starts)
        self.backptr = np.full(n, -1, dtype=np.int64)
        #: SoA column: epoch stamp per wire (cost/backptr validity)
        self.node_epoch = np.zeros(n, dtype=np.int64)
        # memoryview aliases for the scalar loop's element-wise access
        self.dist = memoryview(self.cost)
        self.prev = memoryview(self.backptr)
        self.stamp = memoryview(self.node_epoch)
        self.epoch = 0


class CongestionLedger:
    """Versioned per-partition view of PathFinder's flat congestion tables.

    A parallel negotiated-congestion router gives each worker its own
    present-use/history tables.  Rebuilding them from scratch (or
    shipping full snapshots) every iteration costs O(n_nodes) per worker
    per iteration — device-size work even when almost nothing changed.
    A ledger instead holds the flat tables *plus a version number*, and
    advances by applying **sparse absolute deltas**: per iteration, only
    the wires whose use-count or history actually changed, with their new
    values.  Absolute values (not increments) make re-application
    idempotent, so a worker that already holds an intermediate version
    can safely replay a delta suffix that overlaps what it has.

    Within one iteration a worker layers *revertible overlays* on top of
    the synced base state (a subtree's fresh wires, a net's rip-up):
    every mutation appends its inverse to a journal, and
    :meth:`revert` unwinds the journal so the ledger lands back exactly
    on its version's state — O(touched), never O(n_nodes).

    Synchronisation is hybrid, per the parallel-router literature:
    *synchronous* within a partition (a worker sees its own and its
    descendants' updates immediately via overlays) and *asynchronous*
    across partitions (peers' changes arrive as the next iteration's
    delta).  The ledger is used identically by thread workers (synced
    in-memory) and process workers (deltas arrive pickled), which is what
    keeps the two backends bit-identical.
    """

    __slots__ = ("counts", "history", "version")

    def __init__(self, n_nodes: int) -> None:
        #: present-use count per canonical wire (version-consistent base)
        self.counts: list[int] = [0] * n_nodes
        #: accumulated history cost per canonical wire
        self.history: list[float] = [0.0] * n_nodes
        #: index of the last applied delta (0 == pristine tables)
        self.version = 0

    def sync(
        self,
        deltas: Sequence[tuple[dict[int, int], dict[int, float]]],
        base_version: int,
        target_version: int,
    ) -> None:
        """Advance to ``target_version`` by replaying absolute deltas.

        ``deltas[i]`` is the ``(counts, history)`` assignment dict pair
        moving version ``base_version + i`` to ``base_version + i + 1``.
        The ledger's own version may sit anywhere in
        ``[base_version, target_version]``; already-applied entries are
        replayed harmlessly because assignments are absolute.
        """
        if self.version >= target_version:
            return
        if self.version < base_version:
            raise ValueError(
                f"ledger at version {self.version} cannot sync from "
                f"base {base_version}"
            )
        counts = self.counts
        history = self.history
        for counts_d, history_d in deltas[: target_version - base_version]:
            for w, c in counts_d.items():
                counts[w] = c
            for w, h in history_d.items():
                history[w] = h
        self.version = target_version

    def overlay(
        self, updates: Iterable[tuple[int, int]], journal: list[tuple[int, int]]
    ) -> None:
        """Apply sparse count adjustments, journaling their inverses."""
        counts = self.counts
        for w, d in updates:
            counts[w] += d
            journal.append((w, -d))

    def revert(self, journal: list[tuple[int, int]]) -> None:
        """Unwind a journal of inverse adjustments (newest first)."""
        counts = self.counts
        while journal:
            w, d = journal.pop()
            counts[w] += d


class BatchSearchState:
    """Epoch-stamped state of ``k`` lockstepped searches over one graph.

    The 2-D struct-of-arrays twin of :class:`SearchState`: row ``i`` of
    :attr:`cost`/:attr:`backptr`/:attr:`node_epoch` is lane ``i``'s flat
    search state, and :attr:`heaps` holds the per-lane frontier heaps
    (parallel arrays of ``(f, g, node)`` entries, one list per lane).
    Vectorized relax steps scatter into the 2-D columns with fancy
    indexing; the per-lane pop phase reads them through the cached row
    memoryviews in :attr:`cost_rows` (C-speed scalar indexing).

    Lanes are invalidated in O(1) by bumping their :attr:`epoch` entry;
    :meth:`ensure` grows the state for larger batches while reusing the
    allocation for anything smaller.  One state serves one batch at a
    time — concurrent batches each own a state.
    """

    __slots__ = ("n", "k", "cost", "backptr", "node_epoch", "epoch", "heaps",
                 "cost_rows", "stamp_rows", "back_rows", "scratch")

    def __init__(self, n: int, k: int = 1) -> None:
        self.n = n
        self.k = 0
        self.ensure(max(1, k))

    def ensure(self, k: int) -> None:
        """Grow to at least ``k`` lanes (no-op when already large enough)."""
        if k <= self.k:
            return
        n = self.n
        self.cost = np.zeros((k, n), dtype=np.float64)
        self.backptr = np.full((k, n), -1, dtype=np.int32)
        self.node_epoch = np.zeros((k, n), dtype=np.int32)
        #: per-lane current epoch (fresh columns start all-stale at 0)
        self.epoch = np.zeros(k, dtype=np.int64)
        self.heaps: list[list[tuple[float, float, int]]] = [[] for _ in range(k)]
        self.cost_rows = [memoryview(row) for row in self.cost]
        self.stamp_rows = [memoryview(row) for row in self.node_epoch]
        self.back_rows = [memoryview(row) for row in self.backptr]
        #: per-(lane, node) slot for the relax phase's duplicate-target
        #: resolution; every slot read was written the same pass, so the
        #: contents never need clearing between rounds or batches
        self.scratch = np.empty(k * n, dtype=np.int64)
        self.k = k


def dijkstra(
    graph: RoutingGraph,
    state: SearchState,
    starts: Iterable[int],
    targets: Collection[int],
    *,
    occupied: Sequence[bool] | None = None,
    allow: Container[int] = frozenset(),
    name_blocked: Sequence[int] | None = None,
    h: Callable[[int, int, int, int], float] | None = None,
    congestion: tuple[Sequence[float], Sequence[float], float] | None = None,
    fault_node: Sequence[bool] | None = None,
    fault_edge: FaultEdgeMask | None = None,
    max_nodes: int = 200_000,
    stats: SearchStats | None = None,
    deadline: "Deadline | None" = None,
) -> tuple[int, float, int, int, int, bool, bool]:
    """One lowest-cost search from ``starts`` to any of ``targets``.

    Parameters
    ----------
    occupied:
        Indexable truthiness per canonical wire; a truthy wire is
        impassable unless listed in ``allow``.
    name_blocked:
        Optional per-*name* mask (longs disabled, avoided classes).
    h:
        Optional A* heuristic ``h(canon_to, to_name, row, col)``.
    congestion:
        Optional ``(use_count, history, present_factor)`` flat tables:
        the edge cost becomes
        ``base * (1 + pf * use_count[to]) + history[to]`` (PathFinder).
    fault_node / fault_edge:
        Fault masks; skipped resources are counted as faults avoided.
    deadline:
        Optional cooperative :class:`~repro.core.deadline.Deadline`;
        polled every 1024 expansions.  A tripped deadline abandons the
        search with ``timed_out`` set (the deadline-free fast loops are
        untouched, so a ``None`` deadline costs nothing).

    Returns ``(goal, cost, expanded, pushes, faults_avoided, exceeded,
    timed_out)`` with ``goal == -1`` when no target was reached
    (``exceeded`` set when the node budget ran out first, ``timed_out``
    when the deadline tripped first).
    """
    epoch = state.epoch + 1
    state.epoch = epoch
    dist = state.dist
    prev = state.prev
    stamp = state.stamp
    off = graph.off
    deg = graph.deg
    e_to = graph.e_to
    e_toname = graph.e_toname
    e_cost = graph.e_cost
    e_row = graph.e_row
    e_col = graph.e_col
    materialize = graph._materialize
    target_set = (
        targets if isinstance(targets, (set, frozenset)) else set(targets)
    )
    femask = fault_edge.mask if fault_edge is not None else None
    if congestion is not None:
        use_count, history, pf = congestion
    heap: list[tuple[float, float, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    if h is None:
        for s in starts:
            dist[s] = 0.0
            stamp[s] = epoch
            prev[s] = -1
            heap.append((0.0, 0.0, s))
        heapq.heapify(heap)
    else:
        p_row, p_col, p_name = graph.tiles()
        for s in starts:
            dist[s] = 0.0
            stamp[s] = epoch
            prev[s] = -1
            push(heap, (h(s, p_name[s], p_row[s], p_col[s]), 0.0, s))

    expanded = 0
    pushes = 0
    faults_avoided = 0
    goal = -1
    goal_cost = 0.0
    exceeded = False
    timed_out = False
    # The hot maze configuration (no fault masks, no name filtering, no
    # congestion pricing, no deadline) runs specialized loops with every
    # per-edge branch hoisted out; everything else takes the general loop
    # below.  Keeping deadline-bounded searches out of the fast loops is
    # what makes a ``None`` deadline genuinely free.
    fast = (
        name_blocked is None
        and femask is None
        and fault_node is None
        and congestion is None
        and occupied is not None
        and deadline is None
    )
    if occupied is not None and not isinstance(occupied, (list, memoryview)):
        try:
            occupied = memoryview(occupied)  # cheaper scalar indexing
        except TypeError:
            pass
    if fast and h is None:
        # `fast` requires deadline is None (checked above): this loop is
        # intentionally poll-free — that is the point of the fast path
        while heap:
            f, g, canon = pop(heap)
            if g > dist[canon]:
                continue  # stale entry
            if canon in target_set:
                goal = canon
                goal_cost = g
                break
            expanded += 1
            if expanded > max_nodes:
                exceeded = True
                break
            o = off[canon]
            if o < 0:
                o = materialize(canon)
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if occupied[to] and to not in allow:
                    continue
                ng = g + e_cost[e]
                if stamp[to] != epoch:
                    stamp[to] = epoch
                elif ng >= dist[to]:
                    continue
                dist[to] = ng
                prev[to] = e
                pushes += 1
                push(heap, (ng, ng, to))
    elif fast:
        # same contract: fast implies deadline is None
        while heap:
            f, g, canon = pop(heap)
            if g > dist[canon]:
                continue  # stale entry
            if canon in target_set:
                goal = canon
                goal_cost = g
                break
            expanded += 1
            if expanded > max_nodes:
                exceeded = True
                break
            o = off[canon]
            if o < 0:
                o = materialize(canon)
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if occupied[to] and to not in allow:
                    continue
                ng = g + e_cost[e]
                if stamp[to] != epoch:
                    stamp[to] = epoch
                elif ng >= dist[to]:
                    continue
                dist[to] = ng
                prev[to] = e
                pushes += 1
                push(heap, (ng + h(to, e_toname[e], e_row[e], e_col[e]), ng, to))
    else:
        while heap:
            f, g, canon = pop(heap)
            if g > dist[canon]:
                continue  # stale entry
            if canon in target_set:
                goal = canon
                goal_cost = g
                break
            if fault_node is not None and fault_node[canon]:
                # a dead/pre-driven start wire cannot launch the signal
                faults_avoided += 1
                continue
            if (
                deadline is not None
                and (expanded & _DEADLINE_MASK) == 0
                and deadline.expired()
            ):
                timed_out = True
                break
            expanded += 1
            if expanded > max_nodes:
                exceeded = True
                break
            o = off[canon]
            if o < 0:
                o = materialize(canon)
                if femask is not None:
                    fault_edge.sync()  # extends femask in place
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if name_blocked is not None and name_blocked[e_toname[e]]:
                    continue
                if femask is not None and femask[e]:
                    faults_avoided += 1
                    continue
                if occupied is not None and occupied[to] and to not in allow:
                    continue
                if congestion is None:
                    ng = g + e_cost[e]
                else:
                    ng = g + e_cost[e] * (1.0 + pf * use_count[to]) + history[to]
                if stamp[to] != epoch:
                    stamp[to] = epoch
                elif ng >= dist[to]:
                    continue
                dist[to] = ng
                prev[to] = e
                pushes += 1
                if h is None:
                    push(heap, (ng, ng, to))
                else:
                    push(
                        heap,
                        (ng + h(to, e_toname[e], e_row[e], e_col[e]), ng, to),
                    )

    if stats is not None:
        # Accumulate into the caller's private stats only; the owner
        # publishes the merged batch via record_global() at its barrier.
        stats.searches += 1
        stats.nodes_expanded += expanded
        stats.heap_pushes += pushes
        stats.faults_avoided += faults_avoided
    else:
        # Stats-less callers still count globally, atomically.
        record_global(
            SearchStats(1, expanded, pushes, faults_avoided)
        )
    return goal, goal_cost, expanded, pushes, faults_avoided, exceeded, timed_out


def extract_plan(
    graph: RoutingGraph, state: SearchState, goal: int
) -> list[tuple[int, int, int, int]]:
    """Back-walk ``prev`` edges from ``goal`` into a source-to-sink plan."""
    prev = state.prev
    e_row = graph.e_row
    e_col = graph.e_col
    e_from = graph.e_from
    e_toname = graph.e_toname
    e_src = graph.e_src
    plan: list[tuple[int, int, int, int]] = []
    e = prev[goal]
    while e != -1:
        plan.append((e_row[e], e_col[e], e_from[e], e_toname[e]))
        e = prev[e_src[e]]
    plan.reverse()
    return plan


def extract_plan_lane(
    graph: RoutingGraph, bstate: BatchSearchState, lane: int, goal: int
) -> list[tuple[int, int, int, int]]:
    """:func:`extract_plan` over one lane of a :class:`BatchSearchState`."""
    prev = bstate.backptr[lane]
    e_row = graph.e_row
    e_col = graph.e_col
    e_from = graph.e_from
    e_toname = graph.e_toname
    e_src = graph.e_src
    plan: list[tuple[int, int, int, int]] = []
    e = int(prev[goal])
    while e != -1:
        plan.append((e_row[e], e_col[e], e_from[e], e_toname[e]))
        e = int(prev[e_src[e]])
    plan.reverse()
    return plan

# -- batched search ------------------------------------------------------------


def dijkstra_batch(
    graph: RoutingGraph,
    bstate: BatchSearchState,
    requests: Sequence[tuple[Collection[int], Collection[int]]],
    *,
    occupied: Sequence[bool] | None = None,
    allows: Sequence[Collection[int]] | None = None,
    name_blocked: Sequence[int] | None = None,
    hs: Sequence[Callable[[int, int, int, int], float] | None] | None = None,
    congestion: tuple[Sequence[float], Sequence[float], float] | None = None,
    fault_node: Sequence[bool] | None = None,
    fault_edge: "FaultEdgeMask | Sequence[int] | None" = None,
    max_nodes: int = 200_000,
    stats: SearchStats | None = None,
    deadline: "Deadline | None" = None,
) -> list[tuple[int, float, int, int, int, bool, bool]]:
    """``k`` independent searches, level-synchronous over the CSR arrays.

    Each entry of ``requests`` is one ``(starts, targets)`` search.  The
    engine is a vectorized wavefront: per round, every lane expands its
    whole *safe prefix* — all frontier entries cheaper than
    ``frontier_min + min_edge_cost`` — then one numpy relax pass runs
    over the union of all expanded nodes' edge runs (gather / mask /
    congestion-priced compare / scatter on the CSR columns).  The safe
    prefix is what makes batching exact: any cost produced this round is
    at least the prefix bound, so no same-round relaxation can improve,
    reorder, or tie with a prefix member, and expanding the prefix
    together replays the scalar heap's pop order (ascending ``(cost,
    node)``) exactly.  Results — plans, costs, and every
    :class:`SearchStats` counter — are **bit-identical** to ``k``
    sequential :func:`dijkstra` calls:

    * masks apply in the scalar loop's order (name filter, fault edges
      counted, occupancy with per-lane allow lists);
    * parallel edges onto one target relax one scan-order occurrence at
      a time, so every strict improvement is counted (and its frontier
      entry pushed) exactly as the scalar loop would, superseded entries
      dying later as stale pops;
    * per-entry outcome checks (target hit, ``max_nodes`` budget,
      deadline poll points every ``_DEADLINE_MASK + 1`` expansions)
      replay the scalar loop's per-pop precedence inside each prefix.

    Lanes given an A* heuristic (``hs[lane]``) cannot be
    level-decomposed — biased keys do not guarantee the safe-prefix
    property — so they run the scalar loop per lane over their slice of
    the batch state instead: exact by construction, and still sharing
    the batch's single fault-mask sync and stats publication.

    Parameters mirror :func:`dijkstra`, with three batch extensions:
    ``allows`` is an optional per-lane collection of allowed occupied
    wires; ``hs`` is an optional per-lane sequence of scalar A*
    heuristics ``h(canon_to, to_name, row, col)``; ``fault_edge`` may be
    a raw per-edge mask buffer (process workers ship bytes) as well as a
    :class:`~repro.arch.graph.FaultEdgeMask`, which is synced **once for
    the whole batch** — the graph is force-compiled up front, so no
    mid-search materialization can invalidate any flat view.

    Returns one ``(goal, cost, expanded, pushes, faults_avoided,
    exceeded, timed_out)`` tuple per request.  With ``stats=None`` the
    whole batch is published to :data:`GLOBAL_STATS` as a single
    :func:`record_global` call.
    """
    k = len(requests)
    if k == 0:
        return []
    off_v, deg_v, e_to_v, e_cost_v, e_toname_v, e_row_v, e_col_v = (
        graph.np_columns()  # force-compiles the graph
    )
    n = graph.n_nodes
    c_min = graph.min_edge_cost()
    # scalar columns for the per-lane scalar loop (A* lanes)
    e_to = graph.e_to
    e_toname = graph.e_toname
    e_cost = graph.e_cost
    e_row = graph.e_row
    e_col = graph.e_col
    off = graph.off
    deg = graph.deg

    if fault_edge is None:
        femask_sc = None
        femask_np = None
    else:
        if isinstance(fault_edge, FaultEdgeMask):
            fault_edge.sync()  # the one mask application for the batch
            femask_sc = fault_edge.mask
        else:
            femask_sc = fault_edge
        femask_np = np.frombuffer(femask_sc, dtype=np.uint8)
    nb_v = (
        None
        if name_blocked is None
        else np.frombuffer(name_blocked, dtype=np.uint8)
    )
    if occupied is None:
        occ_v = occ_sc = None
    else:
        occ_v = np.asarray(occupied, dtype=bool)
        occ_sc = occupied
        if not isinstance(occ_sc, (list, memoryview)):
            try:
                occ_sc = memoryview(occ_sc)  # cheaper scalar indexing
            except TypeError:
                pass
    fault_np = (
        np.asarray(fault_node, dtype=bool) if fault_node is not None else None
    )
    fault_mv = fault_node
    if isinstance(fault_mv, np.ndarray):
        fault_mv = memoryview(fault_mv)  # cheaper scalar indexing
    if congestion is not None:
        use_count, history, pf = congestion
        use_v = np.asarray(use_count, dtype=np.float64)
        hist_v = np.asarray(history, dtype=np.float64)
    allow_sets: list[Collection[int]] = (
        [a if a else frozenset() for a in allows]
        if allows is not None
        else [frozenset()] * k
    )
    allow_np: list[np.ndarray | None] = [
        np.fromiter(a, dtype=np.int64, count=len(a)) if a else None
        for a in allow_sets
    ]
    if hs is None:
        hs = [None] * k
    # an all-clear mask is semantically identical to no mask at all;
    # eliding it up front spares every round its per-edge gathers
    if nb_v is not None and not nb_v.any():
        nb_v = None
    if femask_np is not None and not femask_np.any():
        femask_np = None
        femask_sc = None
    if occ_v is not None and not occ_v.any():
        occ_v = None
        occ_sc = None
    if fault_np is not None and not fault_np.any():
        fault_np = None
        fault_mv = None

    bstate.ensure(k)
    cost2d = bstate.cost
    back2d = bstate.backptr
    stamp2d = bstate.node_epoch
    epochs = bstate.epoch
    heaps = bstate.heaps
    cost_rows = bstate.cost_rows
    stamp_rows = bstate.stamp_rows
    back_rows = bstate.back_rows
    # flat views: one (lane * n + node) index serves gather and scatter
    cost_flat = cost2d.reshape(-1)
    back_flat = back2d.reshape(-1)
    scratch = bstate.scratch

    push = heapq.heappush
    pop = heapq.heappop
    p_tiles = graph.tiles() if any(h is not None for h in hs) else None

    target_sets: list[Collection[int]] = []
    targ_np: list[np.ndarray | None] = [None] * k
    fr_g: list[np.ndarray | None] = [None] * k
    fr_node: list[np.ndarray | None] = [None] * k
    expanded = [0] * k
    pushes = [0] * k
    fav = [0] * k
    goal = [-1] * k
    goal_cost = [0.0] * k
    exceeded = [False] * k
    timed_out = [False] * k
    fast: list[int] = []
    slow: list[int] = []
    for lane, (starts, targets) in enumerate(requests):
        epochs[lane] += 1
        ep = int(epochs[lane])
        heap = heaps[lane]
        heap.clear()
        tset = targets if isinstance(targets, (set, frozenset)) else set(targets)
        target_sets.append(tset)
        hl = hs[lane]
        if hl is None and c_min > 0.0:
            ss = np.fromiter(starts, dtype=np.int64, count=len(starts))
            if ss.size == 0:
                continue
            # fast lanes trade the epoch-stamp protocol for an up-front
            # +inf fill: "unvisited always loses" becomes a plain cost
            # compare, sparing every relax round its stamp gathers
            row = cost2d[lane]
            row.fill(np.inf)
            row[ss] = 0.0
            back2d[lane, ss] = -1
            fr_g[lane] = np.zeros(ss.size, dtype=np.float64)
            fr_node[lane] = ss
            targ_np[lane] = np.fromiter(
                tset, dtype=np.int64, count=len(tset)
            )
            fast.append(lane)
        else:
            crow = cost_rows[lane]
            srow = stamp_rows[lane]
            brow = back_rows[lane]
            any_start = False
            if hl is None:
                for s in starts:
                    crow[s] = 0.0
                    srow[s] = ep
                    brow[s] = -1
                    heap.append((0.0, 0.0, s))
                    any_start = True
                heapq.heapify(heap)
            else:
                p_row, p_col, p_name = p_tiles
                for s in starts:
                    crow[s] = 0.0
                    srow[s] = ep
                    brow[s] = -1
                    push(heap, (hl(s, p_name[s], p_row[s], p_col[s]), 0.0, s))
                    any_start = True
            if any_start:
                slow.append(lane)

    def drain(lane: int) -> None:
        # One lane on the scalar loop (the exact op order of
        # :func:`dijkstra`'s general loop, over this lane's row state) —
        # for lanes whose A* keys rule out safe-prefix vectorization.
        heap = heaps[lane]
        crow = cost_rows[lane]
        srow = stamp_rows[lane]
        brow = back_rows[lane]
        ep = int(epochs[lane])
        tset = target_sets[lane]
        allow = allow_sets[lane]
        hl = hs[lane]
        e_l = expanded[lane]
        p_l = pushes[lane]
        f_l = fav[lane]
        while heap:
            f, g, canon = pop(heap)
            if g > crow[canon]:
                continue  # stale entry
            if canon in tset:
                goal[lane] = canon
                goal_cost[lane] = g
                break
            if fault_mv is not None and fault_mv[canon]:
                f_l += 1
                continue
            if (
                deadline is not None
                and (e_l & _DEADLINE_MASK) == 0
                and deadline.expired()
            ):
                timed_out[lane] = True
                break
            e_l += 1
            if e_l > max_nodes:
                exceeded[lane] = True
                break
            o = off[canon]
            for e in range(o, o + deg[canon]):
                to = e_to[e]
                if nb_v is not None and name_blocked[e_toname[e]]:
                    continue
                if femask_sc is not None and femask_sc[e]:
                    f_l += 1
                    continue
                if occ_sc is not None and occ_sc[to] and to not in allow:
                    continue
                if congestion is None:
                    ng = g + e_cost[e]
                else:
                    ng = g + e_cost[e] * (1.0 + pf * use_count[to]) + history[to]
                if srow[to] != ep:
                    srow[to] = ep
                elif ng >= crow[to]:
                    continue
                crow[to] = ng
                brow[to] = e
                p_l += 1
                if hl is None:
                    push(heap, (ng, ng, to))
                else:
                    push(
                        heap,
                        (ng + hl(to, e_toname[e], e_row[e], e_col[e]), ng, to),
                    )
        expanded[lane] = e_l
        pushes[lane] = p_l
        fav[lane] = f_l

    for lane in slow:
        drain(lane)

    active = fast
    while active:
        expired = deadline is not None and deadline.expired()
        still: list[int] = []
        rl_lane: list[np.ndarray] = []
        rl_node: list[np.ndarray] = []
        rl_g: list[np.ndarray] = []
        round_lanes: list[int] = []
        # -- pop phase: per lane, expand the whole safe prefix
        for lane in active:
            fg = fr_g[lane]
            fn = fr_node[lane]
            if fg.size == 0:
                continue  # frontier exhausted: goal stays -1
            bound = fg.min() + c_min
            m = fg < bound
            pg = fg[m]
            pn = fn[m]
            inv = ~m
            fr_g[lane] = fg[inv]
            fr_node[lane] = fn[inv]
            # lazy deletion, exactly like the scalar heap's stale check
            fresh = pg <= cost2d[lane, pn]
            if not fresh.all():
                pg = pg[fresh]
                pn = pn[fresh]
            if pg.size == 0:
                still.append(lane)
                continue
            order = np.lexsort((pn, pg))  # the heap's (cost, node) order
            pg = pg[order]
            pn = pn[order]
            ta = targ_np[lane]
            is_t = (pn == ta[0]) if ta.size == 1 else np.isin(pn, ta)
            if fault_np is not None:
                is_f = fault_np[pn]
                normal = ~(is_t | is_f)
            else:
                is_f = None
                normal = ~is_t
            e0 = expanded[lane]
            seg = pg.size
            # per-entry precedence within the prefix, as the scalar pop
            # loop would apply it: target, then deadline poll, then the
            # expansion-budget crossing
            cut = seg
            outcome = 0
            if is_t.any():
                cut = int(np.argmax(is_t))
                outcome = 1
            nrank = None
            if expired:
                nrank = np.cumsum(normal) - 1
                pollable = normal & (((e0 + nrank) & _DEADLINE_MASK) == 0)
                cand = np.flatnonzero(pollable)
                if cand.size and cand[0] < cut:
                    cut = int(cand[0])
                    outcome = 2
            if e0 + seg > max_nodes:
                if nrank is None:
                    nrank = np.cumsum(normal) - 1
                capc = np.flatnonzero(normal & (nrank == max_nodes - e0))
                if capc.size and capc[0] < cut:
                    cut = int(capc[0])
                    outcome = 3
            if is_f is not None and cut:
                fav[lane] += int(is_f[:cut].sum())
            sel = normal[:cut]
            n_exp = int(sel.sum())
            expanded[lane] = e0 + n_exp
            if outcome == 1:
                goal[lane] = int(pn[cut])
                goal_cost[lane] = float(pg[cut])
            elif outcome == 2:
                timed_out[lane] = True
            elif outcome == 3:
                expanded[lane] = e0 + n_exp + 1  # the crossing pop counts
                exceeded[lane] = True
            else:
                still.append(lane)
            if n_exp:
                rl_lane.append(np.full(n_exp, lane, dtype=np.int64))
                rl_node.append(pn[:cut][sel])
                rl_g.append(pg[:cut][sel])
                round_lanes.append(lane)
        active = still
        if not rl_node:
            continue

        # -- relax phase: one vectorized sweep over the union of the
        #    expanded nodes' edge runs
        nodes_a = np.concatenate(rl_node)
        lanes_a = np.concatenate(rl_lane)
        g_a = np.concatenate(rl_g)
        degs = deg_v[nodes_a]
        total = int(degs.sum())
        if total == 0:
            continue
        ends = np.cumsum(degs)
        e_idx = np.repeat(off_v[nodes_a] - (ends - degs), degs) + _arange(total)
        to_e = e_to_v[e_idx]
        lane_e = np.repeat(lanes_a, degs)
        # masks in the scalar loop's order: name filter, fault edges
        # (counted), occupancy (with per-lane allow-list correction)
        keep = None
        if nb_v is not None:
            keep = nb_v[e_toname_v[e_idx]] == 0
        if femask_np is not None:
            hit = femask_np[e_idx] != 0
            if keep is not None:
                hit &= keep
            if hit.any():
                lane_hits = np.bincount(lane_e[hit], minlength=k)
                for lane, c in enumerate(lane_hits.tolist()):
                    if c:
                        fav[lane] += c
            keep = ~hit if keep is None else keep & ~hit
        if occ_v is not None:
            occ = occ_v[to_e]
            for lane in round_lanes:
                al = allow_np[lane]
                if al is not None:
                    lm = lane_e == lane
                    occ[lm] &= ~np.isin(to_e[lm], al)
            keep = ~occ if keep is None else keep & ~occ
        if keep is None:
            e_k = e_idx
            lane_k = lane_e
            to_k = to_e
            g_k = np.repeat(g_a, degs)
        else:
            kidx = np.flatnonzero(keep)
            if kidx.size == 0:
                continue
            e_k = e_idx[kidx]
            lane_k = lane_e[kidx]
            to_k = to_e[kidx]
            g_k = np.repeat(g_a, degs)[kidx]
        if congestion is None:
            ng_k = g_k + e_cost_v[e_k]
        else:
            ng_k = (
                g_k
                + e_cost_v[e_k] * (1.0 + pf * use_v[to_k])
                + hist_v[to_k]
            )
        # an edge that cannot beat the pre-round cost can never win
        # mid-round either (costs only decrease), so filter early;
        # unvisited rows hold +inf, so one gather doubles as the
        # scalar protocol's "unvisited always loses" rule
        flat_k = lane_k * n + to_k
        ci = np.flatnonzero(ng_k < cost_flat[flat_k])
        if ci.size == 0:
            continue
        flat_c = flat_k[ci]
        to_c = to_k[ci]
        ng_c = ng_k[ci]
        e_c = e_k[ci]
        lane_c = lane_k[ci]

        # several expanded nodes (or parallel edges of one node) can
        # target the same (lane, wire) this round; the scalar loop
        # relaxes them in scan order, pushing every running-cost
        # improvement.  Replay that order one occurrence at a time
        # without sorting: pass r scatters the standing candidates'
        # positions into each key's scratch slot *reversed*, so the
        # last write — the key's earliest remaining candidate — wins;
        # those scan-order winners are peeled off and the pass repeats
        # on the rest.  Every slot read was written the same pass, so
        # the scratch carries no state between rounds.
        pos = _arange(flat_c.size)
        first_pass = True
        while pos.size:
            keys = flat_c if first_pass else flat_c[pos]
            scratch[keys[::-1]] = pos[::-1]
            firsts = scratch[keys] == pos
            if firsts.all():
                wsel = pos
                pos = pos[:0]
            else:
                wsel = pos[firsts]
                pos = pos[~firsts]
            if first_pass and wsel.size == flat_c.size:
                wl, wt, wv, we, wf = lane_c, to_c, ng_c, e_c, flat_c
            else:
                wl = lane_c[wsel]
                wt = to_c[wsel]
                wv = ng_c[wsel]
                we = e_c[wsel]
                wf = flat_c[wsel]
            if not first_pass:
                # later occurrences must also beat what the earlier
                # passes just wrote (first occurrences always win: the
                # pre-round filter already vouched for them)
                ii = np.flatnonzero(wv < cost_flat[wf])
                if ii.size == 0:
                    continue
                wl = wl[ii]
                wt = wt[ii]
                wv = wv[ii]
                we = we[ii]
                wf = wf[ii]
            first_pass = False
            cost_flat[wf] = wv
            back_flat[wf] = we
            # every improvement becomes a frontier entry (and a counted
            # push), exactly as the scalar loop pushes; superseded ones
            # die later as stale pops, matching the heap's lazy
            # deletion.  The pop phase walked lanes in ascending order,
            # so `wl` is non-decreasing and splits without a sort.
            fw = np.empty(wl.size, dtype=bool)
            fw[0] = True
            fw[1:] = wl[1:] != wl[:-1]
            ui = np.flatnonzero(fw)
            splits = np.append(ui, wl.size)
            # O(lanes) bookkeeping, not O(elements)
            for j in range(ui.size):  # repro: noqa RPR007
                a = int(splits[j])
                b = int(splits[j + 1])
                lane = int(wl[a])
                pushes[lane] += b - a
                fr_g[lane] = np.concatenate((fr_g[lane], wv[a:b]))
                fr_node[lane] = np.concatenate((fr_node[lane], wt[a:b]))

    batch = SearchStats(k, sum(expanded), sum(pushes), sum(fav))
    if stats is not None:
        stats.merge(batch)
    else:
        # one lock-guarded publication for the whole batch
        record_global(batch)
    return [
        (
            goal[i],
            goal_cost[i],
            expanded[i],
            pushes[i],
            fav[i],
            exceeded[i],
            timed_out[i],
        )
        for i in range(k)
    ]
