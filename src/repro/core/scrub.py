"""Configuration scrubbing: detect and repair bitstream upsets.

On-orbit and high-radiation deployments of run-time reconfigurable
fabrics pair the router with a *scrubber*: a background task that reads
configuration frames back, compares them with a known-good image and
rewrites any frame an SEU (single-event upset) has corrupted.  This
module provides that loop over the simulated
:class:`~repro.jbits.bitstream.ConfigMemory`:

* :func:`inject_seu` — seeded fault injection that flips configuration
  bits *silently* (directly on the bit array, bypassing the dirty-frame
  tracking), the way a real upset would;
* :class:`Scrubber` — holds a golden copy of the memory, scans
  frame-by-frame (:meth:`Scrubber.scan`), classifies every drifted bit
  (spurious PIP, dropped PIP, LUT/mode corruption, padding) and repairs
  drifted frames transactionally (:meth:`Scrubber.scrub`) — only
  corrupted frames are rewritten, so unaffected nets are never
  disturbed.

The scrubber guards the window *between* checkpoints: a
:class:`~repro.core.wal.DurableSession` makes routing durable across
process crashes, while the scrubber keeps the configuration itself
honest while the process lives.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from .. import errors
from ..arch import connectivity, wires
from ..device.fabric import Device
from ..jbits.bitstream import LUT_BITS, PIP_BITS, ConfigMemory

__all__ = [
    "ScrubRecord",
    "ScrubReport",
    "Scrubber",
    "inject_seu",
]


def inject_seu(
    memory: ConfigMemory,
    *,
    n_flips: int = 1,
    seed: int | None = None,
    rng: random.Random | None = None,
) -> list[int]:
    """Flip ``n_flips`` distinct configuration bits, silently.

    Writes the bit array directly — the dirty-frame tracking does NOT
    see the change, exactly like a radiation upset that no write ever
    announced.  Returns the flipped absolute bit addresses (sorted), so
    tests can assert the scrubber found every one.
    """
    if rng is None:
        rng = random.Random(seed)
    n_bits = len(memory.bits)
    if not 0 < n_flips <= n_bits:
        raise errors.BitstreamError(f"cannot flip {n_flips} of {n_bits} bits")
    addresses = rng.sample(range(n_bits), n_flips)
    for addr in addresses:
        memory.bits[addr] ^= 1  # bypasses set_bit: no dirty marking
    return sorted(addresses)


@dataclass(frozen=True, slots=True)
class ScrubRecord:
    """One drifted configuration bit, classified.

    ``kind`` is one of:

    ``"spurious-pip"``
        a PIP bit flipped *on* — the bitstream routes a connection the
        behavioural state never made;
    ``"dropped-pip"``
        a PIP bit flipped *off* — a live net lost a branch;
    ``"lut"`` / ``"mode"``
        logic configuration corrupted (truth tables / slice modes);
    ``"global"`` / ``"padding"``
        the global-buffer frame or inter-tile padding bits.
    """

    kind: str
    frame: int
    address: int
    row: int = -1           #: -1 for global/padding bits
    col: int = -1
    from_wire: str = ""     #: PIP endpoints (names), for *-pip kinds
    to_wire: str = ""
    #: canonical source of the net using the PIP's destination, if any
    net: int | None = None

    def context(self) -> dict[str, int | str]:
        """Structured fields, :meth:`RoutingFailure.context`-shaped."""
        out: dict[str, int | str] = {"row": self.row, "col": self.col}
        if self.to_wire:
            out["wire"] = self.to_wire
        if self.net is not None:
            out["net"] = self.net
        return out

    def __str__(self) -> str:
        where = f"frame {self.frame} bit {self.address}"
        if self.kind == "spurious-pip":
            return (
                f"SEU set PIP {self.from_wire} -> {self.to_wire} at "
                f"({self.row},{self.col}) [{where}]"
            )
        if self.kind == "dropped-pip":
            tail = f" of net {self.net}" if self.net is not None else ""
            return (
                f"SEU cleared PIP {self.from_wire} -> {self.to_wire} at "
                f"({self.row},{self.col}){tail} [{where}]"
            )
        if self.kind in ("lut", "mode"):
            return (
                f"SEU corrupted {self.kind} bits at ({self.row},{self.col}) "
                f"[{where}]"
            )
        return f"SEU in {self.kind} region [{where}]"


@dataclass(slots=True)
class ScrubReport:
    """Result of one scrub pass."""

    frames_scanned: int = 0
    #: frames whose contents differed from the golden image
    drifted_frames: list[int] = field(default_factory=list)
    #: every drifted bit, classified
    records: list[ScrubRecord] = field(default_factory=list)
    #: frames rewritten from the golden image
    frames_repaired: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.drifted_frames

    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def summary(self) -> str:
        if self.clean:
            return f"scrub: {self.frames_scanned} frame(s) clean"
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind().items()))
        return (
            f"scrub: {len(self.drifted_frames)} of {self.frames_scanned} "
            f"frame(s) drifted ({kinds}); "
            f"{len(self.frames_repaired)} repaired"
        )


class Scrubber:
    """Golden-image configuration scrubber for one memory.

    The golden image is a full copy of the memory, taken at construction
    and refreshed by :meth:`resync` (call it after *sanctioned* changes:
    routing, LUT loads) or automatically by :meth:`scrub` once a pass
    leaves live and golden identical.  Between resyncs, any divergence is
    drift by definition.

    ``device`` (optional) enriches PIP-bit classification with the net
    that owns the destination wire, mirroring
    :class:`~repro.jbits.readback.PipMismatch`.
    """

    def __init__(
        self, memory: ConfigMemory, *, device: Device | None = None
    ) -> None:
        self.memory = memory
        self.device = device
        self.golden = memory.copy()

    # -- golden image ----------------------------------------------------------

    def resync(self) -> None:
        """Adopt the live memory as the new golden image."""
        self.golden = self.memory.copy()

    # -- detection -------------------------------------------------------------

    def _classify_bit(self, address: int) -> ScrubRecord:
        frame = self.memory.frame_of_address(address)
        live_on = bool(self.memory.bits[address])
        located = self.memory.locate_bit(address)
        if located is None:
            kind = "global" if frame == self.memory.n_frames - 1 else "padding"
            return ScrubRecord(kind, frame, address)
        row, col, local = located
        if local >= PIP_BITS:
            kind = "lut" if local < PIP_BITS + LUT_BITS else "mode"
            return ScrubRecord(kind, frame, address, row=row, col=col)
        from_name, to_name = connectivity.PIP_LIST[local]
        net: int | None = None
        if self.device is not None:
            canon = self.device.arch.canonicalize(row, col, to_name)
            if canon is not None and self.device.state.is_driven(canon):
                net = self.device.state.root_of(canon)
        return ScrubRecord(
            "spurious-pip" if live_on else "dropped-pip",
            frame,
            address,
            row=row,
            col=col,
            from_wire=wires.wire_name(from_name),
            to_wire=wires.wire_name(to_name),
            net=net,
        )

    def scan(self) -> ScrubReport:
        """Frame-by-frame drift detection; classifies but does not repair."""
        report = ScrubReport(frames_scanned=self.memory.n_frames)
        report.drifted_frames = self.memory.diff_frames(self.golden)
        for frame in report.drifted_frames:
            live = self.memory.get_frame(frame)
            gold = self.golden.get_frame(frame)
            base = frame * self.memory.frame_bits
            for offset in np.flatnonzero(live != gold):
                report.records.append(self._classify_bit(base + int(offset)))
        return report

    # -- repair ----------------------------------------------------------------

    def scrub(self) -> ScrubReport:
        """One detect-classify-repair pass.

        Drifted frames are rewritten from the golden image
        transactionally: if any rewrite fails to verify, every frame
        already rewritten in this pass is restored to its pre-scrub
        contents and :class:`~repro.errors.TransactionError` is raised.
        Frames that match the golden image are never touched, so nets
        confined to clean frames are not disturbed.
        """
        report = self.scan()
        undo: list[tuple[int, np.ndarray]] = []
        try:
            for frame in report.drifted_frames:
                before = self.memory.get_frame(frame)
                self.memory.set_frame(frame, self.golden.get_frame(frame))
                if not np.array_equal(
                    self.memory.get_frame(frame), self.golden.get_frame(frame)
                ):  # pragma: no cover - defensive
                    raise errors.TransactionError(
                        f"frame {frame} failed to verify after repair"
                    )
                undo.append((frame, before))
                report.frames_repaired.append(frame)
        except Exception:
            for frame, before in reversed(undo):
                self.memory.set_frame(frame, before)
            raise
        return report
