"""Transactional routing sessions.

The paper treats route failures as terminal user-visible events
("the call would fail ... a user action is required"), but a multi-step
call (fanout level 5, bus level 6) that fails midway must never leave
partially-applied PIPs behind on a shared device.
:class:`RouteTransaction` makes any block of routing work atomic: it
journals every PIP event the device emits while the block runs, and on a
:class:`~repro.errors.JRouteError` rolls the
:class:`~repro.device.state.RoutingState`, the
:class:`~repro.core.netdb.NetDB` and — via the device's listener
mechanism — the mirrored JBits bitstream back to the pre-call state,
then audits the forest invariants
(:meth:`~repro.device.state.RoutingState.check_invariants`).

Usage::

    with RouteTransaction(device, netdb=router.netdb):
        ...  # any number of turn_on/turn_off/route steps
    # on JRouteError: everything is rolled back, the error propagates
"""

from __future__ import annotations

import copy

from .. import errors
from ..device.fabric import Device, PipEvent
from .netdb import NetDB

__all__ = ["PipJournal", "RouteTransaction"]


class PipJournal:
    """An ordered record of the PIP events a device emitted.

    The journaling core shared by :class:`RouteTransaction` (which undoes
    the journal on failure) and the write-ahead log
    (:class:`repro.core.wal.DurableSession`, which persists it).  Attach
    subscribes to the device's listener mechanism; every ``turn_on``/
    ``turn_off`` is then appended until :meth:`detach`.
    """

    __slots__ = ("device", "events", "_attached")

    def __init__(self, device: Device) -> None:
        self.device = device
        self.events: list[PipEvent] = []
        self._attached = False

    def attach(self) -> None:
        if self._attached:
            raise errors.TransactionError("journal already attached")
        self.device.add_listener(self.record)
        self._attached = True

    def detach(self) -> None:
        if self._attached:
            self.device.remove_listener(self.record)
            self._attached = False

    @property
    def attached(self) -> bool:
        return self._attached

    def record(self, event: PipEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def undo(self) -> None:
        """Replay the journal in reverse, inverting every event.

        The journal is cleared afterwards; the device's listeners (this
        journal included, when attached) observe the inverse events as
        ordinary PIP traffic — detach first when that is not wanted.
        """
        events = self.events
        self.events = []
        for on, rec in reversed(events):
            if on:
                self.device.turn_off(rec.row, rec.col, rec.from_name, rec.to_name)
            else:
                self.device.turn_on(rec.row, rec.col, rec.from_name, rec.to_name)


class RouteTransaction:
    """Context manager making a block of routing mutations atomic.

    Parameters
    ----------
    device:
        The device whose PIP changes are journaled.
    netdb:
        Optional net database to snapshot/restore alongside the device
        (the port registry is shared, not snapshotted: core placement is
        not part of routing transactions).
    audit:
        Run :meth:`RoutingState.check_invariants` after a rollback and
        raise :class:`~repro.errors.TransactionError` on any violation.

    Only :class:`~repro.errors.JRouteError` triggers rollback; other
    exceptions (and ``KeyboardInterrupt``) propagate without touching
    the state, since the journal cannot know how much of a non-routing
    failure's work is safe to undo.
    """

    def __init__(
        self, device: Device, *, netdb: NetDB | None = None, audit: bool = True
    ) -> None:
        self.device = device
        self.netdb = netdb
        self.audit = audit
        self._journal = PipJournal(device)
        self._net_sinks: dict | None = None
        self._net_source_ep: dict | None = None
        self._port_memory: dict | None = None
        self.active = False
        #: set True when __exit__ performed a rollback
        self.rolled_back = False

    # -- context protocol -----------------------------------------------------

    def __enter__(self) -> "RouteTransaction":
        if self.active:
            raise errors.TransactionError("transaction already active")
        self._journal.clear()
        self.rolled_back = False
        if self.netdb is not None:
            self._net_sinks = {
                src: set(sinks) for src, sinks in self.netdb.net_sinks.items()
            }
            self._net_source_ep = dict(self.netdb.net_source_ep)
            self._port_memory = copy.deepcopy(self.netdb.port_memory)
        self._journal.attach()
        self.active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._journal.detach()
        self.active = False
        if exc_type is not None and issubclass(exc_type, errors.JRouteError):
            self.rollback()
        return False

    def _record(self, event: PipEvent) -> None:
        self._journal.record(event)

    # -- rollback -------------------------------------------------------------

    @property
    def journal_length(self) -> int:
        """PIP events recorded so far (on and off)."""
        return len(self._journal)

    def rollback(self) -> None:
        """Undo every journaled PIP event in reverse and restore the
        net database, then audit state consistency."""
        self._journal.undo()
        # a mid-transaction rollback journals its own inverse events
        # (the listener is still attached); drop them too
        self._journal.clear()
        if self.netdb is not None and self._net_sinks is not None:
            self.netdb.net_sinks = self._net_sinks
            self.netdb.net_source_ep = self._net_source_ep
            self.netdb.port_memory = self._port_memory
            self._net_sinks = self._net_source_ep = self._port_memory = None
        self.rolled_back = True
        if self.audit:
            problems = self.device.state.check_invariants()
            if problems:
                raise errors.TransactionError(
                    "post-rollback invariant audit failed: "
                    + "; ".join(problems[:5])
                )
