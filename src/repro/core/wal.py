"""Durable routing sessions: write-ahead log, checkpoints, recovery.

The paper's run-time promise assumes the router process lives as long as
the device it reconfigures.  A long-running routing service breaks that
assumption: the process can die mid-session while the (simulated) device
keeps its configuration.  This module makes routing state *durable*:

* :class:`WriteAheadLog` — every :data:`~repro.device.fabric.PipEvent`
  the device emits is appended, CRC-framed, to a JSON-lines log before
  the session moves on.  The tail of a crashed write (a torn record) is
  detected and ignored on replay.
* checkpoints — :func:`write_checkpoint` snapshots the full session
  (:class:`~repro.device.state.RoutingState` as a replay-legal PIP list,
  the :class:`~repro.core.netdb.NetDB` net records, and the
  :class:`~repro.jbits.bitstream.ConfigMemory` bits) atomically, bounding
  replay cost; the WAL suffix past the checkpoint's sequence number is
  all recovery needs to re-apply.
* :class:`DurableSession` — the listener that does both, extending the
  :class:`~repro.core.txn.PipJournal` journaling that transactions use.
* :func:`recover` — rebuilds a :class:`~repro.core.router.JRouter` from
  checkpoint + WAL, replaying idempotently (an on-event for an on-PIP
  and an off-event for an off-PIP are no-ops), then reconciles the
  behavioural state against the bitstream via
  :func:`repro.jbits.readback.verify_against_device`.  Drift is repaired
  by :func:`reconcile`: spurious bitstream PIPs are cleared, dropped
  nets are unrouted (:func:`~repro.core.unroute.unroute_forward`) and
  re-routed from the net database — only the affected nets are touched.

The WAL records *routing* events only; LUT, slice-mode and global-buffer
configuration is captured by checkpoints (cores configure those once at
placement, and :mod:`repro.core.scrub` guards them between checkpoints).
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .. import errors
from ..device.fabric import Device, PipEvent
from .endpoints import Pin
from .netdb import NetDB
from .txn import PipJournal
from .unroute import unroute_forward

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..jbits.readback import PipMismatch
    from .router import JRouter

__all__ = [
    "WalRecord",
    "WalFrame",
    "WriteAheadLog",
    "iter_wal_frames",
    "write_checkpoint",
    "load_checkpoint",
    "DurableSession",
    "RecoveryReport",
    "recover",
    "reconcile",
]

WAL_VERSION = 1
CKPT_VERSION = 1


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One intact, CRC-verified WAL entry."""

    seq: int
    on: bool
    row: int
    col: int
    from_name: int
    to_name: int


@dataclass(frozen=True, slots=True)
class WalFrame:
    """One scanned WAL line, before replay-legality interpretation.

    The introspection unit of :func:`iter_wal_frames`: recovery keeps the
    intact prefix, while offline tooling (``repro analyze``) classifies
    every frame — including the broken ones — into findings.
    """

    #: 1-based line number in the file (the header is line 1)
    line: int
    #: parsed JSON payload with the CRC field still present (None when
    #: the line is not valid JSON — a torn or corrupt frame)
    payload: dict | None
    #: CRC field present and matching the payload
    crc_ok: bool
    #: the intact record (None for the header and for broken frames)
    record: WalRecord | None


def _crc(payload: dict) -> int:
    return zlib.crc32(json.dumps(payload, sort_keys=True).encode("ascii"))


def iter_wal_frames(path: str) -> tuple[dict | None, list[WalFrame]]:
    """Scan a WAL file frame by frame without judging it.

    Returns ``(header, frames)`` where ``header`` is the parsed header
    payload (None when line 1 is not a valid WAL header) and ``frames``
    covers every subsequent line.  Nothing raises on malformed input;
    this is the shared substrate of :meth:`WriteAheadLog._scan` (which
    enforces recovery semantics) and the route-lint WAL rules (which
    report every defect instead of stopping at the first).
    """
    frames: list[WalFrame] = []
    with open(path, "r", encoding="ascii", errors="replace") as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except ValueError:
            header = None
        if not isinstance(header, dict) or header.get("wal") != WAL_VERSION:
            header = None
        for lineno, raw in enumerate(fh, start=2):
            payload: dict | None
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = None
            if not isinstance(payload, dict):
                frames.append(WalFrame(lineno, None, False, None))
                continue
            body = dict(payload)
            crc = body.pop("crc", None)
            crc_ok = crc == _crc(body)
            record: WalRecord | None = None
            if crc_ok:
                try:
                    record = WalRecord(
                        int(body["seq"]),
                        bool(body["on"]),
                        int(body["row"]),
                        int(body["col"]),
                        int(body["from"]),
                        int(body["to"]),
                    )
                except (KeyError, TypeError, ValueError):
                    record = None
            frames.append(WalFrame(lineno, payload, crc_ok, record))
    return header, frames


class WriteAheadLog:
    """Append-only, CRC-framed log of PIP events (JSON lines).

    The first line is a header naming the part; every further line is one
    event with a sequence number and a CRC over its own payload.  Opening
    an existing log scans it to find the next sequence number, so a
    session can resume appending after a restart.
    """

    def __init__(self, path: str, *, part: str) -> None:
        self.path = path
        self.part = part
        self.next_seq = 0
        if os.path.exists(path) and os.path.getsize(path) > 0:
            header, records, _torn = self._scan(path)
            if header.get("part") != part:
                raise errors.TransactionError(
                    f"WAL is for part {header.get('part')!r}, not {part!r}",
                    path=path,
                    line=1,
                )
            if records:
                self.next_seq = records[-1].seq + 1
            self._fh = open(path, "a", encoding="ascii")
        else:
            self._fh = open(path, "w", encoding="ascii")
            self._fh.write(
                json.dumps({"wal": WAL_VERSION, "part": part}) + "\n"
            )
            self._fh.flush()

    # -- writing ---------------------------------------------------------------

    def append(self, event: PipEvent) -> int:
        """Durably append one PIP event; returns its sequence number."""
        on, rec = event
        seq = self.next_seq
        payload = {
            "seq": seq,
            "on": bool(on),
            "row": rec.row,
            "col": rec.col,
            "from": rec.from_name,
            "to": rec.to_name,
        }
        payload["crc"] = _crc(payload)
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        self.next_seq = seq + 1
        return seq

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ---------------------------------------------------------------

    @staticmethod
    def _scan(path: str) -> tuple[dict, list[WalRecord], bool]:
        """Parse header + intact records; a torn/corrupt tail stops the
        scan (everything after the first bad line is ignored)."""
        header, frames = iter_wal_frames(path)
        if header is None:
            raise errors.TransactionError(
                "not a WAL (bad header)", path=path, line=1
            )
        records: list[WalRecord] = []
        torn = False
        expect = 0
        for frame in frames:
            rec = frame.record
            if rec is None or rec.seq != expect:
                torn = True
                break
            records.append(rec)
            expect += 1
        return header, records, torn

    @classmethod
    def replay(cls, path: str) -> tuple[str, list[WalRecord], bool]:
        """Read a WAL for recovery.

        Returns ``(part, records, torn)`` where ``records`` are the
        intact prefix (a torn tail — the crash artifact — is dropped).
        """
        header, records, torn = cls._scan(path)
        return header["part"], records, torn


# -- checkpoints ---------------------------------------------------------------


def _replay_legal_pips(device: Device) -> list[list[int]]:
    """All on-PIPs as ``[row, col, from, to]``, drivers before driven.

    Preorder per net tree, so replaying with ``turn_on`` in order can
    never trip the contention or loop checks.
    """
    state = device.state
    out: list[list[int]] = []
    roots = sorted(
        w for w in state.children if state.driver[w] == -1
    )
    for root in roots:
        for rec in state.net_pips(root):
            out.append([rec.row, rec.col, rec.from_name, rec.to_name])
    return out


def checkpoint_path_for(wal_path: str) -> str:
    """Default checkpoint path alongside a WAL."""
    return wal_path + ".ckpt"


def write_checkpoint(
    path: str,
    device: Device,
    *,
    seq: int,
    netdb: NetDB | None = None,
    memory=None,
) -> None:
    """Atomically snapshot a session at WAL sequence ``seq``.

    ``memory`` is the session's :class:`ConfigMemory` (usually
    ``router.jbits.memory``); its bits capture LUT/mode/global state that
    PIP events do not.  The file is written to a temporary name and
    renamed into place, so a crash mid-checkpoint leaves the previous
    checkpoint intact.
    """
    nets = {}
    if netdb is not None:
        for src, sinks in netdb.net_sinks.items():
            ep = netdb.net_source_ep.get(src)
            if isinstance(ep, Pin):
                ep_ser = [ep.row, ep.col, ep.wire]
            else:
                # ports do not survive a process crash (no live core
                # objects); fall back to the source wire's primary pin
                ep_ser = None
            nets[str(src)] = {"sinks": sorted(sinks), "ep": ep_ser}
    body: dict = {
        "ckpt": CKPT_VERSION,
        "part": device.arch.part.name,
        "seq": seq,
        "pips": _replay_legal_pips(device),
        "nets": nets,
    }
    if memory is not None:
        packed = np.packbits(memory.bits)
        body["memory"] = {
            "n_bits": int(len(memory.bits)),
            "b64": base64.b64encode(packed.tobytes()).decode("ascii"),
            "dirty": sorted(memory.dirty_frames),
        }
    body["crc"] = _crc(body)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="ascii") as fh:
        json.dump(body, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: str) -> dict:
    """Read and CRC-verify a checkpoint file."""
    with open(path, "r", encoding="ascii") as fh:
        body = json.load(fh)
    crc = body.pop("crc", None)
    if body.get("ckpt") != CKPT_VERSION or crc != _crc(body):
        raise errors.TransactionError("corrupt checkpoint", path=path)
    return body


# -- the session listener ------------------------------------------------------


class _WalJournal(PipJournal):
    """A :class:`PipJournal` that also persists every event to a WAL."""

    __slots__ = ("wal", "after")

    def __init__(self, device: Device, wal: WriteAheadLog, after=None) -> None:
        super().__init__(device)
        self.wal = wal
        #: called after each persisted event (auto-checkpoint hook)
        self.after = after

    def record(self, event: PipEvent) -> None:
        super().record(event)
        self.wal.append(event)
        if self.after is not None:
            self.after()


class DurableSession:
    """Write-ahead logging plus periodic checkpoints for one router.

    Attach it around any stretch of routing work::

        with DurableSession(router, "session.wal", checkpoint_every=256):
            router.route(...)        # every PIP event hits the WAL first
        # crash at ANY point: recover("session.wal") rebuilds the state

    Parameters
    ----------
    router:
        The :class:`~repro.core.router.JRouter` whose device to journal.
    wal_path:
        Log file; an existing compatible WAL is resumed, not truncated.
    checkpoint_every:
        Auto-checkpoint after this many logged events (None = manual
        :meth:`checkpoint` only).  Checkpoints bound replay time and are
        atomic — a crash mid-checkpoint falls back to the previous one.
    """

    def __init__(
        self,
        router: "JRouter",
        wal_path: str,
        *,
        checkpoint_every: int | None = None,
    ) -> None:
        if router.jbits is None:
            raise errors.TransactionError(
                "DurableSession needs a JBits-attached router (the "
                "checkpoint captures the configuration memory)"
            )
        self.router = router
        self.wal = WriteAheadLog(wal_path, part=router.device.arch.part.name)
        self.checkpoint_every = checkpoint_every
        self._last_ckpt_seq = self.wal.next_seq
        self._journal = _WalJournal(
            router.device, self.wal, after=self._maybe_checkpoint
        )

    @property
    def seq(self) -> int:
        """Sequence number the next event will get."""
        return self.wal.next_seq

    def __enter__(self) -> "DurableSession":
        self._journal.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._journal.detach()
        self.wal.close()

    def _maybe_checkpoint(self) -> None:
        if (
            self.checkpoint_every is not None
            and self.wal.next_seq - self._last_ckpt_seq >= self.checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self, path: str | None = None) -> str:
        """Snapshot the session now; returns the checkpoint path."""
        path = checkpoint_path_for(self.wal.path) if path is None else path
        write_checkpoint(
            path,
            self.router.device,
            seq=self.wal.next_seq,
            netdb=self.router.netdb,
            memory=self.router.jbits.memory,
        )
        self._last_ckpt_seq = self.wal.next_seq
        return path


# -- recovery ------------------------------------------------------------------


@dataclass(slots=True)
class RecoveryReport:
    """What :func:`recover` did to rebuild a session."""

    #: checkpoint sequence the replay started from (0 = no checkpoint)
    checkpoint_seq: int = 0
    #: WAL records re-applied after the checkpoint
    replayed: int = 0
    #: records skipped because their effect was already present
    #: (idempotent replay of the checkpoint/WAL overlap)
    skipped: int = 0
    #: a torn record terminated the WAL (the crash artifact)
    torn_tail: bool = False
    #: bitstream/state drift found after replay (structured records)
    mismatches: list = field(default_factory=list)
    #: net sources unrouted + re-routed to repair drift
    nets_rerouted: list[int] = field(default_factory=list)
    #: nets routed after the checkpoint, rebuilt into the NetDB by
    #: tracing the replayed routing state
    nets_reconstructed: int = 0
    #: post-recovery configuration digest (RoutingState.fingerprint)
    fingerprint: str = ""

    def summary(self) -> str:
        line = (
            f"recovered from seq {self.checkpoint_seq}: "
            f"{self.replayed} event(s) replayed, {self.skipped} skipped"
        )
        if self.torn_tail:
            line += ", torn tail dropped"
        if self.nets_reconstructed:
            line += f", {self.nets_reconstructed} net record(s) rebuilt"
        if self.mismatches:
            line += (
                f", {len(self.mismatches)} drift record(s), "
                f"{len(self.nets_rerouted)} net(s) re-routed"
            )
        return line


def _apply_record(device: Device, rec: WalRecord) -> bool:
    """Idempotently apply one WAL record; returns True when it changed
    anything (False = skipped)."""
    if rec.on:
        if device.pip_is_on(rec.row, rec.col, rec.from_name, rec.to_name):
            return False
        device.turn_on(rec.row, rec.col, rec.from_name, rec.to_name)
        return True
    if not device.pip_is_on(rec.row, rec.col, rec.from_name, rec.to_name):
        return False
    device.turn_off(rec.row, rec.col, rec.from_name, rec.to_name)
    return True


def recover(
    wal_path: str,
    *,
    checkpoint_path: str | None = None,
    router_kwargs: dict | None = None,
) -> tuple["JRouter", RecoveryReport]:
    """Rebuild a router from a WAL (and checkpoint, when one exists).

    The checkpoint restores the bulk state; the WAL suffix past its
    sequence number is replayed idempotently; finally the behavioural
    state is reconciled against the recovered bitstream
    (:func:`reconcile`).  Returns the fresh
    :class:`~repro.core.router.JRouter` and a :class:`RecoveryReport`.
    """
    from .router import JRouter  # local import: router imports this module's deps

    part, records, torn = WriteAheadLog.replay(wal_path)
    report = RecoveryReport(torn_tail=torn)
    kwargs = dict(router_kwargs or {})
    kwargs.setdefault("part", part)
    kwargs["attach_jbits"] = True
    router = JRouter(**kwargs)
    device = router.device
    assert router.jbits is not None

    if checkpoint_path is None:
        checkpoint_path = checkpoint_path_for(wal_path)
    ckpt: dict | None = None
    if os.path.exists(checkpoint_path):
        ckpt = load_checkpoint(checkpoint_path)
        if ckpt["part"] != part:
            raise errors.TransactionError(
                f"checkpoint part {ckpt['part']!r} != WAL part {part!r}"
            )
    if ckpt is not None:
        report.checkpoint_seq = ckpt["seq"]
        for row, col, from_name, to_name in ckpt["pips"]:
            device.turn_on(row, col, from_name, to_name)
        for src_str, net in ckpt["nets"].items():
            src = int(src_str)
            ep_ser = net["ep"]
            if ep_ser is not None:
                ep = Pin(ep_ser[0], ep_ser[1], ep_ser[2])
            else:
                ep = Pin(*device.arch.primary_name(src))
            router.netdb.record_net(src, ep, net["sinks"])
        mem_ser = ckpt.get("memory")
        if mem_ser is not None:
            packed = np.frombuffer(
                base64.b64decode(mem_ser["b64"]), dtype=np.uint8
            )
            bits = np.unpackbits(packed)[: mem_ser["n_bits"]]
            memory = router.jbits.memory
            memory.bits = bits.astype(np.uint8).copy()
            memory._dirty = set(mem_ser["dirty"])

    for rec in records:
        if rec.seq < report.checkpoint_seq:
            continue
        if _apply_record(device, rec):
            report.replayed += 1
        else:
            report.skipped += 1

    # Nets routed after the last checkpoint exist only as replayed PIP
    # events; rebuild their NetDB records by tracing the state forest.
    # Symmetrically, nets the checkpoint knew but the WAL suffix unrouted
    # no longer drive anything: drop their stale records.
    from .tracer import trace_net

    state = device.state
    for root in sorted(w for w in state.children if state.driver[w] == -1):
        if root in router.netdb.net_sinks:
            continue
        trace = trace_net(device, root)
        router.netdb.record_net(
            root, Pin(*device.arch.primary_name(root)), trace.sinks
        )
        report.nets_reconstructed += 1
    for src in list(router.netdb.net_sinks):
        if not state.children_of(src):
            router.netdb.drop_net(src)

    report.mismatches, report.nets_rerouted = reconcile(router)
    report.fingerprint = device.state.fingerprint()
    return router, report


def reconcile(router: "JRouter") -> tuple[list["PipMismatch"], list[int]]:
    """Repair drift between behavioural state and the bitstream.

    Spurious bitstream PIPs (bits with no behavioural backing) are
    cleared; nets with dropped PIPs (behavioural branches the bitstream
    lost) are unrouted with :func:`unroute_forward` and re-routed from
    the net database — only the affected nets are disturbed.  Returns
    ``(mismatches_found, net_sources_rerouted)``.
    """
    from ..arch import connectivity
    from ..jbits.readback import verify_against_device

    jbits = router.jbits
    if jbits is None:
        return [], []
    device = router.device
    mismatches = verify_against_device(jbits.memory, device)
    if not mismatches:
        return [], []
    rerouted: list[int] = []
    dropped_nets: set[int] = set()
    for m in mismatches:
        if m.kind == "spurious":
            slot = connectivity.pip_slot(m.from_id, m.to_id)
            addr = jbits.memory.tile_bit_address(m.row, m.col, slot)
            jbits.memory.set_bit(addr, False)
        elif m.net is not None:
            dropped_nets.add(m.net)
    for src in sorted(dropped_nets):
        sinks = sorted(router.netdb.net_sinks.get(src, ()))
        ep = router.netdb.net_source_ep.get(src)
        unroute_forward(device, src)
        router.netdb.drop_net(src)
        if sinks:
            if ep is None:
                ep = Pin(*device.arch.primary_name(src))
            sink_eps = [
                Pin(*device.arch.primary_name(c)) for c in sinks
            ]
            router._route_net(ep, sink_eps)
        rerouted.append(src)
    return mismatches, rerouted
