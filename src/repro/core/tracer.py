"""Net tracing (the paper's debugging features, Section 3.5).

``trace(source)`` "traces a source to all of its sinks.  The entire net
is returned for the trace.  Debugging tools, such as BoardScope, can use
this to view each sink."  ``reverse_trace(sink)`` traces "a sink ... back
to its source.  Only the net that leads to the sink is returned."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..device.fabric import Device
from ..device.state import PipRecord

__all__ = ["NetTrace", "trace_net", "reverse_trace_net"]


@dataclass(slots=True)
class NetTrace:
    """A traced net: every wire and PIP reachable from the source."""

    source: int                                   #: source wire canonical id
    wires: list[int] = field(default_factory=list)  #: all wires, preorder
    pips: list[PipRecord] = field(default_factory=list)
    sinks: list[int] = field(default_factory=list)  #: logic-input wires reached

    def describe(self, device: Device) -> str:
        """Human-readable rendering (what a debug tool would display)."""
        arch = device.arch
        lines = []
        r, c, n = arch.primary_name(self.source)
        lines.append(f"net from {wires.wire_name(n)}@({r},{c}):")
        for rec in self.pips:
            lines.append(
                f"  ({rec.row},{rec.col}) {wires.wire_name(rec.from_name)}"
                f" -> {wires.wire_name(rec.to_name)}"
            )
        for s in self.sinks:
            r, c, n = arch.primary_name(s)
            lines.append(f"  sink {wires.wire_name(n)}@({r},{c})")
        return "\n".join(lines)


def trace_net(device: Device, source_canon: int) -> NetTrace:
    """Trace a source wire to all of its sinks (forward trace)."""
    arch = device.arch
    out = NetTrace(source=source_canon)
    for w in device.state.subtree(source_canon):
        out.wires.append(w)
        if w != source_canon:
            out.pips.append(device.state.pip_of[w])
        cls = arch.wire_class_of(w)
        if cls in (WireClass.SLICE_IN, WireClass.CTL_IN):
            out.sinks.append(w)
    return out


def reverse_trace_net(device: Device, sink_canon: int) -> list[PipRecord]:
    """Trace a sink back to its source: only that branch, source first."""
    state = device.state
    path: list[PipRecord] = []
    w = sink_canon
    guard = 0
    while True:
        rec = state.pip_of.get(w)
        if rec is None:
            break
        path.append(rec)
        w = rec.canon_from
        guard += 1
        if guard > state.n_pips_on:  # pragma: no cover - loop protection
            raise errors.JRouteError("driver chain does not terminate")
    path.reverse()
    return path
