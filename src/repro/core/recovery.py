"""Rip-up/retry recovery for failed routing requests.

The paper stops at "a user action is required" when a route fails; this
module supplies that action automatically, in the congestion-driven
rip-up/retry tradition (cf. Zang et al., *An Open-Source Fast Parallel
Routing Approach for Commercial FPGAs*): when a request is unroutable,
rip up the cheapest net blocking its bounding box, route the original
request through the freed resources, then re-route the victim — all
inside a :class:`~repro.core.txn.RouteTransaction` so a failed recovery
round leaves the device untouched.

:class:`RetryPolicy` bounds the effort (attempts and search-budget
growth); :class:`RoutingReport` records what happened (attempts, ripped
nets, faults avoided) for observability.  :class:`CircuitBreaker` layers
degradation on top: a net whose requests repeatedly trip their
cooperative deadline (:mod:`repro.core.deadline`) is taken out of
rotation so it cannot consume the service's whole budget on every retry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Hashable

from ..device.fabric import Device

__all__ = ["RetryPolicy", "RoutingReport", "CircuitBreaker", "select_victim"]

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a cheap, stateless 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return (x ^ (x >> 31)) & _M64


@dataclass(slots=True, frozen=True)
class RetryPolicy:
    """Bounds for the rip-up/retry loop.

    Attributes
    ----------
    max_attempts:
        Total route attempts, including the first (1 = no recovery).
    expansion_factor:
        Multiplier applied to the maze node budget on every retry, so
        later attempts search harder as well as on a freer fabric.
    bbox_margin:
        CLBs added around the failed request's bounding box when looking
        for blocking victim nets.
    backoff_base:
        Seconds of the *first* retry's backoff window.  The default 0.0
        keeps the historical behaviour: retries run back to back with no
        pause.  A service retrying many clients' requests should set
        this so simultaneous failures do not re-arrive in lockstep.
    backoff_cap:
        Upper bound on any single backoff window, whatever the attempt
        number (the exponential growth saturates here).
    jitter_seed:
        Seed of the deterministic jitter stream.  Two policies with the
        same seed produce the same delays for the same ``(token,
        attempt)`` — reproducible tests — while different tokens (e.g.
        per-job sequence numbers) decorrelate concurrent retriers.
    """

    max_attempts: int = 3
    expansion_factor: float = 2.0
    bbox_margin: int = 2
    backoff_base: float = 0.0
    backoff_cap: float = 2.0
    jitter_seed: int = 0

    def budget_for(self, attempt: int, base_nodes: int) -> int:
        """Maze expansion budget for 1-based ``attempt``."""
        return int(base_nodes * self.expansion_factor ** (attempt - 1))

    def backoff_for(self, attempt: int, *, token: int = 0) -> float:
        """Seconds to wait before 1-based ``attempt`` (0 for the first).

        Full jitter over an exponentially growing window: the delay is
        drawn uniformly from ``[0, min(backoff_cap, backoff_base *
        2**(attempt - 2)))`` by a splitmix64 hash of ``(jitter_seed,
        token, attempt)``.  Stateless and deterministic, so simultaneous
        retriers with distinct tokens spread out instead of thundering
        back in phase — and a test can pin the exact schedule.
        """
        if attempt <= 1 or self.backoff_base <= 0.0:
            return 0.0
        window = min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 2))
        h = _mix64(_mix64(self.jitter_seed & _M64) ^ (token & _M64))
        h = _mix64(h ^ attempt)
        return window * (h / float(1 << 64))


@dataclass(slots=True)
class RoutingReport:
    """Structured account of one recovered (or failed) route request.

    Surfaced as :attr:`repro.core.router.JRouter.last_report` after every
    level-4/5/6 call when a retry policy is active.
    """

    #: route attempts made, including the successful one
    attempts: int = 0
    #: source canonical ids of nets ripped up and re-routed
    ripped_nets: list[int] = field(default_factory=list)
    #: faulty edges the searches masked out across all attempts
    faults_avoided: int = 0
    #: PIPs on the device added by the final successful attempt
    pips_added: int = 0
    #: whether the original request was ultimately satisfied
    success: bool = False
    #: stringified error of each failed attempt, in order
    failures: list[str] = field(default_factory=list)
    #: unified kernel instrumentation of the request's searches
    #: (:class:`repro.core.kernel.SearchStats`; None when no search ran)
    search_stats: object | None = None
    #: the request was abandoned because its deadline expired; the report
    #: is then *partial*: it describes the work done up to the trip
    timed_out: bool = False
    #: the request was refused without searching because its net's
    #: circuit breaker is open (too many deadline trips)
    breaker_open: bool = False

    def summary(self) -> str:
        """One-line operator-facing rendering."""
        if self.breaker_open:
            state = "REFUSED (circuit breaker open)"
        elif self.timed_out:
            state = "TIMED OUT"
        else:
            state = "ok" if self.success else "FAILED"
        line = (
            f"{state}: {self.attempts} attempt(s), "
            f"{len(self.ripped_nets)} net(s) ripped, "
            f"{self.faults_avoided} fault(s) avoided, "
            f"{self.pips_added} PIPs added"
        )
        if self.search_stats is not None:
            line += f" [{self.search_stats.summary()}]"
        return line


@dataclass(slots=True)
class _BreakerEntry:
    """Per-key breaker bookkeeping (guarded by the breaker's lock)."""

    trips: int = 0
    #: monotonic instant the breaker opened (None while closed, or in
    #: latched mode where the open state has no clock)
    opened_at: float | None = None
    #: current cooldown window in seconds (escalates on probe failure)
    cooldown: float = 0.0
    #: a half-open probe has been admitted and has not yet resolved
    probing: bool = False


class CircuitBreaker:
    """Per-key trip counter that stops re-attempting hopeless requests.

    A key — a net's canonical source id, or a service tenant name —
    "trips" when a routing request for it is abandoned on a deadline.
    After ``max_trips`` consecutive trips the breaker *opens* for that
    key: further requests are refused immediately (a
    :class:`RoutingReport` with ``breaker_open=True``) without spending
    any search budget.  A successful route closes the breaker again, as
    does an explicit :meth:`reset` (e.g. after the operator frees
    congested resources).

    Two operating modes:

    * **latched** (``cooldown_s=None``, the default): an open breaker
      stays open until a success or a reset — the original behaviour.
    * **half-open probing** (``cooldown_s`` set): an open breaker
      refuses requests for the cooldown window, then goes *half-open*
      and admits exactly one probe (:meth:`is_open` returns False once;
      concurrent callers keep seeing True until the probe resolves).  A
      probe success closes the breaker; a probe failure
      (:meth:`record_trip`) re-opens it with the cooldown multiplied by
      ``escalation``, capped at ``max_cooldown_s``.

    All methods are thread-safe: a service's admission path and its
    result collector may hit the same key concurrently.
    """

    __slots__ = (
        "max_trips", "cooldown_s", "escalation", "max_cooldown_s",
        "_clock", "_lock", "_entries",
    )

    def __init__(
        self,
        max_trips: int = 3,
        *,
        cooldown_s: float | None = None,
        escalation: float = 2.0,
        max_cooldown_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_trips < 1:
            raise ValueError("max_trips must be >= 1")
        if cooldown_s is not None and cooldown_s <= 0:
            raise ValueError("cooldown_s must be positive (or None)")
        if escalation < 1.0:
            raise ValueError("escalation must be >= 1.0")
        self.max_trips = max_trips
        self.cooldown_s = cooldown_s
        self.escalation = escalation
        self.max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._lock = Lock()
        self._entries: dict[Hashable, _BreakerEntry] = {}

    def record_trip(self, net: Hashable) -> None:
        """Count one deadline trip against ``net``."""
        with self._lock:
            e = self._entries.setdefault(net, _BreakerEntry())
            e.trips += 1
            if self.cooldown_s is None:
                return
            if e.probing:
                # the half-open probe failed: re-open, escalated
                e.probing = False
                e.cooldown = min(
                    e.cooldown * self.escalation, self.max_cooldown_s
                )
                e.opened_at = self._clock()
            elif e.trips >= self.max_trips and e.opened_at is None:
                e.cooldown = self.cooldown_s
                e.opened_at = self._clock()

    def record_success(self, net: Hashable) -> None:
        """A successful route closes the net's breaker."""
        with self._lock:
            self._entries.pop(net, None)

    def probe_abort(self, net: Hashable) -> None:
        """The admitted half-open probe never ran (or proved nothing).

        :meth:`is_open` hands out exactly one probe and then answers
        True until it resolves — so a probe that is shed at admission,
        refused by a quota, or fails for a reason unrelated to the trips
        that opened the breaker must be *returned*, or the key is locked
        out forever.  Re-opens for the current (un-escalated) cooldown;
        a no-op unless a probe is actually outstanding.
        """
        with self._lock:
            e = self._entries.get(net)
            if e is None or not e.probing:
                return
            e.probing = False
            e.opened_at = self._clock()

    def is_open(self, net: Hashable) -> bool:
        """Should requests for ``net`` be refused without searching?

        In half-open-probing mode this call *admits* the probe: the
        first caller after the cooldown elapses sees False (and is
        expected to follow up with :meth:`record_success` or
        :meth:`record_trip`); everyone else keeps seeing True.
        """
        with self._lock:
            e = self._entries.get(net)
            if e is None or e.trips < self.max_trips:
                return False
            if self.cooldown_s is None or e.opened_at is None:
                return True  # latched open
            if e.probing:
                return True  # one probe is already out
            if self._clock() - e.opened_at >= e.cooldown:
                e.probing = True  # half-open: admit exactly one probe
                return False
            return True

    def state(self, net: Hashable) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (observability)."""
        with self._lock:
            e = self._entries.get(net)
            if e is None or e.trips < self.max_trips:
                return "closed"
            if (
                self.cooldown_s is not None
                and e.opened_at is not None
                and (
                    e.probing
                    or self._clock() - e.opened_at >= e.cooldown
                )
            ):
                return "half_open"
            return "open"

    def retry_after(self, net: Hashable) -> float:
        """Seconds until the key's breaker will admit a probe (0 when
        closed, half-open, or latched without a cooldown clock)."""
        with self._lock:
            e = self._entries.get(net)
            if (
                e is None
                or e.trips < self.max_trips
                or self.cooldown_s is None
                or e.opened_at is None
                or e.probing
            ):
                return 0.0
            return max(0.0, e.opened_at + e.cooldown - self._clock())

    def trips(self, net: Hashable) -> int:
        """Consecutive deadline trips recorded against ``net``."""
        with self._lock:
            e = self._entries.get(net)
            return 0 if e is None else e.trips

    def open_nets(self) -> list:
        """Keys whose breakers are currently open (or half-open)."""
        with self._lock:
            return sorted(
                n for n, e in self._entries.items()
                if e.trips >= self.max_trips
            )

    def reset(self, net: Hashable | None = None) -> None:
        """Forget trips for ``net``, or for every key when None."""
        with self._lock:
            if net is None:
                self._entries.clear()
            else:
                self._entries.pop(net, None)


def select_victim(
    device: Device,
    nets: dict[int, set[int]],
    tiles: list[tuple[int, int]],
    *,
    margin: int = 2,
    exclude: frozenset[int] = frozenset(),
) -> int | None:
    """Pick the net to rip up for a request spanning ``tiles``.

    Scans the recorded ``nets`` (source canon -> sink canons) for nets
    whose routed wires intersect the request's bounding box (grown by
    ``margin``) and returns the source of the lowest-fanout one, with
    the smallest routed tree as tie-break — the cheapest net to evict
    and re-route.  Returns None when no recorded net blocks the box.
    """
    if not tiles:
        return None
    rmin = min(r for r, _ in tiles) - margin
    rmax = max(r for r, _ in tiles) + margin
    cmin = min(c for _, c in tiles) - margin
    cmax = max(c for _, c in tiles) + margin
    arch = device.arch
    best: tuple[int, int, int] | None = None
    for source, sinks in nets.items():
        if source in exclude:
            continue
        tree = list(device.state.subtree(source))
        if len(tree) <= 1:
            continue  # nothing routed under this source
        blocking = False
        for w in tree:
            r, c, _ = arch.primary_name(w)
            if rmin <= r <= rmax and cmin <= c <= cmax:
                blocking = True
                break
        if not blocking:
            continue
        key = (len(sinks), len(tree), source)
        if best is None or key < best:
            best = key
    return best[2] if best is not None else None
