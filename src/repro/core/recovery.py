"""Rip-up/retry recovery for failed routing requests.

The paper stops at "a user action is required" when a route fails; this
module supplies that action automatically, in the congestion-driven
rip-up/retry tradition (cf. Zang et al., *An Open-Source Fast Parallel
Routing Approach for Commercial FPGAs*): when a request is unroutable,
rip up the cheapest net blocking its bounding box, route the original
request through the freed resources, then re-route the victim — all
inside a :class:`~repro.core.txn.RouteTransaction` so a failed recovery
round leaves the device untouched.

:class:`RetryPolicy` bounds the effort (attempts and search-budget
growth); :class:`RoutingReport` records what happened (attempts, ripped
nets, faults avoided) for observability.  :class:`CircuitBreaker` layers
degradation on top: a net whose requests repeatedly trip their
cooperative deadline (:mod:`repro.core.deadline`) is taken out of
rotation so it cannot consume the service's whole budget on every retry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..device.fabric import Device

__all__ = ["RetryPolicy", "RoutingReport", "CircuitBreaker", "select_victim"]


@dataclass(slots=True, frozen=True)
class RetryPolicy:
    """Bounds for the rip-up/retry loop.

    Attributes
    ----------
    max_attempts:
        Total route attempts, including the first (1 = no recovery).
    expansion_factor:
        Multiplier applied to the maze node budget on every retry, so
        later attempts search harder as well as on a freer fabric.
    bbox_margin:
        CLBs added around the failed request's bounding box when looking
        for blocking victim nets.
    """

    max_attempts: int = 3
    expansion_factor: float = 2.0
    bbox_margin: int = 2

    def budget_for(self, attempt: int, base_nodes: int) -> int:
        """Maze expansion budget for 1-based ``attempt``."""
        return int(base_nodes * self.expansion_factor ** (attempt - 1))


@dataclass(slots=True)
class RoutingReport:
    """Structured account of one recovered (or failed) route request.

    Surfaced as :attr:`repro.core.router.JRouter.last_report` after every
    level-4/5/6 call when a retry policy is active.
    """

    #: route attempts made, including the successful one
    attempts: int = 0
    #: source canonical ids of nets ripped up and re-routed
    ripped_nets: list[int] = field(default_factory=list)
    #: faulty edges the searches masked out across all attempts
    faults_avoided: int = 0
    #: PIPs on the device added by the final successful attempt
    pips_added: int = 0
    #: whether the original request was ultimately satisfied
    success: bool = False
    #: stringified error of each failed attempt, in order
    failures: list[str] = field(default_factory=list)
    #: unified kernel instrumentation of the request's searches
    #: (:class:`repro.core.kernel.SearchStats`; None when no search ran)
    search_stats: object | None = None
    #: the request was abandoned because its deadline expired; the report
    #: is then *partial*: it describes the work done up to the trip
    timed_out: bool = False
    #: the request was refused without searching because its net's
    #: circuit breaker is open (too many deadline trips)
    breaker_open: bool = False

    def summary(self) -> str:
        """One-line operator-facing rendering."""
        if self.breaker_open:
            state = "REFUSED (circuit breaker open)"
        elif self.timed_out:
            state = "TIMED OUT"
        else:
            state = "ok" if self.success else "FAILED"
        line = (
            f"{state}: {self.attempts} attempt(s), "
            f"{len(self.ripped_nets)} net(s) ripped, "
            f"{self.faults_avoided} fault(s) avoided, "
            f"{self.pips_added} PIPs added"
        )
        if self.search_stats is not None:
            line += f" [{self.search_stats.summary()}]"
        return line


class CircuitBreaker:
    """Per-net trip counter that stops re-attempting hopeless requests.

    A net "trips" when a routing request for it is abandoned on a
    deadline.  After ``max_trips`` consecutive trips the breaker *opens*
    for that net: further requests are refused immediately (a
    :class:`RoutingReport` with ``breaker_open=True``) without spending
    any search budget.  A successful route closes the breaker again, as
    does an explicit :meth:`reset` (e.g. after the operator frees
    congested resources).
    """

    __slots__ = ("max_trips", "_trips")

    def __init__(self, max_trips: int = 3) -> None:
        if max_trips < 1:
            raise ValueError("max_trips must be >= 1")
        self.max_trips = max_trips
        self._trips: dict[int, int] = {}

    def record_trip(self, net: int) -> None:
        """Count one deadline trip against ``net``."""
        self._trips[net] = self._trips.get(net, 0) + 1

    def record_success(self, net: int) -> None:
        """A successful route closes the net's breaker."""
        self._trips.pop(net, None)

    def is_open(self, net: int) -> bool:
        """Should requests for ``net`` be refused without searching?"""
        return self._trips.get(net, 0) >= self.max_trips

    def trips(self, net: int) -> int:
        """Consecutive deadline trips recorded against ``net``."""
        return self._trips.get(net, 0)

    def open_nets(self) -> list[int]:
        """Canonical source ids whose breakers are currently open."""
        return sorted(n for n, t in self._trips.items() if t >= self.max_trips)

    def reset(self, net: int | None = None) -> None:
        """Forget trips for ``net``, or for every net when None."""
        if net is None:
            self._trips.clear()
        else:
            self._trips.pop(net, None)


def select_victim(
    device: Device,
    nets: dict[int, set[int]],
    tiles: list[tuple[int, int]],
    *,
    margin: int = 2,
    exclude: frozenset[int] = frozenset(),
) -> int | None:
    """Pick the net to rip up for a request spanning ``tiles``.

    Scans the recorded ``nets`` (source canon -> sink canons) for nets
    whose routed wires intersect the request's bounding box (grown by
    ``margin``) and returns the source of the lowest-fanout one, with
    the smallest routed tree as tie-break — the cheapest net to evict
    and re-route.  Returns None when no recorded net blocks the box.
    """
    if not tiles:
        return None
    rmin = min(r for r, _ in tiles) - margin
    rmax = max(r for r, _ in tiles) + margin
    cmin = min(c for _, c in tiles) - margin
    cmax = max(c for _, c in tiles) + margin
    arch = device.arch
    best: tuple[int, int, int] | None = None
    for source, sinks in nets.items():
        if source in exclude:
            continue
        tree = list(device.state.subtree(source))
        if len(tree) <= 1:
            continue  # nothing routed under this source
        blocking = False
        for w in tree:
            r, c, _ = arch.primary_name(w)
            if rmin <= r <= rmax and cmin <= c <= cmax:
                blocking = True
                break
        if not blocking:
            continue
        key = (len(sinks), len(tree), source)
        if best is None or key < best:
            best = key
    return best[2] if best is not None else None
