"""EndPoints: physical Pins and logical Ports.

Paper, Section 3.1: "An EndPoint is either a Pin, defined by a row,
column, and wire, or a Port".  Section 3.2: "Ports are virtual pins that
provide input or output points to the core. ... To the user there is no
distinction between a physical pin ... and a logical port as they are
both derived from the EndPoint class."

A Port resolves to physical pins, possibly through nested ports of
internal cores ("it can also specify connections from ports of internal
cores to its own ports"); the router performs that translation whenever a
Port appears in a routing call.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from .. import errors
from ..arch import wires

if TYPE_CHECKING:  # pragma: no cover
    from ..cores.core import Core

__all__ = ["EndPoint", "Pin", "Port", "PortDirection", "PortGroup"]


class EndPoint:
    """Common base of :class:`Pin` and :class:`Port`."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Pin(EndPoint):
    """A physical pin: a wire at a specific row and column."""

    row: int
    col: int
    wire: int

    def __str__(self) -> str:
        return f"{wires.wire_name(self.wire)}@({self.row},{self.col})"

    @property
    def key(self) -> tuple[str, int, int, int]:
        """Stable identity used by the port-connection memory."""
        return ("pin", self.row, self.col, self.wire)


class PortDirection(enum.Enum):
    """Signal direction of a port, from the owning core's point of view."""

    IN = "in"    #: external signal enters the core (resolves to sink pins)
    OUT = "out"  #: the core drives an external signal (resolves to one source pin)


class Port(EndPoint):
    """A virtual pin of a core.

    A port is *bound* to what realises it inside the core: one or more
    physical pins, or a port of an internal core.  ``resolve_pins``
    flattens those bindings to physical pins for the router.
    """

    __slots__ = ("name", "direction", "group", "index", "owner", "_bindings")

    def __init__(
        self,
        name: str,
        direction: PortDirection,
        *,
        group: str | None = None,
        index: int = 0,
        owner: "Core | None" = None,
    ) -> None:
        self.name = name
        self.direction = direction
        self.group = group
        self.index = index
        self.owner = owner
        self._bindings: list[EndPoint] = []

    # -- binding ---------------------------------------------------------------

    def bind(self, target: EndPoint) -> None:
        """Bind this port to an internal pin or an internal core's port."""
        if isinstance(target, Port):
            if target.direction is not self.direction:
                raise errors.PortError(
                    f"cannot bind {self.direction.value}-port {self.name} to "
                    f"{target.direction.value}-port {target.name}"
                )
        elif not isinstance(target, Pin):
            raise errors.PortError(f"cannot bind port to {target!r}")
        if self.direction is PortDirection.OUT and self._bindings:
            raise errors.PortError(
                f"output port {self.name} already has a source binding"
            )
        self._bindings.append(target)

    @property
    def bindings(self) -> tuple[EndPoint, ...]:
        return tuple(self._bindings)

    def resolve_pins(self) -> list[Pin]:
        """Flatten to physical pins (the router's translation step)."""
        out: list[Pin] = []
        seen: set[int] = {id(self)}
        stack: list[EndPoint] = list(self._bindings)
        while stack:
            ep = stack.pop()
            if isinstance(ep, Pin):
                out.append(ep)
            else:
                assert isinstance(ep, Port)
                if id(ep) in seen:
                    raise errors.PortError(
                        f"port binding cycle through {ep.name}"
                    )
                seen.add(id(ep))
                stack.extend(ep._bindings)
        if not out:
            raise errors.PortError(
                f"port {self.name} has no pin bindings; call the router for "
                f"each port when building the core (Section 3.2 guidelines)"
            )
        if self.direction is PortDirection.OUT and len(out) != 1:
            raise errors.PortError(
                f"output port {self.name} must resolve to exactly one source "
                f"pin, got {len(out)}"
            )
        return out

    @property
    def key(self) -> tuple:
        """Stable identity for the port-connection memory: survives core
        replacement because it names the *position* in the design, not the
        object ("if the ports are reused, then they will be automatically
        connected to the new core")."""
        owner_name = self.owner.instance_name if self.owner is not None else None
        return ("port", owner_name, self.group, self.index, self.name)

    def __str__(self) -> str:
        owner = self.owner.instance_name if self.owner is not None else "?"
        return f"Port({owner}.{self.name})"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"Port({self.name!r}, {self.direction.value}, group={self.group!r}, "
            f"index={self.index})"
        )


class PortGroup:
    """An ordered group of ports (paper: "each port needs to be in a
    group ... a getports() method must be defined for each group")."""

    __slots__ = ("name", "_ports")

    def __init__(self, name: str, ports: Iterable[Port] = ()) -> None:
        self.name = name
        self._ports: list[Port] = list(ports)
        for i, p in enumerate(self._ports):
            p.group = name
            p.index = i

    def add(self, port: Port) -> None:
        port.group = self.name
        port.index = len(self._ports)
        self._ports.append(port)

    @property
    def ports(self) -> tuple[Port, ...]:
        return tuple(self._ports)

    def __len__(self) -> int:
        return len(self._ports)

    def __getitem__(self, i: int) -> Port:
        return self._ports[i]

    def __iter__(self):
        return iter(self._ports)
