"""The JRoute API: the paper's primary contribution.

Exposes the endpoint model (:class:`Pin`, :class:`Port`), the explicit
:class:`Path` and :class:`Template` route descriptions, and the
:class:`JRouter` facade with the six route levels, the unrouter, tracing
and the port-connection memory.
"""

from .deadline import Deadline
from .endpoints import EndPoint, Pin, Port, PortDirection, PortGroup
from .kernel import GLOBAL_STATS, SearchState, SearchStats, record_global
from .netdb import NetDB, PortMemory
from .path import Path
from .recovery import CircuitBreaker, RetryPolicy, RoutingReport, select_victim
from .router import JRouter, P2PRouteOutcome
from .scrub import Scrubber, ScrubRecord, ScrubReport, inject_seu
from .template import Template
from .tracer import NetTrace, reverse_trace_net, trace_net
from .txn import PipJournal, RouteTransaction
from .unroute import unroute_forward, unroute_reverse
from .wal import (
    DurableSession,
    RecoveryReport,
    WriteAheadLog,
    recover,
    write_checkpoint,
)

__all__ = [
    "CircuitBreaker",
    "Deadline",
    "DurableSession",
    "EndPoint",
    "GLOBAL_STATS",
    "record_global",
    "SearchState",
    "SearchStats",
    "Pin",
    "PipJournal",
    "Port",
    "PortDirection",
    "PortGroup",
    "NetDB",
    "PortMemory",
    "Path",
    "JRouter",
    "P2PRouteOutcome",
    "RecoveryReport",
    "RetryPolicy",
    "RouteTransaction",
    "RoutingReport",
    "Scrubber",
    "ScrubRecord",
    "ScrubReport",
    "select_victim",
    "Template",
    "NetTrace",
    "WriteAheadLog",
    "inject_seu",
    "recover",
    "trace_net",
    "reverse_trace_net",
    "unroute_forward",
    "unroute_reverse",
    "write_checkpoint",
]
