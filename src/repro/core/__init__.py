"""The JRoute API: the paper's primary contribution.

Exposes the endpoint model (:class:`Pin`, :class:`Port`), the explicit
:class:`Path` and :class:`Template` route descriptions, and the
:class:`JRouter` facade with the six route levels, the unrouter, tracing
and the port-connection memory.
"""

from .endpoints import EndPoint, Pin, Port, PortDirection, PortGroup
from .kernel import GLOBAL_STATS, SearchState, SearchStats
from .netdb import NetDB, PortMemory
from .path import Path
from .recovery import RetryPolicy, RoutingReport, select_victim
from .router import JRouter
from .template import Template
from .tracer import NetTrace, reverse_trace_net, trace_net
from .txn import RouteTransaction
from .unroute import unroute_forward, unroute_reverse

__all__ = [
    "EndPoint",
    "GLOBAL_STATS",
    "SearchState",
    "SearchStats",
    "Pin",
    "Port",
    "PortDirection",
    "PortGroup",
    "NetDB",
    "PortMemory",
    "Path",
    "JRouter",
    "RetryPolicy",
    "RouteTransaction",
    "RoutingReport",
    "select_victim",
    "Template",
    "NetTrace",
    "trace_net",
    "reverse_trace_net",
    "unroute_forward",
    "unroute_reverse",
]
