"""The unrouter (paper Section 3.3).

"Run-time reconfiguration requires an unrouter. ... Unrouting the nets
free up resources."

Forward (``unroute(EndPoint source)``): "a source pin is specified.  The
unrouter then follows each of the wires the pin drives and turns it off.
This continues until all of the sinks are found."

Reverse (``reverseunroute(EndPoint sink)``): "the entire net, starting
from the source, is not removed.  Only the branch that leads to the
specified pin is turned off, and freed up for reuse.  The unrouter starts
at the sink pin and works backwards, turning off wires along the way,
until it comes to a point where a wire is driving multiple wires."
"""

from __future__ import annotations

from ..device.fabric import Device

__all__ = ["unroute_forward", "unroute_reverse"]


def unroute_forward(device: Device, source_canon: int) -> int:
    """Turn off the whole net driven by ``source_canon``.

    Returns the number of PIPs removed (0 when the wire drives nothing).
    """
    removed = 0
    # Collect first: turning PIPs off while iterating would mutate the
    # children lists the walk depends on.
    targets = [w for w in device.state.subtree(source_canon) if w != source_canon]
    for w in targets:
        device.turn_off_driver(w)
        removed += 1
    return removed


def unroute_reverse(device: Device, sink_canon: int) -> int:
    """Turn off only the branch leading to ``sink_canon``.

    Walks from the sink toward the source, removing PIPs, and stops at
    the first wire that still drives other wires (a fanout point) or at
    the net's source.  Returns the number of PIPs removed.
    """
    state = device.state
    removed = 0
    w = sink_canon
    while True:
        rec = state.pip_of.get(w)
        if rec is None:
            break  # reached the source (or the wire was never driven)
        parent = rec.canon_from
        device.turn_off_driver(w)
        removed += 1
        if state.children_of(parent):
            break  # the parent still feeds other branches
        w = parent
    return removed
