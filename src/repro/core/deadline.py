"""Cooperative deadlines for run-time routing searches.

The paper's promise is that routing is fast enough to happen *while the
device runs*; a service built on the API therefore cannot afford a
search that negotiates forever (the failure mode of unbounded
negotiation in parallel routers, cf. Zang et al., *An Open-Source Fast
Parallel Routing Approach for Commercial FPGAs*).  :class:`Deadline` is
a cheap cancellation token threaded through the shared search kernel
(:func:`repro.core.kernel.dijkstra`) and every level-4/5/6 router: a
search that runs past its budget stops cooperatively and surfaces
:class:`~repro.errors.DeadlineExceededError`, which the
:class:`~repro.core.router.JRouter` converts into a *partial*
:class:`~repro.core.recovery.RoutingReport` — the caller gets structure,
not a hang and not an exception.

The kernel checks the token only every :data:`CHECK_MASK` + 1 node
expansions, and the deadline-free fast loops are untouched, so the
existing perf gate (``benchmarks/bench_e17_kernel.py --check``) bounds
the overhead.

Nets that *repeatedly* trip their deadline are taken out of rotation by
the per-net :class:`~repro.core.recovery.CircuitBreaker` so a pathological
request cannot consume the whole service's budget on every retry.
"""

from __future__ import annotations

import time
from typing import Callable

from .. import errors

__all__ = ["Deadline", "CHECK_MASK"]

#: The kernel consults the deadline when ``expanded & CHECK_MASK == 0``:
#: one clock read per 1024 expansions (a few microseconds of search).
CHECK_MASK = 1023


class Deadline:
    """A monotonic-clock deadline plus an explicit cancellation flag.

    Parameters
    ----------
    budget_ms:
        Elapsed-time budget in milliseconds from construction; ``None``
        means unbounded (the token then only trips via :meth:`cancel`).
    clock:
        Seconds-returning monotonic clock, injectable for deterministic
        tests.  Defaults to :func:`time.monotonic` — never a wall clock
        like ``time.time()``, whose NTP steps would fire (or extend)
        deadlines spuriously in a long-lived daemon, and never
        :func:`time.perf_counter`, whose epoch is unspecified and may
        exclude time the machine spends suspended.
    """

    __slots__ = ("budget_ms", "_clock", "_expires_at", "_cancelled")

    def __init__(
        self,
        budget_ms: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget_ms = budget_ms
        self._clock = clock
        self._cancelled = False
        self._expires_at = (
            None if budget_ms is None else clock() + budget_ms / 1e3
        )

    @classmethod
    def after_ms(cls, budget_ms: float | None) -> "Deadline | None":
        """Token for a budget, or ``None`` when no budget is configured.

        The ``None`` passthrough lets callers write
        ``Deadline.after_ms(self.deadline_ms)`` and keep the deadline-free
        hot path entirely token-free.
        """
        return None if budget_ms is None else cls(budget_ms)

    def cancel(self) -> None:
        """Trip the token immediately (user-initiated cancellation)."""
        self._cancelled = True

    def expired(self) -> bool:
        """Has the budget run out (or the token been cancelled)?"""
        if self._cancelled:
            return True
        return self._expires_at is not None and self._clock() >= self._expires_at

    def remaining_ms(self) -> float:
        """Milliseconds left; ``inf`` when unbounded, 0 when tripped."""
        if self._cancelled:
            return 0.0
        if self._expires_at is None:
            return float("inf")
        return max(0.0, (self._expires_at - self._clock()) * 1e3)

    def check(self, what: str = "search") -> None:
        """Raise :class:`~repro.errors.DeadlineExceededError` if tripped."""
        if self.expired():
            reason = "cancelled" if self._cancelled else (
                f"deadline of {self.budget_ms:g} ms expired"
            )
            raise errors.DeadlineExceededError(f"{what} abandoned: {reason}")

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "cancelled" if self._cancelled else (
            f"{self.remaining_ms():.2f} ms left"
            if self._expires_at is not None else "unbounded"
        )
        return f"Deadline({state})"
