"""The JRoute API: run-time routing at various levels of control.

:class:`JRouter` reproduces the paper's router object.  One ``route``
method dispatches across the six call forms of Section 3.1:

====  ========================================================  =============
lvl   call                                                      paper section
====  ========================================================  =============
1     ``route(row, col, from_wire, to_wire)``                   single PIP
2     ``route(path)``                                           user path
3     ``route(pin, end_wire, template)``                        template
4     ``route(source_ep, sink_ep)``                             auto, 1-to-1
5     ``route(source_ep, [sink_ep, ...])``                      auto, fanout
6     ``route([source_ep, ...], [sink_ep, ...])``               bus
====  ========================================================  =============

plus the unrouter (``unroute`` / ``reverse_unroute``), the debug tracer
(``trace`` / ``reverse_trace``), the contention query ``is_on``, global
clock distribution, and the port machinery used by run-time
parameterizable cores (registration, remembered connections, automatic
reconnection after core replacement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..device.fabric import Device
from ..device.state import PipRecord
from ..jbits.jbits import JBits
from ..routers.auto import route_point_to_point, route_point_to_point_batch
from ..routers.base import PlanPip, apply_plan
from ..routers.maze import route_maze
from ..routers.pathfinder import NetSpec, PathFinderResult, route_pathfinder
from ..routers.template_router import route_template
from .deadline import Deadline
from .endpoints import EndPoint, Pin, Port, PortDirection
from .kernel import SearchStats
from .netdb import NetDB
from .path import Path
from .recovery import CircuitBreaker, RetryPolicy, RoutingReport, select_victim
from .template import Template
from .tracer import NetTrace, reverse_trace_net, trace_net
from .txn import RouteTransaction
from .unroute import unroute_forward, unroute_reverse

__all__ = ["JRouter", "P2PRouteOutcome"]


@dataclass(slots=True)
class P2PRouteOutcome:
    """Per-pair outcome of one :meth:`JRouter.route_p2p_batch` call.

    Outcomes come back **in request order**; a failed pair never hides
    the rest of the batch.  ``rerouted`` marks pairs whose batch-planned
    path conflicted with an earlier pair's applied plan and were re-run
    against the updated device state.
    """

    index: int
    source: object            #: the request's source endpoint
    sink: object              #: the request's sink endpoint
    success: bool
    pips_added: int = 0
    method: str | None = None  #: "template" or "maze" (None when no search ran)
    rerouted: bool = False
    error: errors.JRouteError | None = None


class JRouter:
    """Run-time router for one simulated Virtex device.

    Parameters
    ----------
    device:
        The device to route; created from ``part`` when omitted.
    part:
        Virtex part name used when no device is given.
    attach_jbits:
        Mirror all configuration into a JBits bitstream (default True,
        preserving the paper's JRoute-on-JBits layering).  Access it as
        :attr:`jbits`.
    fanout_use_longs:
        Whether the greedy fanout router may use long lines.  Defaults to
        False, the state of the paper's initial implementation
        ("currently long lines are not supported; only hexes and singles
        are used"); set True for the paper's future-work behaviour.
    p2p_use_longs:
        Whether point-to-point maze fallback may use long lines.
    try_templates:
        Use the predefined-template fast path for point-to-point routes
        before falling back to the maze router.
    heuristic_weight:
        A* bias for maze searches (0 = plain Dijkstra; the 0.8 default
        cuts node expansions by ~10x at equal plan cost on this fabric).
    faults:
        Optional :class:`~repro.device.faults.FaultModel` attached to the
        device; fault-aware searches mask defective resources out.
    retry:
        Optional :class:`~repro.core.recovery.RetryPolicy` enabling the
        rip-up/retry loop on :class:`~repro.errors.UnroutableError` for
        the auto-routing levels (4, 5 and 6).  Each request's outcome is
        surfaced as :attr:`last_report`.
    workers:
        Default concurrency for :meth:`route_nets` bulk requests (the
        negotiated-congestion router's per-iteration net loop is
        partitioned spatially across this many workers).
    backend:
        Default execution backend for those workers: ``"thread"`` (the
        default; deterministic, GIL-bound) or ``"process"`` (OS-level
        workers attached to a shared-memory export of the compiled
        routing graph — wall-clock parallelism with identical results).
    deadline_ms:
        Optional per-request wall-clock budget for the auto-routing
        levels (4, 5 and 6) and :meth:`route_nets`.  A request past its
        budget is abandoned cooperatively: state is rolled back, the
        call returns 0 and :attr:`last_report` comes back *partial*
        (``timed_out=True``) — no exception escapes.
    breaker:
        Optional :class:`~repro.core.recovery.CircuitBreaker` refusing
        nets that repeatedly trip their deadline.  When ``deadline_ms``
        is set and no breaker is given, a default one is created.
    """

    def __init__(
        self,
        device: Device | None = None,
        *,
        part: str = "XCV50",
        attach_jbits: bool = True,
        fanout_use_longs: bool = False,
        p2p_use_longs: bool = True,
        try_templates: bool = True,
        heuristic_weight: float = 0.8,
        max_nodes: int = 200_000,
        faults=None,
        retry: RetryPolicy | None = None,
        workers: int = 1,
        backend: str = "thread",
        deadline_ms: float | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.device = device if device is not None else Device(part)
        if faults is not None:
            self.device.set_fault_model(faults)
        self.jbits: JBits | None = JBits(self.device) if attach_jbits else None
        self.netdb = NetDB()
        self.fanout_use_longs = fanout_use_longs
        self.p2p_use_longs = p2p_use_longs
        self.try_templates = try_templates
        self.heuristic_weight = heuristic_weight
        self.max_nodes = max_nodes
        self.retry = retry
        self.workers = workers
        self.backend = backend
        self.deadline_ms = deadline_ms
        if breaker is None and deadline_ms is not None:
            breaker = CircuitBreaker()
        self.breaker = breaker
        #: RoutingReport of the latest level-4/5/6 request (None before any)
        self.last_report: RoutingReport | None = None
        #: user-facing route() invocations (Section 4 comparison metric)
        self.call_count = 0
        #: counters for the template-vs-maze statistics (experiment E9)
        self.p2p_template_hits = 0
        self.p2p_maze_fallbacks = 0
        # faulty edges masked out by searches, accumulated per request
        self._faults_avoided = 0
        # kernel instrumentation accumulated per request (-> last_report)
        self._search_stats = SearchStats()

    # ------------------------------------------------------------------ dispatch

    def route(self, *args) -> int:
        """Route at any of the six levels of control; returns PIPs added."""
        self.call_count += 1
        if len(args) == 4 and all(isinstance(a, int) for a in args):
            row, col, from_wire, to_wire = args
            self.device.turn_on(row, col, from_wire, to_wire)
            return 1
        if len(args) == 1 and isinstance(args[0], Path):
            return self._route_path(args[0])
        if (
            len(args) == 3
            and isinstance(args[0], Pin)
            and isinstance(args[1], int)
            and isinstance(args[2], Template)
        ):
            return self._route_template(args[0], args[1], args[2])
        if len(args) == 2:
            a, b = args
            if isinstance(a, EndPoint) and isinstance(b, EndPoint):
                return self._route_net_request(a, [b])
            if isinstance(a, EndPoint) and _is_endpoint_seq(b):
                return self._route_net_request(a, list(b))
            if _is_endpoint_seq(a) and _is_endpoint_seq(b):
                return self._route_bus_request(list(a), list(b))
        raise TypeError(
            "route() accepts (row, col, from, to) | (Path) | "
            "(Pin, end_wire, Template) | (EndPoint, EndPoint) | "
            "(EndPoint, [EndPoint]) | ([EndPoint], [EndPoint])"
        )

    # ------------------------------------------------------------- level 2 and 3

    def _route_path(self, path: Path) -> int:
        plan = path.resolve(self.device)
        return apply_plan(self.device, plan)

    def _route_template(self, pin: Pin, end_wire: int, template: Template) -> int:
        start = self.device.resolve(pin.row, pin.col, pin.wire)
        plan = route_template(
            self.device, start, template.values, end_wire=end_wire
        )
        return apply_plan(self.device, plan)

    # ------------------------------------------------------- endpoint resolution

    def source_pin_of(self, ep: EndPoint) -> Pin:
        """Resolve an endpoint used as a route source to its physical pin."""
        if isinstance(ep, Pin):
            return ep
        if isinstance(ep, Port):
            if ep.direction is not PortDirection.OUT:
                raise errors.PortError(
                    f"{ep} is an input port and cannot source a route"
                )
            return ep.resolve_pins()[0]
        raise errors.PortError(f"not an endpoint: {ep!r}")

    def sink_pins_of(self, ep: EndPoint) -> list[Pin]:
        """Resolve an endpoint used as a route sink to its physical pins."""
        if isinstance(ep, Pin):
            return [ep]
        if isinstance(ep, Port):
            if ep.direction is not PortDirection.IN:
                raise errors.PortError(
                    f"{ep} is an output port and cannot sink a route"
                )
            return ep.resolve_pins()
        raise errors.PortError(f"not an endpoint: {ep!r}")

    def _source_canon(self, ep: EndPoint) -> int:
        pin = self.source_pin_of(ep)
        return self.device.resolve(pin.row, pin.col, pin.wire)

    def _sink_canons(self, ep: EndPoint) -> list[int]:
        return [
            self.device.resolve(p.row, p.col, p.wire) for p in self.sink_pins_of(ep)
        ]

    # ------------------------------------------- request protection and recovery

    def _request_tiles(self, eps: Sequence[EndPoint]) -> list[tuple[int, int]]:
        """CLB tiles touched by a request's endpoints (victim-search bbox)."""
        tiles: list[tuple[int, int]] = []
        for ep in eps:
            if isinstance(ep, Pin):
                tiles.append((ep.row, ep.col))
            elif isinstance(ep, Port):
                tiles.extend((p.row, p.col) for p in ep.resolve_pins())
        return tiles

    def _breaker_refusal(self, open_nets: list[int]) -> int:
        """Refuse a request whose net(s) have an open circuit breaker."""
        report = RoutingReport(breaker_open=True)
        rendered = ", ".join(str(n) for n in open_nets)
        report.failures.append(
            f"circuit breaker open for net(s) {rendered}: refused without "
            f"searching (reset the breaker or raise deadline_ms)"
        )
        self.last_report = report
        return 0

    def _deadline_tripped(
        self, source: int | None, exc: errors.DeadlineExceededError
    ) -> int:
        """Turn a deadline trip into a partial report; returns 0 PIPs.

        State has already been rolled back by the transaction machinery
        before the exception reached the request entry.
        """
        report = self.last_report
        assert report is not None
        report.timed_out = True
        report.success = False
        report.failures.append(str(exc))
        self._faults_avoided += exc.faults_avoided
        report.faults_avoided = self._faults_avoided
        if self.breaker is not None and source is not None:
            self.breaker.record_trip(source)
        return 0

    def _note_success(self, source: int | None) -> None:
        if self.breaker is not None and source is not None:
            self.breaker.record_success(source)

    def _route_net_request(
        self, source_ep: EndPoint, sink_eps: list[EndPoint]
    ) -> int:
        """Level 4/5 entry: transactional, optionally with rip-up/retry."""
        deadline = Deadline.after_ms(self.deadline_ms)
        source = self._source_canon(source_ep)
        if self.breaker is not None and self.breaker.is_open(source):
            return self._breaker_refusal([source])
        if self.retry is not None:
            tiles = self._request_tiles([source_ep, *sink_eps])

            def attempt(budget: int) -> int:
                applied, _ = self._route_net(
                    source_ep, sink_eps, max_nodes=budget, deadline=deadline
                )
                return len(applied)

            try:
                pips = self._run_with_recovery(attempt, tiles, deadline=deadline)
            except errors.DeadlineExceededError as e:
                return self._deadline_tripped(source, e)
            self._note_success(source)
            return pips
        report = RoutingReport(attempts=1)
        self.last_report = report
        self._faults_avoided = 0
        self._search_stats = SearchStats()
        report.search_stats = self._search_stats
        try:
            if len(sink_eps) > 1:
                # multi-step fanout: journal + roll back atomically
                with RouteTransaction(self.device, netdb=self.netdb):
                    applied, _ = self._route_net(
                        source_ep, sink_eps, deadline=deadline
                    )
            else:
                applied, _ = self._route_net(source_ep, sink_eps, deadline=deadline)
        except errors.DeadlineExceededError as e:
            return self._deadline_tripped(source, e)
        except errors.JRouteError as e:
            report.failures.append(str(e))
            self._faults_avoided += getattr(e, "faults_avoided", 0)
            report.faults_avoided = self._faults_avoided
            raise
        report.success = True
        report.pips_added = len(applied)
        report.faults_avoided = self._faults_avoided
        self._note_success(source)
        return len(applied)

    def _route_bus_request(
        self, source_eps: list[EndPoint], sink_eps: list[EndPoint]
    ) -> int:
        """Level 6 entry: transactional, optionally with rip-up/retry."""
        deadline = Deadline.after_ms(self.deadline_ms)
        if self.breaker is not None:
            open_nets = [
                s
                for s in (self._source_canon(ep) for ep in source_eps)
                if self.breaker.is_open(s)
            ]
            if open_nets:
                return self._breaker_refusal(open_nets)
        if self.retry is not None:
            tiles = self._request_tiles([*source_eps, *sink_eps])

            def attempt(budget: int) -> int:
                return self._route_bus(
                    source_eps, sink_eps, max_nodes=budget, deadline=deadline
                )

            try:
                return self._run_with_recovery(attempt, tiles, deadline=deadline)
            except errors.DeadlineExceededError as e:
                # bus trips are not charged to a single net's breaker
                return self._deadline_tripped(None, e)
        report = RoutingReport(attempts=1)
        self.last_report = report
        self._faults_avoided = 0
        self._search_stats = SearchStats()
        report.search_stats = self._search_stats
        try:
            with RouteTransaction(self.device, netdb=self.netdb):
                pips = self._route_bus(source_eps, sink_eps, deadline=deadline)
        except errors.DeadlineExceededError as e:
            return self._deadline_tripped(None, e)
        except errors.JRouteError as e:
            report.failures.append(str(e))
            self._faults_avoided += getattr(e, "faults_avoided", 0)
            report.faults_avoided = self._faults_avoided
            raise
        report.success = True
        report.pips_added = pips
        report.faults_avoided = self._faults_avoided
        return pips

    def _run_with_recovery(
        self, attempt, tiles, *, deadline: Deadline | None = None
    ) -> int:
        """Bounded rip-up/retry loop around one routing request.

        Every round runs inside a :class:`RouteTransaction`: ripping the
        victim, routing the request, and re-routing the victim either all
        succeed or the device rolls back to the round's starting state.
        """
        policy = self.retry
        report = RoutingReport()
        self.last_report = report
        self._faults_avoided = 0
        self._search_stats = SearchStats()
        report.search_stats = self._search_stats
        exclude: set[int] = set()
        last_exc: errors.JRouteError | None = None
        for i in range(1, policy.max_attempts + 1):
            report.attempts = i
            budget = policy.budget_for(i, self.max_nodes)
            victim_restore = None
            try:
                with RouteTransaction(self.device, netdb=self.netdb):
                    if i > 1:
                        victim = select_victim(
                            self.device,
                            self.netdb.nets(),
                            tiles,
                            margin=policy.bbox_margin,
                            exclude=frozenset(exclude),
                        )
                        if victim is not None:
                            victim_restore = self._rip_up(victim)
                            exclude.add(victim)
                    pips = attempt(budget)
                    if victim_restore is not None:
                        self._reroute_victim(
                            *victim_restore, max_nodes=budget, deadline=deadline
                        )
            except (
                errors.UnroutableError,
                errors.ContentionError,
                errors.FaultError,
            ) as e:
                report.failures.append(str(e))
                self._faults_avoided += getattr(e, "faults_avoided", 0)
                last_exc = e
                if i < policy.max_attempts:
                    # De-synchronize concurrent retriers (service clients
                    # hammering the same congested region) with seeded
                    # full-jitter backoff; token folds in the request's
                    # tile footprint so distinct requests draw distinct
                    # delays from the same policy.  Default policy has
                    # backoff_base=0.0 → no sleep, the legacy behavior.
                    tok = 0
                    for row, col in tiles:
                        tok = (tok * 1000003 + row * 4096 + col) & ((1 << 64) - 1)
                    delay = policy.backoff_for(i + 1, token=tok)
                    if delay > 0.0:
                        if deadline is not None:
                            delay = min(delay, deadline.remaining_ms() / 1e3)
                        if delay > 0.0:
                            time.sleep(delay)
                continue
            if victim_restore is not None:
                report.ripped_nets.append(victim_restore[2])
            report.success = True
            report.pips_added = pips
            report.faults_avoided = self._faults_avoided
            return pips
        report.faults_avoided = self._faults_avoided
        assert last_exc is not None
        raise last_exc

    def _rip_up(self, source_canon: int):
        """Unroute a victim net, returning what is needed to restore it."""
        src_ep = self.netdb.net_source_ep.get(source_canon)
        sink_canons = sorted(self.netdb.net_sinks.get(source_canon, ()))
        unroute_forward(self.device, source_canon)
        self.netdb.drop_net(source_canon)
        if src_ep is None:
            src_ep = Pin(*self.device.arch.primary_name(source_canon))
        return src_ep, sink_canons, source_canon

    def _reroute_victim(
        self, src_ep: EndPoint, sink_canons: list[int], source_canon: int, *,
        max_nodes: int, deadline: Deadline | None = None,
    ) -> None:
        arch = self.device.arch
        sink_eps = [Pin(*arch.primary_name(c)) for c in sink_canons]
        if sink_eps:
            self._route_net(
                src_ep, sink_eps, max_nodes=max_nodes, deadline=deadline
            )

    # --------------------------------------------------------------- levels 4, 5

    def _route_net(
        self,
        source_ep: EndPoint,
        sink_eps: Sequence[EndPoint],
        record: bool = True,
        *,
        max_nodes: int | None = None,
        deadline: Deadline | None = None,
    ) -> tuple[list[PlanPip], list[int]]:
        """Route one source endpoint to sink endpoints (fanout-aware).

        Returns ``(applied_pips, sink_canons)``.  Atomic: on failure,
        everything this call turned on is off again.
        """
        device = self.device
        state = device.state
        budget = self.max_nodes if max_nodes is None else max_nodes
        source = self._source_canon(source_ep)
        sink_canons: list[int] = []
        for ep in sink_eps:
            sink_canons.extend(self._sink_canons(ep))

        tree = set(state.subtree(source))
        todo: list[int] = []
        for canon in sink_canons:
            if canon in tree:
                continue  # already part of this net
            if state.is_driven(canon):
                r, c, n = device.arch.primary_name(canon)
                raise errors.ContentionError(
                    f"sink wire {wires.wire_name(n)} is already driven by "
                    f"another net",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                    net=state.root_of(canon),
                )
            todo.append(canon)

        applied: list[PlanPip] = []
        try:
            # sinks in increasing distance from the source (Section 3.1)
            sr, sc, _ = device.arch.primary_name(source)

            def dist(canon: int) -> tuple[int, int]:
                r, c, _ = device.arch.primary_name(canon)
                return (abs(r - sr) + abs(c - sc), canon)

            for canon in sorted(set(todo), key=dist):
                if len(tree) == 1 and not applied:
                    # fresh net, first sink: template fast path applies
                    res = route_point_to_point(
                        device,
                        source,
                        canon,
                        try_templates=self.try_templates,
                        use_longs=self.p2p_use_longs,
                        heuristic_weight=self.heuristic_weight,
                        max_nodes=budget,
                        deadline=deadline,
                    )
                    if res.method == "template":
                        self.p2p_template_hits += 1
                    else:
                        self.p2p_maze_fallbacks += 1
                    self._faults_avoided += res.faults_avoided
                    if res.stats is not None:
                        self._search_stats.merge(res.stats)
                    plan = res.plan
                else:
                    use_longs = self.fanout_use_longs if len(todo) > 1 else self.p2p_use_longs
                    maze_res = route_maze(
                        device,
                        [source],
                        {canon},
                        reuse=tree,
                        use_longs=use_longs,
                        heuristic_weight=self.heuristic_weight,
                        max_nodes=budget,
                        deadline=deadline,
                    )
                    self._faults_avoided += maze_res.faults_avoided
                    self._search_stats.merge(maze_res.stats)
                    plan = maze_res.plan
                apply_plan(device, plan)
                applied.extend(plan)
                for row, col, _fn, to_name in plan:
                    w = device.arch.canonicalize(row, col, to_name)
                    assert w is not None
                    tree.add(w)
        except errors.JRouteError as exc:
            failed_stats = getattr(exc, "search_stats", None)
            if failed_stats is not None:
                self._search_stats.merge(failed_stats)
            for row, col, from_name, to_name in reversed(applied):
                device.turn_off(row, col, from_name, to_name)
            raise

        if record:
            self.netdb.record_net(source, source_ep, sink_canons)
            for ep in sink_eps:
                self.netdb.remember_connection(source_ep, ep)
        return applied, sink_canons

    # -------------------------------------------------------------------- level 6

    def _route_bus(
        self,
        source_eps: Sequence[EndPoint],
        sink_eps: Sequence[EndPoint],
        *,
        max_nodes: int | None = None,
        deadline: Deadline | None = None,
    ) -> int:
        """Bus routing: sources[i] -> sinks[i], atomic across the bus."""
        if len(source_eps) != len(sink_eps):
            raise errors.JRouteError(
                f"bus width mismatch: {len(source_eps)} sources, "
                f"{len(sink_eps)} sinks"
            )
        done: list[tuple[EndPoint, EndPoint, list[PlanPip]]] = []
        try:
            for src_ep, sink_ep in zip(source_eps, sink_eps):
                applied, _ = self._route_net(
                    src_ep, [sink_ep], record=False, max_nodes=max_nodes,
                    deadline=deadline,
                )
                done.append((src_ep, sink_ep, applied))
        except errors.JRouteError:
            for _, _, applied in reversed(done):
                for row, col, from_name, to_name in reversed(applied):
                    self.device.turn_off(row, col, from_name, to_name)
            raise
        total = 0
        for src_ep, sink_ep, applied in done:
            total += len(applied)
            source = self._source_canon(src_ep)
            self.netdb.record_net(source, src_ep, self._sink_canons(sink_ep))
            self.netdb.remember_connection(src_ep, sink_ep)
        return total

    # ------------------------------------------------------------- bulk requests

    def route_nets(
        self,
        nets: Sequence[tuple[EndPoint, EndPoint | Sequence[EndPoint]] | NetSpec],
        *,
        workers: int | None = None,
        backend: str | None = None,
        use_longs: bool = True,
        max_iterations: int = 30,
    ) -> PathFinderResult:
        """Route many nets at once with negotiated congestion.

        Each entry is either a ``(source, sink_or_sinks)`` endpoint pair
        or a raw :class:`~repro.routers.pathfinder.NetSpec` of canonical
        wire ids.  All nets are routed together by the PathFinder
        baseline — sharing is negotiated away across the whole set, so
        congestion that defeats greedy one-at-a-time ``route`` calls can
        still converge.  ``workers`` (default: the router's ``workers``
        knob) routes spatial partitions of the nets concurrently per
        iteration on ``backend`` (default: the router's ``backend``
        knob); results are deterministic for any fixed worker count and
        identical across backends.

        Converged plans are applied to the device and recorded in the
        net database; a non-converged run leaves the device untouched
        (inspect the returned result's ``converged`` flag).
        """
        self.call_count += 1
        report = RoutingReport(attempts=1)
        self.last_report = report
        specs: list[NetSpec] = []
        source_eps: list[EndPoint | None] = []
        for item in nets:
            if isinstance(item, NetSpec):
                specs.append(item)
                source_eps.append(None)
                continue
            src_ep, sink_part = item
            sink_list = (
                [sink_part] if isinstance(sink_part, EndPoint) else list(sink_part)
            )
            sinks: list[int] = []
            for ep in sink_list:
                sinks.extend(self._sink_canons(ep))
            specs.append(NetSpec.of(self._source_canon(src_ep), sinks))
            source_eps.append(src_ep)
        result = route_pathfinder(
            self.device,
            specs,
            use_longs=use_longs,
            max_iterations=max_iterations,
            workers=self.workers if workers is None else workers,
            backend=self.backend if backend is None else backend,
            deadline=Deadline.after_ms(self.deadline_ms),
        )
        report.search_stats = result.stats
        self._search_stats = result.stats
        report.success = result.converged
        report.pips_added = result.pips_added
        report.timed_out = result.timed_out
        if result.converged:
            for spec, src_ep in zip(specs, source_eps):
                if src_ep is None:
                    src_ep = Pin(*self.device.arch.primary_name(spec.source))
                self.netdb.record_net(spec.source, src_ep, list(spec.sinks))
        elif result.timed_out:
            report.failures.append(
                f"pathfinder abandoned on deadline after "
                f"{result.iterations} iteration(s)"
            )
        else:
            report.failures.append(
                f"pathfinder did not converge in {result.iterations} iteration(s)"
            )
        return result

    def route_p2p_batch(
        self,
        pairs: Sequence[tuple[EndPoint, EndPoint]],
        *,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[P2PRouteOutcome]:
        """Route many independent point-to-point pairs in one batched search.

        Each entry is a ``(source, sink)`` endpoint pair routed with
        level-4 semantics.  Template attempts stay scalar (they are
        lookup-bound); every template miss rides a single lockstepped
        maze batch over the compiled graph, so the per-search fixed
        costs (fault-mask sync, stats publication, graph traversal
        setup) are paid once per batch instead of once per net.

        All searches see the device state as of the call; plans are
        applied in request order, and a pair whose plan lost a wire to
        an earlier pair is transparently re-routed against the updated
        state (``rerouted=True`` in its outcome).  Per-pair failures —
        breaker refusals, driven sinks, unroutable or timed-out
        searches — are returned in place as outcomes, never raised.
        :attr:`last_report` aggregates the whole batch.
        """
        self.call_count += 1
        deadline = Deadline.after_ms(self.deadline_ms)
        report = RoutingReport(attempts=1)
        self.last_report = report
        self._faults_avoided = 0
        self._search_stats = SearchStats()
        report.search_stats = self._search_stats
        device = self.device
        state = device.state
        arch = device.arch
        k = len(pairs)
        outcomes: list[P2PRouteOutcome | None] = [None] * k
        canons: list[tuple[int, int] | None] = [None] * k
        lanes: list[int] = []
        lane_pairs: list[tuple[int, int]] = []
        for i, (src_ep, sink_ep) in enumerate(pairs):
            try:
                source = self._source_canon(src_ep)
                sink_list = self._sink_canons(sink_ep)
                if len(sink_list) != 1:
                    raise errors.PortError(
                        "route_p2p_batch needs single-pin sink endpoints; "
                        "route multi-pin ports with route()"
                    )
                sink = sink_list[0]
            except errors.JRouteError as e:
                report.failures.append(str(e))
                outcomes[i] = P2PRouteOutcome(i, src_ep, sink_ep, False, error=e)
                continue
            if self.breaker is not None and self.breaker.is_open(source):
                e = errors.UnroutableError(
                    f"circuit breaker open for net {source}: refused without "
                    f"searching (reset the breaker or raise deadline_ms)"
                )
                report.breaker_open = True
                report.failures.append(str(e))
                outcomes[i] = P2PRouteOutcome(i, src_ep, sink_ep, False, error=e)
                continue
            if sink in state.subtree(source):
                # already part of this net: nothing to add
                outcomes[i] = P2PRouteOutcome(i, src_ep, sink_ep, True)
                continue
            if state.is_driven(sink):
                r, c, n = arch.primary_name(sink)
                e = errors.ContentionError(
                    f"sink wire {wires.wire_name(n)} is already driven by "
                    f"another net",
                    row=r,
                    col=c,
                    wire=wires.wire_name(n),
                    net=state.root_of(sink),
                )
                report.failures.append(str(e))
                outcomes[i] = P2PRouteOutcome(i, src_ep, sink_ep, False, error=e)
                continue
            canons[i] = (source, sink)
            lanes.append(i)
            lane_pairs.append((source, sink))
        results: list = []
        if lanes:
            results = route_point_to_point_batch(
                device,
                lane_pairs,
                try_templates=self.try_templates,
                use_longs=self.p2p_use_longs,
                heuristic_weight=self.heuristic_weight,
                max_nodes=self.max_nodes,
                deadline=deadline,
                workers=self.workers if workers is None else workers,
                backend=self.backend if backend is None else backend,
            )
        for i, res in zip(lanes, results):
            src_ep, sink_ep = pairs[i]
            source, sink = canons[i]
            if isinstance(res, errors.JRouteError):
                outcomes[i] = self._p2p_batch_failure(
                    i, src_ep, sink_ep, source, res
                )
                continue
            plan = res.plan
            method = res.method
            rerouted = False
            self._faults_avoided += res.faults_avoided
            if res.stats is not None:
                self._search_stats.merge(res.stats)
            try:
                pips = apply_plan(device, plan)
            except errors.JRouteError:
                # an earlier pair claimed a wire of this plan: re-plan
                # against the device state as it stands now
                rerouted = True
                try:
                    res = route_point_to_point(
                        device,
                        source,
                        sink,
                        try_templates=self.try_templates,
                        use_longs=self.p2p_use_longs,
                        heuristic_weight=self.heuristic_weight,
                        max_nodes=self.max_nodes,
                        deadline=deadline,
                    )
                except errors.JRouteError as e:
                    outcomes[i] = self._p2p_batch_failure(
                        i, src_ep, sink_ep, source, e
                    )
                    continue
                plan = res.plan
                method = res.method
                self._faults_avoided += res.faults_avoided
                if res.stats is not None:
                    self._search_stats.merge(res.stats)
                pips = apply_plan(device, plan)
            if method == "template":
                self.p2p_template_hits += 1
            else:
                self.p2p_maze_fallbacks += 1
            self.netdb.record_net(source, src_ep, [sink])
            self.netdb.remember_connection(src_ep, sink_ep)
            self._note_success(source)
            outcomes[i] = P2PRouteOutcome(
                i, src_ep, sink_ep, True, pips, method, rerouted
            )
        done = [o for o in outcomes if o is not None]
        assert len(done) == k
        report.pips_added = sum(o.pips_added for o in done)
        report.success = all(o.success for o in done)
        report.faults_avoided = self._faults_avoided
        return done

    def _p2p_batch_failure(
        self,
        index: int,
        src_ep: EndPoint,
        sink_ep: EndPoint,
        source: int,
        exc: errors.JRouteError,
    ) -> P2PRouteOutcome:
        """Fold one failed batch pair into the aggregate report."""
        report = self.last_report
        assert report is not None
        report.failures.append(str(exc))
        self._faults_avoided += getattr(exc, "faults_avoided", 0)
        failed_stats = getattr(exc, "search_stats", None)
        if failed_stats is not None:
            self._search_stats.merge(failed_stats)
        if isinstance(exc, errors.DeadlineExceededError):
            report.timed_out = True
            if self.breaker is not None:
                self.breaker.record_trip(source)
        return P2PRouteOutcome(index, src_ep, sink_ep, False, error=exc)

    # ------------------------------------------------------------------- globals

    def route_clock(self, index: int, sink_eps: Sequence[EndPoint]) -> int:
        """Distribute global net ``index`` to clock pins (dedicated nets).

        The four global nets "distribute high-fanout clock signals" with
        dedicated pins; sinks must be CLK control inputs.
        """
        if not 0 <= index < wires.N_GCLK:
            raise errors.JRouteError(f"no global net {index}")
        sinks: list[Pin] = []
        for ep in sink_eps:
            sinks.extend(self.sink_pins_of(ep))
        for pin in sinks:
            if pin.wire not in (wires.S0_CLK, wires.S1_CLK):
                raise errors.InvalidPipError(
                    f"global nets drive clock pins only, not "
                    f"{wires.wire_name(pin.wire)}"
                )
        if self.jbits is not None:
            self.jbits.set_global_buffer(index, True)
        applied: list[PlanPip] = []
        try:
            for pin in sinks:
                if self.device.pip_is_on(pin.row, pin.col, wires.GCLK[index], pin.wire):
                    continue
                self.device.turn_on(pin.row, pin.col, wires.GCLK[index], pin.wire)
                applied.append((pin.row, pin.col, wires.GCLK[index], pin.wire))
        except errors.JRouteError:
            for row, col, from_name, to_name in reversed(applied):
                self.device.turn_off(row, col, from_name, to_name)
            raise
        return len(applied)

    # ------------------------------------------------------------------ unrouting

    def unroute(self, source_ep: EndPoint) -> int:
        """Remove the whole net driven from ``source_ep`` (forward).

        Port connections are *remembered* (Section 3.3): re-routing the
        port later reconnects automatically via :meth:`reconnect`.
        """
        source = self._source_canon(source_ep)
        removed = unroute_forward(self.device, source)
        self.netdb.drop_net(source)
        return removed

    def reverse_unroute(self, sink_ep: EndPoint) -> int:
        """Remove only the branch(es) leading to ``sink_ep``."""
        removed = 0
        for canon in self._sink_canons(sink_ep):
            root = self.device.state.root_of(canon)
            removed += unroute_reverse(self.device, canon)
            if root != canon:
                self.netdb.drop_sink(root, canon)
        return removed

    # ------------------------------------------------------------------- tracing

    def trace(self, source_ep: EndPoint) -> NetTrace:
        """Trace a source to all of its sinks (whole net)."""
        return trace_net(self.device, self._source_canon(source_ep))

    def reverse_trace(self, sink_ep: EndPoint) -> list[PipRecord]:
        """Trace a sink back to its source (only that branch)."""
        canons = self._sink_canons(sink_ep)
        if len(canons) != 1:
            raise errors.PortError(
                "reverse_trace needs a single-pin endpoint; trace each pin"
            )
        return reverse_trace_net(self.device, canons[0])

    # ----------------------------------------------------------------- contention

    def is_on(self, row: int, col: int, wire: int) -> bool:
        """Is the wire at CLB (row, col) currently in use? (Section 3.4)"""
        return self.device.is_on(row, col, wire)

    # ---------------------------------------------------------------- core support

    def register_core(self, core) -> None:
        """Register a core's ports so remembered connections can resolve
        to it (called by core placement; see :mod:`repro.cores`)."""
        self.netdb.register_core_ports(core.all_ports())

    def reconnect(self, core) -> int:
        """Re-route the remembered connections of a (replaced) core's ports.

        The paper's constant-multiplier scenario: "the core can be
        removed, unrouted, and replaced with a new constant multiplier
        without having to specify connections again."
        """
        total = 0
        for port in core.all_ports():
            mem = self.netdb.memory_of(port)
            for src_ref in mem.sources:
                src = self.netdb.resolve_ref(src_ref)
                applied, _ = self._route_net(src, [port])
                total += len(applied)
            for sink_ref in mem.sinks:
                sink = self.netdb.resolve_ref(sink_ref)
                applied, _ = self._route_net(port, [sink])
                total += len(applied)
        return total


def _is_endpoint_seq(obj) -> bool:
    return (
        isinstance(obj, (list, tuple))
        and len(obj) > 0
        and all(isinstance(e, EndPoint) for e in obj)
    )
