"""Path: an explicit sequence of routing resources (route level 2).

Paper, Section 3.1: "A path is an array of specific resources, for
example HexNorth[4], that are to be connected.  The path also requires a
starting location, defined by a row and column.  The router turns on all
of the connections defined in the path."

Resolving a path walks the device: after driving a directional wire the
location advances to its far end, where the wire carries the opposite
name (driving ``SingleEast[5]`` at (5,7) leaves the signal on
``SingleWest[5]`` at (5,8), as in the paper's example).
"""

from __future__ import annotations

from typing import Sequence

from .. import errors
from ..arch import wires
from ..device.fabric import Device
from ..routers.base import PlanPip

__all__ = ["Path"]


class Path:
    """An array of specific resources starting at ``(row, col)``."""

    __slots__ = ("row", "col", "wires")

    def __init__(self, row: int, col: int, path_wires: Sequence[int]) -> None:
        if len(path_wires) < 2:
            raise errors.JRouteError("a path needs at least two wires")
        self.row = row
        self.col = col
        self.wires = tuple(path_wires)

    def __len__(self) -> int:
        return len(self.wires)

    def __str__(self) -> str:
        names = ", ".join(wires.wire_name(w) for w in self.wires)
        return f"Path@({self.row},{self.col})[{names}]"

    def resolve(self, device: Device) -> list[PlanPip]:
        """Compute the PIP sequence realising this path on ``device``.

        Each consecutive wire pair must share a tile where the PIP exists;
        the walk follows the driven wire to whichever of its presence
        points admits the next connection (preferring to stay at the
        current tile).  Raises :class:`~repro.errors.InvalidPipError` when
        the path is not realisable.
        """
        arch = device.arch
        plan: list[PlanPip] = []
        # presence points of the signal after the previous step
        here = [(self.row, self.col, self.wires[0])]
        canon0 = arch.canonicalize(self.row, self.col, self.wires[0])
        if canon0 is None:
            raise errors.InvalidResourceError(
                f"{wires.wire_name(self.wires[0])} does not exist at "
                f"({self.row},{self.col})"
            )
        here = [
            (r, c, n)
            for r, c, n in arch.presences(canon0)
        ]
        # prefer the user's stated start tile
        here.sort(key=lambda p: (p[0], p[1]) != (self.row, self.col))

        for step, to_wire in enumerate(self.wires[1:], start=1):
            placed = None
            for r, c, from_name in here:
                if not arch.pip_exists(from_name, to_wire):
                    continue
                canon_to = arch.canonicalize(r, c, to_wire)
                if canon_to is None:
                    continue
                placed = (r, c, from_name, to_wire, canon_to)
                break
            if placed is None:
                raise errors.InvalidPipError(
                    f"path step {step}: cannot drive "
                    f"{wires.wire_name(to_wire)} from "
                    f"{wires.wire_name(here[0][2])} near "
                    f"({here[0][0]},{here[0][1]})"
                )
            r, c, from_name, to_wire, canon_to = placed
            plan.append((r, c, from_name, to_wire))
            here = arch.presences(canon_to)
            # prefer continuing away from the tile we just used
            here.sort(key=lambda p: (p[0], p[1]) == (r, c))
        return plan
