"""Skew-aware fanout routing (the paper's Section 6 future work).

Two mechanisms:

* :func:`route_balanced_fanout` — a fanout router that trades wirelength
  for skew: every sink gets an independent branch from the source's OMUX
  stage (no deep tree reuse), so arrival paths have similar composition.
* :func:`equalize_skew` — post-route skew reduction: while the net's
  skew exceeds a tolerance, the *earliest* sink's branch is ripped up
  and re-routed with fast wire classes (hexes, longs) disabled for that
  branch, lengthening it toward the critical delay.

Both are measured against the greedy router in experiment E13.
"""

from __future__ import annotations

from .. import errors
from ..arch.wires import WireClass
from ..core.unroute import unroute_reverse
from ..device.fabric import Device
from ..routers.base import PlanPip, apply_plan
from ..routers.maze import route_maze
from .delay import DEFAULT_DELAY_MODEL, DelayModel, net_timing

__all__ = ["route_balanced_fanout", "equalize_skew"]


def route_balanced_fanout(
    device: Device,
    source: int,
    sinks,
    *,
    use_longs: bool = False,
    heuristic_weight: float = 0.8,
    max_nodes: int = 200_000,
) -> int:
    """Route a fanout net with per-sink independent branches.

    Only the source wire and its already-driven OMUX stage are shared;
    each sink's branch is otherwise disjoint, which keeps arrival-path
    composition (and therefore delay) similar across sinks.  Costs more
    wire than greedy tree reuse — that is the trade.

    Returns the number of PIPs added; atomic on failure.
    """
    applied: list[PlanPip] = []
    try:
        for sink in sinks:
            reuse = {source} | set(device.state.children_of(source))
            res = route_maze(
                device,
                [source],
                {sink},
                reuse=reuse,
                use_longs=use_longs,
                heuristic_weight=heuristic_weight,
                max_nodes=max_nodes,
            )
            apply_plan(device, res.plan)
            applied.extend(res.plan)
    except errors.JRouteError:
        for row, col, fn, tn in reversed(applied):
            device.turn_off(row, col, fn, tn)
        raise
    return len(applied)


def equalize_skew(
    device: Device,
    source: int,
    *,
    tolerance: float = 1.0,
    max_iterations: int = 10,
    model: DelayModel = DEFAULT_DELAY_MODEL,
    heuristic_weight: float = 0.8,
) -> float:
    """Reduce a routed net's skew by re-routing early-arriving branches.

    While skew exceeds ``tolerance``: rip up the earliest sink's branch
    and re-route it through singles only (no hexes/longs), which slows
    that branch toward the critical delay.  Stops when within tolerance,
    when re-routing stops helping, or after ``max_iterations``.

    Returns the final skew.  The net is never left partially routed: a
    failed re-route restores the previous branch.
    """
    timing = net_timing(device, source, model)
    if len(timing.sink_delays) < 2:
        return 0.0
    best = timing.skew
    for _ in range(max_iterations):
        if best <= tolerance:
            break
        timing = net_timing(device, source, model)
        early = min(timing.sink_delays, key=timing.sink_delays.get)
        # remember the branch in case the re-route is worse
        from ..core.tracer import reverse_trace_net

        old_branch = [
            (r.row, r.col, r.from_name, r.to_name)
            for r in reverse_trace_net(device, early)
        ]
        unroute_reverse(device, early)
        tree = set(device.state.subtree(source))
        try:
            res = route_maze(
                device,
                [source],
                {early},
                reuse=tree,
                use_longs=False,
                avoid_classes=(WireClass.HEX,),
                heuristic_weight=heuristic_weight,
            )
            apply_plan(device, res.plan)
        except errors.JRouteError:
            apply_plan(device, old_branch)  # restore
            break
        new_skew = net_timing(device, source, model).skew
        if new_skew >= best:
            # undo: the slower branch did not help (overshoot)
            unroute_reverse(device, early)
            apply_plan(device, old_branch)
            break
        best = new_skew
    return best
