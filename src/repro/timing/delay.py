"""Interconnect delay estimation.

The paper defers timing ("Because it is not timing driven, this
algorithm is suitable only for non-critical nets", §3.1) and lists skew
minimization as future work (§6).  This module supplies the missing
analysis: a lumped per-resource delay model (one constant per wire class
plus a per-PIP switch delay, in arbitrary nanosecond-like units) and
net-level delay/skew reports computed over the routing forest.

The constants are *model* numbers chosen to preserve the relevant
ordering on Virtex-class fabrics — local hops fastest, singles per-CLB
slowest, hexes amortising their span, buffered longs fast across the
chip — not datasheet values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.wires import WireClass
from ..core.tracer import reverse_trace_net
from ..device.fabric import Device

__all__ = ["DelayModel", "DEFAULT_DELAY_MODEL", "net_delays", "NetTiming", "net_timing"]


@dataclass(frozen=True, slots=True)
class DelayModel:
    """Lumped delays per resource class (ns) plus a per-PIP switch delay."""

    pip_switch: float = 0.3
    by_class: dict = field(
        default_factory=lambda: {
            WireClass.OUT: 0.4,
            WireClass.SLICE_OUT: 0.0,
            WireClass.SLICE_IN: 0.2,
            WireClass.CTL_IN: 0.2,
            WireClass.SINGLE: 1.0,
            WireClass.HEX: 2.2,     # 6 CLBs, buffered: far less than 6 singles
            WireClass.LONG_H: 3.0,  # chip-spanning, buffered
            WireClass.LONG_V: 3.0,
            WireClass.GCLK: 0.8,    # dedicated low-skew network
            WireClass.DIRECT: 0.3,
            WireClass.IOB_IN: 0.9,   # input buffer
            WireClass.IOB_OUT: 1.1,  # output buffer + pad
        }
    )

    def wire_delay(self, device: Device, canon: int) -> float:
        """Delay contributed by one wire instance."""
        return self.by_class[device.arch.wire_class_of(canon)]


DEFAULT_DELAY_MODEL = DelayModel()


def net_delays(
    device: Device, source_canon: int, model: DelayModel = DEFAULT_DELAY_MODEL
) -> dict[int, float]:
    """Arrival delay at every wire of a net, keyed by canonical id.

    The source arrives at t=0; each hop adds the switch delay plus the
    driven wire's lumped delay.
    """
    arrivals: dict[int, float] = {source_canon: 0.0}
    stack = [source_canon]
    while stack:
        w = stack.pop()
        base = arrivals[w]
        for kid in device.state.children_of(w):
            arrivals[kid] = base + model.pip_switch + model.wire_delay(device, kid)
            stack.append(kid)
    return arrivals


@dataclass(slots=True)
class NetTiming:
    """Delay/skew summary of one routed net."""

    source: int
    sink_delays: dict[int, float]

    @property
    def max_delay(self) -> float:
        return max(self.sink_delays.values(), default=0.0)

    @property
    def min_delay(self) -> float:
        return min(self.sink_delays.values(), default=0.0)

    @property
    def skew(self) -> float:
        """Spread between the earliest and latest arriving sink."""
        return self.max_delay - self.min_delay

    def critical_sink(self) -> int | None:
        """The sink with the largest arrival delay."""
        if not self.sink_delays:
            return None
        return max(self.sink_delays, key=self.sink_delays.get)

    def critical_path(self, device: Device):
        """PIP records from the source to the critical sink."""
        sink = self.critical_sink()
        if sink is None:
            return []
        return reverse_trace_net(device, sink)


def net_timing(
    device: Device, source_canon: int, model: DelayModel = DEFAULT_DELAY_MODEL
) -> NetTiming:
    """Timing summary of the net rooted at ``source_canon``.

    Sinks are the logic-input wires reached by the net (the places a
    signal is consumed); pass-through interconnect is not counted.
    """
    from ..arch.wires import WireClass as WC

    arrivals = net_delays(device, source_canon, model)
    sink_delays = {
        w: t
        for w, t in arrivals.items()
        if device.arch.wire_class_of(w) in (WC.SLICE_IN, WC.CTL_IN)
    }
    return NetTiming(source_canon, sink_delays)
