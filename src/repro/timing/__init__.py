"""Timing analysis and skew-aware routing (the paper's Section 6 future
work, implemented): lumped interconnect delay model, per-net delay/skew
reports, balanced fanout routing and post-route skew equalisation.
"""

from .delay import DEFAULT_DELAY_MODEL, DelayModel, NetTiming, net_delays, net_timing
from .skew import equalize_skew, route_balanced_fanout

__all__ = [
    "DEFAULT_DELAY_MODEL",
    "DelayModel",
    "NetTiming",
    "net_delays",
    "net_timing",
    "equalize_skew",
    "route_balanced_fanout",
]
