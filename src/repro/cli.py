"""Command-line tools built on the JRoute API.

The paper's Section 1: "Since JRoute is an API, it allows users to build
tools based on it.  These can range from debugging tools to extensions
that increase functionality."  This module is such a tool: a small CLI
over the library for poking at the simulated fabric without writing a
script.

Usage (``python -m repro <command> ...``)::

    parts                         list the Virtex family catalogue
    census [PART]                 fabric statistics of one part
    wires [SUBSTRING]             list wire names (optionally filtered)
    route PART R1 C1 WIRE1 R2 C2 WIRE2 [R3 C3 WIRE3 ...]
          [--batch] [--fault-rate R] [--fault-seed N] [--retry N]
          [--workers N] [--backend thread|process] [--deadline-ms MS]
          [--wal FILE]
                                  auto-route from the first named pin to
                                  the remaining pin(s) and print the
                                  resulting trace; --batch instead pairs
                                  the pins up (SRC1 SINK1 SRC2 SINK2 ...)
                                  and routes all pairs as one batched
                                  point-to-point request on the
                                  vectorized SoA kernel
                                  (JRouter.route_p2p_batch);
                                  --fault-rate injects a
                                  seeded stuck-open PIP rate, --retry
                                  enables rip-up/retry recovery with N
                                  attempts, --workers > 1 routes via
                                  the partitioned negotiated-congestion
                                  router (--backend process runs the
                                  workers as OS processes over a
                                  shared-memory graph), --deadline-ms
                                  bounds each
                                  request (a partial report instead of a
                                  hang), and --wal journals every PIP
                                  event to FILE for crash recovery
    recover WAL [--checkpoint FILE]
                                  rebuild a crashed session from its
                                  write-ahead log (and checkpoint) and
                                  print what was replayed/reconciled
    scrub [PART] [--flips N] [--seed N]
                                  demo the configuration scrubber: route
                                  a small design, inject N seeded SEUs,
                                  then detect, classify and repair them
    pads PART                     IOB ring inventory
    demo                          the paper's Section 3.1 walkthrough
    report                        markdown report of a small demo design
    run FILE                      execute a routing script (see
                                  repro.tools.script for the grammar)
    experiments [E1 E2 ...]       regenerate EXPERIMENTS.md tables
    serve [--part PART] [--workers N] [--host H] [--port P]
          [--data-dir DIR] [--queue-depth N] [--tenant-quota N]
          [--deadline-ms MS]
                                  run the routing daemon: an asyncio
                                  HTTP/JSON front door over a pool of
                                  supervised worker processes, each
                                  owning a durable device session (WAL
                                  shard + recovery).  Overload is shed
                                  with 429 + Retry-After; SIGTERM drains
                                  gracefully.  See docs/ROBUSTNESS.md §5
    submit R1 C1 WIRE1 R2 C2 WIRE2 [--host H] [--port P]
           [--tenant T] [--priority N] [--deadline-ms MS] [--no-wait]
                                  submit one point-to-point route job to
                                  a running daemon and (by default) wait
                                  for its terminal state
    analyze [PATH ...] [--json] [--strict] [--part PART]
            [--rules IDS] [--list-rules] [--diff GIT_REF]
            [--baseline FILE] [--write-baseline FILE]
                                  static analysis: lint routing artifacts
                                  (plans, template sets, WALs,
                                  checkpoints) against the fabric, run
                                  the AST concurrency-hazard detector
                                  over Python sources, and run the
                                  interprocedural call-graph/CFG passes
                                  (transitive blocking, lock ordering,
                                  spawn-lost globals, resource paths);
                                  default target is the installed repro
                                  package itself.  --diff reports only
                                  files changed vs a git ref (the call
                                  graph stays whole-program); --baseline
                                  suppresses known findings.  Exit 1 on
                                  error findings (--strict: on any
                                  finding).  See docs/ANALYSIS.md.
"""

from __future__ import annotations

import sys

from . import errors
from .arch import devices, wires
from .arch.virtex import VirtexArch
from .core import JRouter, Pin

__all__ = ["main"]


def _cmd_parts(args: list[str]) -> int:
    print(f"{'part':10s} {'family':11s} {'rows':>5s} {'cols':>5s} {'CLBs':>6s}")
    for name in devices.part_names(None):
        p = devices.part(name)
        print(f"{p.name:10s} {p.family:11s} {p.rows:5d} {p.cols:5d} {p.clbs:6d}")
    return 0


def _cmd_census(args: list[str]) -> int:
    part = args[0] if args else "XCV50"
    arch = VirtexArch(part)
    existing = sum(arch.wire_exists(c) for c in range(arch.n_wires))
    from .arch import connectivity
    from .io import IoRing

    print(f"{arch.part.name}: {arch.rows}x{arch.cols} CLBs")
    print(f"  singles/direction : {wires.N_SINGLES_PER_DIR}")
    print(f"  hexes/direction   : {wires.N_HEXES_PER_DIR} (accessible)")
    print(f"  long lines        : {wires.N_LONGS} horizontal + {wires.N_LONGS} vertical")
    print(f"  global nets       : {wires.N_GCLK}")
    print(f"  pads              : {IoRing(arch).n_pads()}")
    print(f"  wire instances    : {existing:,} ({arch.n_wires:,} ids)")
    print(f"  PIP names/tile    : {connectivity.N_PIP_SLOTS:,}")
    return 0


def _cmd_wires(args: list[str]) -> int:
    needle = args[0].lower() if args else ""
    for n in range(wires.N_NAMES):
        label = wires.wire_name(n)
        if needle in label.lower():
            info = wires.wire_info(n)
            print(f"{n:4d}  {label:22s} {info.wire_class.name}")
    return 0


def _cmd_route(args: list[str]) -> int:
    usage = ("usage: route PART R1 C1 WIRE1 R2 C2 WIRE2 [R3 C3 WIRE3 ...] "
             "[--batch] [--fault-rate R] [--fault-seed N] [--retry N] "
             "[--workers N] [--backend thread|process] [--deadline-ms MS] "
             "[--wal FILE]")
    batch = False
    fault_rate = 0.0
    fault_seed = 0
    retry_attempts = 0
    workers = 1
    backend = "thread"
    deadline_ms: float | None = None
    wal_path: str | None = None
    pos: list[str] = []
    it = iter(args)
    try:
        for a in it:
            if a == "--batch":
                batch = True
            elif a == "--fault-rate":
                fault_rate = float(next(it))
            elif a == "--fault-seed":
                fault_seed = int(next(it))
            elif a == "--retry":
                retry_attempts = int(next(it))
            elif a == "--workers":
                workers = int(next(it))
            elif a == "--backend":
                backend = next(it)
            elif a == "--deadline-ms":
                deadline_ms = float(next(it))
            elif a == "--wal":
                wal_path = next(it)
            else:
                pos.append(a)
    except (StopIteration, ValueError):
        print(usage, file=sys.stderr)
        return 2
    if (
        len(pos) < 7
        or (len(pos) - 1) % 3 != 0
        or fault_rate < 0
        or retry_attempts < 0
        or workers < 1
        or backend not in ("thread", "process")
        or (deadline_ms is not None and deadline_ms <= 0)
    ):
        print(usage, file=sys.stderr)
        return 2
    if batch and (len(pos) - 1) % 6 != 0:
        print("--batch pairs pins up: need an even number of pins "
              "(SRC1 SINK1 SRC2 SINK2 ...)", file=sys.stderr)
        return 2
    part = pos[0]
    try:
        pins = [
            Pin(int(pos[i]), int(pos[i + 1]), wires.parse_wire_name(pos[i + 2]))
            for i in range(1, len(pos), 3)
        ]
    except KeyError as e:
        print(f"unknown wire name: {e}", file=sys.stderr)
        return 2
    except ValueError:
        print(usage, file=sys.stderr)
        return 2
    src, sinks = pins[0], pins[1:]
    from .core import RetryPolicy
    from .device import FaultModel

    faults = None
    if fault_rate > 0:
        faults = FaultModel.random(
            VirtexArch(part), seed=fault_seed, stuck_open_rate=fault_rate
        )
        print(f"injected faults: {faults}")
    retry = RetryPolicy(max_attempts=retry_attempts) if retry_attempts else None
    router = JRouter(
        part=part,
        faults=faults,
        retry=retry,
        workers=workers,
        backend=backend,
        deadline_ms=deadline_ms,
    )
    session = None
    if wal_path is not None:
        from .core import DurableSession

        session = DurableSession(router, wal_path)
        session.__enter__()
    try:
        if batch:
            # consecutive pin pairs ride one lockstepped batch search
            pairs = list(zip(pins[0::2], pins[1::2]))
            outcomes = router.route_p2p_batch(
                pairs, workers=workers, backend=backend
            )
            n = 0
            failed = 0
            for o in outcomes:
                if o.success:
                    n += o.pips_added
                    tag = o.method or "reused"
                    if o.rerouted:
                        tag += ", rerouted"
                    print(f"  pair {o.index}: {o.source} -> {o.sink} "
                          f"ok ({o.pips_added} PIPs, {tag})")
                else:
                    failed += 1
                    print(f"  pair {o.index}: {o.source} -> {o.sink} "
                          f"FAILED: {o.error}", file=sys.stderr)
            print(f"batch: {len(outcomes) - failed}/{len(outcomes)} pairs "
                  f"routed with {n} PIPs "
                  f"(template hits {router.p2p_template_hits}, "
                  f"maze fallbacks {router.p2p_maze_fallbacks})")
            if router.last_report is not None:
                print(f"report: {router.last_report.summary()}")
            return 1 if failed else 0
        if workers > 1:
            # negotiated bulk routing (partitioned across workers)
            result = router.route_nets([(src, sinks)])
            if not result.converged:
                reason = (
                    "deadline expired" if result.timed_out
                    else "pathfinder did not converge"
                )
                print(f"unroutable: {reason}", file=sys.stderr)
                return 1
            n = result.pips_added
        else:
            n = router.route(src, sinks if len(sinks) > 1 else sinks[0])
            if n == 0 and router.last_report is not None and (
                router.last_report.timed_out or router.last_report.breaker_open
            ):
                print(f"partial: {router.last_report.summary()}",
                      file=sys.stderr)
                return 1
    except errors.JRouteError as e:
        print(f"unroutable: {e}", file=sys.stderr)
        if router.last_report is not None:
            print(f"report: {router.last_report.summary()}", file=sys.stderr)
        return 1
    finally:
        if session is not None:
            session.checkpoint()
            session.close()
            print(f"journal: {wal_path} (seq {session.seq}), "
                  f"checkpoint written")
    print(f"routed with {n} PIPs "
          f"(template hits {router.p2p_template_hits}, "
          f"maze fallbacks {router.p2p_maze_fallbacks})")
    if router.last_report is not None and (faults or retry or workers > 1):
        print(f"report: {router.last_report.summary()}")
    print(router.trace(src).describe(router.device))
    return 0


def _cmd_pads(args: list[str]) -> int:
    from .io import IoRing, PadDirection, Side

    part = args[0] if args else "XCV50"
    ring = IoRing(VirtexArch(part))
    print(f"{part}: {ring.n_pads()} pads")
    for side in Side:
        ins = len(ring.pads(side, PadDirection.IN))
        outs = len(ring.pads(side, PadDirection.OUT))
        print(f"  {side.value:5s}: {ins} in, {outs} out")
    return 0


def _cmd_demo(args: list[str]) -> int:
    router = JRouter(part="XCV50")
    print("paper Section 3.1 example: S1_YQ@(5,7) -> S0F3@(6,8)\n")
    router.route(5, 7, wires.S1_YQ, wires.OUT[1])
    router.route(5, 7, wires.OUT[1], wires.SINGLE_E[5])
    router.route(5, 8, wires.SINGLE_W[5], wires.SINGLE_N[0])
    router.route(6, 8, wires.SINGLE_S[0], wires.S0F[3])
    print(router.trace(Pin(5, 7, wires.S1_YQ)).describe(router.device))
    return 0


def _cmd_report(args: list[str]) -> int:
    from .cores import AccumulatorCore, ConstantCore
    from .tools import design_report

    router = JRouter(part="XCV100")
    acc = AccumulatorCore(router, "acc", 2, 2, width=4)
    k = ConstantCore(router, "k", 2, 4, width=4, value=3)
    router.route(list(k.get_ports("out")), list(acc.get_ports("in")))
    print(design_report(router, title="Demo design report"))
    return 0


def _cmd_run(args: list[str]) -> int:
    from .tools.script import ScriptError, run_script

    if len(args) != 1:
        print("usage: run FILE", file=sys.stderr)
        return 2
    try:
        with open(args[0]) as fh:
            text = fh.read()
    except OSError as e:
        print(f"cannot read {args[0]}: {e}", file=sys.stderr)
        return 2
    try:
        result = run_script(text)
    except ScriptError as e:
        print(f"script failed: {e}", file=sys.stderr)
        return 1
    print(f"{result.statements} statement(s), {result.pips_added} PIPs added "
          f"on {result.router.device.arch.part.name}")
    return 0


def _cmd_recover(args: list[str]) -> int:
    usage = "usage: recover WAL [--checkpoint FILE]"
    checkpoint: str | None = None
    pos: list[str] = []
    it = iter(args)
    try:
        for a in it:
            if a == "--checkpoint":
                checkpoint = next(it)
            else:
                pos.append(a)
    except StopIteration:
        print(usage, file=sys.stderr)
        return 2
    if len(pos) != 1:
        print(usage, file=sys.stderr)
        return 2
    from .core import recover
    from .debug import BoardScope

    try:
        router, report = recover(pos[0], checkpoint_path=checkpoint)
    except (OSError, errors.JRouteError) as e:
        print(f"recovery failed: {e}", file=sys.stderr)
        return 1
    print(report.summary())
    scope = BoardScope(router.device, router.jbits)
    print(f"state: {scope.summary()}")
    print(f"fingerprint: {report.fingerprint}")
    problems = scope.crosscheck()
    for p in problems:
        print(f"problem: {p}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_scrub(args: list[str]) -> int:
    usage = "usage: scrub [PART] [--flips N] [--seed N]"
    n_flips = 4
    seed = 2026
    pos: list[str] = []
    it = iter(args)
    try:
        for a in it:
            if a == "--flips":
                n_flips = int(next(it))
            elif a == "--seed":
                seed = int(next(it))
            else:
                pos.append(a)
    except (StopIteration, ValueError):
        print(usage, file=sys.stderr)
        return 2
    if len(pos) > 1 or n_flips < 1:
        print(usage, file=sys.stderr)
        return 2
    part = pos[0] if pos else "XCV50"
    from .core import Scrubber, inject_seu
    from .jbits.readback import verify_against_device

    router = JRouter(part=part)
    router.route(Pin(5, 5, wires.S0_YQ), Pin(7, 7, wires.S0F[1]))
    router.route(
        Pin(2, 2, wires.S1_YQ),
        [Pin(4, 4, wires.S0F[2]), Pin(1, 5, wires.S1G[3])],
    )
    assert router.jbits is not None
    scrubber = Scrubber(router.jbits.memory, device=router.device)
    flipped = inject_seu(router.jbits.memory, n_flips=n_flips, seed=seed)
    print(f"injected {len(flipped)} SEU(s) into {part} configuration")
    report = scrubber.scrub()
    print(report.summary())
    for rec in report.records:
        print(f"  {rec}")
    coherent = not verify_against_device(router.jbits.memory, router.device)
    print(f"bitstream/state coherent after scrub: {coherent}")
    return 0 if coherent and not scrubber.scan().drifted_frames else 1


def _cmd_analyze(args: list[str]) -> int:
    usage = ("usage: analyze [PATH ...] [--json] [--strict] [--part PART] "
             "[--rules RPR001,RL004,...] [--list-rules] [--diff GIT_REF] "
             "[--baseline FILE] [--write-baseline FILE]")
    from .analysis import RULES, Severity, analyze_paths, filter_rules
    from .analysis.driver import changed_files, load_baseline, write_baseline

    as_json = False
    strict = False
    list_rules = False
    part: str | None = None
    rules: "frozenset[str] | None" = None
    diff_ref: str | None = None
    baseline_path: str | None = None
    write_baseline_path: str | None = None
    paths: list[str] = []
    it = iter(args)
    try:
        for a in it:
            if a == "--json":
                as_json = True
            elif a == "--strict":
                strict = True
            elif a == "--list-rules":
                list_rules = True
            elif a == "--part":
                part = next(it)
            elif a == "--rules":
                rules = filter_rules(next(it))
            elif a == "--diff":
                diff_ref = next(it)
            elif a == "--baseline":
                baseline_path = next(it)
            elif a == "--write-baseline":
                write_baseline_path = next(it)
            elif a.startswith("-"):
                print(usage, file=sys.stderr)
                return 2
            else:
                paths.append(a)
    except StopIteration:
        print(usage, file=sys.stderr)
        return 2
    except ValueError as e:
        print(str(e), file=sys.stderr)
        return 2
    if list_rules:
        for r in RULES.values():
            print(f"{r.id}  {r.severity.value:7s} {r.layer:8s} "
                  f"{r.name}: {r.summary}")
        return 0
    changed: "set[str] | None" = None
    baseline = None
    try:
        if diff_ref is not None:
            changed = changed_files(diff_ref)
        if baseline_path is not None:
            baseline = load_baseline(baseline_path)
    except (ValueError, OSError) as e:
        print(str(e), file=sys.stderr)
        return 2
    report = analyze_paths(paths or None, part=part, rules=rules,
                           changed_only=changed, baseline=baseline)
    if write_baseline_path is not None:
        n = write_baseline(report, write_baseline_path)
        print(f"wrote {n} baseline entries to {write_baseline_path}",
              file=sys.stderr)
    if as_json:
        print(report.to_json())
    else:
        print(report.render_text())
    worst = report.worst()
    if worst is None:
        return 0
    if strict or worst is Severity.ERROR:
        return 1
    return 0


def _cmd_experiments(args: list[str]) -> int:
    from .bench.__main__ import main as bench_main

    return bench_main(args)


def _cmd_serve(args: list[str]) -> int:
    usage = (
        "usage: serve [--part PART] [--workers N] [--host H] [--port P] "
        "[--data-dir DIR] [--queue-depth N] [--tenant-quota N] "
        "[--deadline-ms MS]"
    )
    opts = {
        "--part": "XCV50", "--workers": "2", "--host": "127.0.0.1",
        "--port": "8787", "--data-dir": "./repro-service",
        "--queue-depth": "256", "--tenant-quota": "64",
        "--deadline-ms": "5000",
    }
    it = iter(args)
    try:
        for a in it:
            if a in opts:
                opts[a] = next(it)
            else:
                print(usage, file=sys.stderr)
                return 2
    except StopIteration:
        print(usage, file=sys.stderr)
        return 2

    import asyncio

    from .service import RoutingService, ServiceConfig

    config = ServiceConfig(
        part=opts["--part"],
        workers=int(opts["--workers"]),
        queue_depth=int(opts["--queue-depth"]),
        tenant_quota=int(opts["--tenant-quota"]),
        default_deadline_ms=float(opts["--deadline-ms"]),
    )
    svc = RoutingService(
        config, opts["--data-dir"],
        host=opts["--host"], port=int(opts["--port"]),
    )

    async def _serve() -> None:
        await svc.start()
        svc.install_signal_handlers()
        print(
            f"repro serve: {config.part} x{config.workers} workers on "
            f"http://{svc.host}:{svc.port} (data: {opts['--data-dir']})"
        )
        await svc.serve_forever()

    asyncio.run(_serve())
    return 0


def _cmd_submit(args: list[str]) -> int:
    usage = (
        "usage: submit R1 C1 WIRE1 R2 C2 WIRE2 [--host H] [--port P] "
        "[--tenant T] [--priority N] [--deadline-ms MS] [--no-wait]"
    )
    opts = {
        "--host": "127.0.0.1", "--port": "8787",
        "--tenant": "default", "--priority": "0", "--deadline-ms": None,
    }
    wait = True
    pos: list[str] = []
    it = iter(args)
    try:
        for a in it:
            if a == "--no-wait":
                wait = False
            elif a in opts:
                opts[a] = next(it)
            else:
                pos.append(a)
    except StopIteration:
        print(usage, file=sys.stderr)
        return 2
    if len(pos) != 6:
        print(usage, file=sys.stderr)
        return 2

    import json as _json

    from .service import ServiceClient
    from .service.client import ServiceError

    def pin(r, c, w):
        return [int(r), int(c), w if not w.isdigit() else int(w)]

    client = ServiceClient(opts["--host"], int(opts["--port"]))
    deadline = opts["--deadline-ms"]
    try:
        status, doc = client.submit(
            pin(*pos[0:3]), pin(*pos[3:6]),
            tenant=opts["--tenant"],
            priority=int(opts["--priority"]),
            deadline_ms=None if deadline is None else float(deadline),
            wait=wait,
        )
    except ServiceError as e:
        print(f"submit failed: {e}", file=sys.stderr)
        return 1
    finally:
        client.close()
    print(_json.dumps(doc, indent=2))
    if status in (200, 202):
        return 0 if doc.get("state") != "failed" else 1
    return 1


_COMMANDS = {
    "parts": _cmd_parts,
    "census": _cmd_census,
    "wires": _cmd_wires,
    "route": _cmd_route,
    "pads": _cmd_pads,
    "demo": _cmd_demo,
    "report": _cmd_report,
    "run": _cmd_run,
    "recover": _cmd_recover,
    "scrub": _cmd_scrub,
    "experiments": _cmd_experiments,
    "analyze": _cmd_analyze,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    cmd = argv[0].lower()
    fn = _COMMANDS.get(cmd)
    if fn is None:
        print(f"unknown command {cmd!r}; try: {', '.join(_COMMANDS)}",
              file=sys.stderr)
        return 2
    try:
        return fn(argv[1:])
    except BrokenPipeError:  # e.g. `python -m repro parts | head`
        return 0
