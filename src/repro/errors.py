"""Exception hierarchy of the JRoute reproduction.

The paper specifies exception behaviour in Section 3.4: "An exception is
thrown in cases where the user tries to make connections that create
contention."  Route failures (template/auto-routing finding no free
resources) are likewise surfaced as exceptions requiring user action
("The call would fail ... In this case a user action is required").

Routing failures carry structured context — the tile, wire name and net
involved — so retry logic (:mod:`repro.core.recovery`) and operator
tooling can act on them programmatically instead of parsing messages.
"""

from __future__ import annotations

__all__ = [
    "JRouteError",
    "LocatedError",
    "InvalidResourceError",
    "InvalidPipError",
    "RoutingFailure",
    "ContentionError",
    "RoutingLoopError",
    "UnroutableError",
    "DeadlineExceededError",
    "FaultError",
    "TransactionError",
    "PortError",
    "PlacementError",
    "BitstreamError",
]


class JRouteError(Exception):
    """Base class for all errors raised by this library."""


class LocatedError(JRouteError):
    """A :class:`JRouteError` carrying a structured artifact location.

    Bitstream and WAL/checkpoint errors locate the problem in a *file*
    (frame/offset for configuration memory, path/line/seq for logs)
    rather than on the fabric.  The fields render exactly like
    :meth:`RoutingFailure.context` (``message [k=v, ...]``) and use the
    same keys as static-analysis findings
    (:mod:`repro.analysis.findings`), so runtime errors, recovery tooling
    and ``repro analyze`` reports all share one location format.
    """

    _FIELDS = ("path", "frame", "offset", "line", "seq")

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        frame: int | None = None,
        offset: int | None = None,
        line: int | None = None,
        seq: int | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.path = path
        self.frame = frame
        self.offset = offset
        self.line = line
        self.seq = seq

    def context(self) -> dict[str, int | str]:
        """The non-empty structured fields, as a dict."""
        out: dict[str, int | str] = {}
        for key in self._FIELDS:
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def __str__(self) -> str:
        ctx = self.context()
        if not ctx:
            return self.message
        rendered = ", ".join(f"{k}={v}" for k, v in ctx.items())
        return f"{self.message} [{rendered}]"


class InvalidResourceError(JRouteError):
    """A wire name does not exist at the given tile (out of bounds, edge
    wire, or no long-line access point there)."""


class InvalidPipError(JRouteError):
    """No programmable interconnect point exists between the two wires."""


class RoutingFailure(JRouteError):
    """A routing request that could not be satisfied, with context.

    Attributes
    ----------
    row, col:
        Tile of the resource at the centre of the failure (or None).
    wire:
        Wire name string of that resource (or None).
    net:
        Canonical wire id of the net's source involved in the failure
        (the blocking net for contention, the requested net for
        unroutability), or None when unknown.
    faults_avoided:
        Faulty resources the failed search masked out before giving up
        (not rendered in the message; reporting metadata only).
    """

    def __init__(
        self,
        message: str,
        *,
        row: int | None = None,
        col: int | None = None,
        wire: str | None = None,
        net: int | None = None,
        faults_avoided: int = 0,
        search_stats: object | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.row = row
        self.col = col
        self.wire = wire
        self.net = net
        self.faults_avoided = faults_avoided
        #: SearchStats of the failed search (reporting metadata only,
        #: not rendered in the message), or None
        self.search_stats = search_stats

    def context(self) -> dict[str, int | str]:
        """The non-empty structured fields, as a dict."""
        out: dict[str, int | str] = {}
        for key in ("row", "col", "wire", "net"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def __str__(self) -> str:
        ctx = self.context()
        if not ctx:
            return self.message
        rendered = ", ".join(f"{k}={v}" for k, v in ctx.items())
        return f"{self.message} [{rendered}]"


class ContentionError(RoutingFailure):
    """A connection would drive a wire that is already driven.

    Virtex has bi-directional routing resources which can be driven from
    either end; the router refuses configurations where a wire has two
    drivers, protecting the (simulated) device.  ``row``/``col``/``wire``
    locate the contended wire and ``net`` is the source of the net that
    already drives it.
    """


class RoutingLoopError(JRouteError):
    """A connection would close a combinational loop of routing PIPs."""


class UnroutableError(RoutingFailure):
    """No combination of free resources realises the requested route.

    ``row``/``col``/``wire`` locate the unreached target and ``net`` the
    source wire of the request, when known.
    """


class DeadlineExceededError(RoutingFailure):
    """A search ran past its cooperative deadline and was abandoned.

    Raised by the deadline-aware routers (:mod:`repro.core.deadline`)
    when a :class:`~repro.core.deadline.Deadline` expires or is
    cancelled mid-search.  Everything applied before the trip is rolled
    back by the usual transaction machinery; ``search_stats`` carries
    the partial instrumentation of the abandoned search.  The
    :class:`~repro.core.router.JRouter` converts this into a partial
    :class:`~repro.core.recovery.RoutingReport` instead of letting it
    escape to the caller.
    """


class FaultError(JRouteError):
    """A connection would use a physically defective resource.

    The fault model (:mod:`repro.device.faults`) marks wires dead or
    pre-driven and PIPs stuck open; the device refuses to configure them,
    and fault-aware routers mask them out of their searches instead.
    """


class TransactionError(LocatedError):
    """A routing transaction or durable-session artifact is inconsistent.

    Raised by :class:`repro.core.txn.RouteTransaction` when the
    post-rollback invariant audit finds the routing state, net database
    and bitstream mirror out of sync — indicating state corruption that
    user action must resolve — and by the WAL/checkpoint machinery
    (:mod:`repro.core.wal`) for malformed durability artifacts, with the
    offending ``path``/``line``/``seq`` carried as structured context.
    """


class PortError(JRouteError):
    """Misuse of core ports (unknown group, unconnected port, arity)."""


class PlacementError(JRouteError):
    """A core does not fit at the requested location or overlaps another."""


class BitstreamError(LocatedError):
    """Malformed configuration packet or bad frame address.

    Carries the ``frame``/``offset`` of the offending bit as structured
    context when the error concerns a specific configuration-memory
    location (e.g. :meth:`repro.jbits.bitstream.ConfigMemory.locate_bit`).
    """
