"""Exception hierarchy of the JRoute reproduction.

The paper specifies exception behaviour in Section 3.4: "An exception is
thrown in cases where the user tries to make connections that create
contention."  Route failures (template/auto-routing finding no free
resources) are likewise surfaced as exceptions requiring user action
("The call would fail ... In this case a user action is required").
"""

from __future__ import annotations

__all__ = [
    "JRouteError",
    "InvalidResourceError",
    "InvalidPipError",
    "ContentionError",
    "RoutingLoopError",
    "UnroutableError",
    "PortError",
    "PlacementError",
    "BitstreamError",
]


class JRouteError(Exception):
    """Base class for all errors raised by this library."""


class InvalidResourceError(JRouteError):
    """A wire name does not exist at the given tile (out of bounds, edge
    wire, or no long-line access point there)."""


class InvalidPipError(JRouteError):
    """No programmable interconnect point exists between the two wires."""


class ContentionError(JRouteError):
    """A connection would drive a wire that is already driven.

    Virtex has bi-directional routing resources which can be driven from
    either end; the router refuses configurations where a wire has two
    drivers, protecting the (simulated) device.
    """


class RoutingLoopError(JRouteError):
    """A connection would close a combinational loop of routing PIPs."""


class UnroutableError(JRouteError):
    """No combination of free resources realises the requested route."""


class PortError(JRouteError):
    """Misuse of core ports (unknown group, unconnected port, arity)."""


class PlacementError(JRouteError):
    """A core does not fit at the requested location or overlaps another."""


class BitstreamError(JRouteError):
    """Malformed configuration packet or bad frame address."""
