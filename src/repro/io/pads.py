"""I/O pads: the IOB ring (paper Section 6 future work, implemented).

"Virtex features such as IOBs ... will be supported in a future release
of JRoute."  This module provides that support over the simulated
fabric: every perimeter CLB carries :data:`~repro.arch.wires.N_IOB_PER_TILE`
input pads (``IobIn`` wires, sources driving into the general routing)
and as many output pads (``IobOut`` wires, sinks reached from singles or
the OMUX fast path).

:class:`IoRing` enumerates the pads of a device and hands out
:class:`~repro.core.endpoints.Pin` objects, so pads participate in every
JRoute call exactly like logic pins — including port bindings, which is
how cores export off-chip interfaces.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import errors
from ..arch import wires
from ..arch.virtex import VirtexArch
from ..core.endpoints import Pin

__all__ = ["PadDirection", "Side", "Pad", "IoRing"]


class PadDirection(enum.Enum):
    IN = "in"    #: pad drives into the fabric
    OUT = "out"  #: fabric drives the pad


class Side(enum.Enum):
    """Device edges.  NORTH is the highest row (row index increases north)."""

    SOUTH = "south"  #: row 0
    NORTH = "north"  #: row rows-1
    WEST = "west"    #: col 0
    EAST = "east"    #: col cols-1


@dataclass(frozen=True, slots=True)
class Pad:
    """One I/O pad: a perimeter tile position plus a pad index."""

    row: int
    col: int
    index: int
    direction: PadDirection

    @property
    def pin(self) -> Pin:
        """The routing pin of this pad."""
        name = (
            wires.IOB_IN[self.index]
            if self.direction is PadDirection.IN
            else wires.IOB_OUT[self.index]
        )
        return Pin(self.row, self.col, name)

    def __str__(self) -> str:
        return f"Pad[{self.direction.value}]{self.index}@({self.row},{self.col})"


class IoRing:
    """The device's ring of I/O pads."""

    def __init__(self, arch: VirtexArch) -> None:
        self.arch = arch

    # -- enumeration ------------------------------------------------------------

    def side_tiles(self, side: Side) -> list[tuple[int, int]]:
        """Perimeter tiles of one side, in increasing coordinate order."""
        rows, cols = self.arch.rows, self.arch.cols
        if side is Side.SOUTH:
            return [(0, c) for c in range(cols)]
        if side is Side.NORTH:
            return [(rows - 1, c) for c in range(cols)]
        if side is Side.WEST:
            return [(r, 0) for r in range(rows)]
        return [(r, cols - 1) for r in range(rows)]

    def pads(
        self, side: Side | None = None, direction: PadDirection | None = None
    ) -> list[Pad]:
        """All pads, optionally filtered by side and direction.

        Corner tiles belong to two sides; they are reported for both, but
        carry one physical set of pads (enumerating without a side filter
        deduplicates them).
        """
        if side is not None:
            tiles = self.side_tiles(side)
        else:
            tiles = sorted(
                {t for s in Side for t in self.side_tiles(s)}
            )
        dirs = (direction,) if direction is not None else tuple(PadDirection)
        out: list[Pad] = []
        for row, col in tiles:
            for d in dirs:
                for i in range(wires.N_IOB_PER_TILE):
                    out.append(Pad(row, col, i, d))
        return out

    def n_pads(self) -> int:
        """Total physical pads of the device (both directions)."""
        perimeter_tiles = 2 * self.arch.rows + 2 * self.arch.cols - 4
        return perimeter_tiles * wires.N_IOB_PER_TILE * 2

    # -- bus helpers ---------------------------------------------------------------

    def bus(
        self, side: Side, direction: PadDirection, width: int, *, offset: int = 0
    ) -> list[Pin]:
        """``width`` consecutive pad pins along a side (little-endian).

        Pads are ordered tile-by-tile along the side, ``N_IOB_PER_TILE``
        per tile, starting ``offset`` pads in.  Raises when the side does
        not have enough pads.
        """
        pads = self.pads(side, direction)
        if offset < 0 or offset + width > len(pads):
            raise errors.PlacementError(
                f"side {side.value} has {len(pads)} {direction.value}-pads; "
                f"cannot take {width} at offset {offset}"
            )
        return [p.pin for p in pads[offset : offset + width]]
