"""I/O pad support: the IOB ring of the simulated device (the paper's
Section 6 IOB future work, implemented)."""

from .pads import IoRing, Pad, PadDirection, Side

__all__ = ["IoRing", "Pad", "PadDirection", "Side"]
