"""Rule registry: every static-analysis rule, both layers, one catalog.

Rule ids are *stable*: an id never changes meaning, and retired ids are
never reused (tooling and suppression comments depend on this —
``tests/analysis/test_findings.py`` pins the catalog).  Artifact rules
(``RL...``) belong to the fabric-aware route linter
(:mod:`repro.analysis.routelint`); code rules (``RPR...``) belong to the
AST concurrency-hazard detector (:mod:`repro.analysis.codelint`) and
each encodes a bug class a previous PR actually fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..findings import Severity

__all__ = ["Rule", "RULES", "rule", "artifact_rules", "code_rules"]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered rule: identity, default severity, documentation."""

    id: str
    #: "artifact" (route lint) or "code" (AST pass)
    layer: str
    #: short kebab-case name, stable like the id
    name: str
    #: default severity of findings (occurrences may downgrade)
    severity: Severity
    #: one-line description for ``repro analyze --rules`` and the docs
    summary: str


_REGISTRY: dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:  # pragma: no cover - registration bug guard
        raise ValueError(f"duplicate rule id {rule.id}")
    # import-time only: the catalog is built once under the import lock
    _REGISTRY[rule.id] = rule  # repro: noqa RPR002
    return rule


# -- Layer 1: fabric-aware artifact rules --------------------------------------

RL001 = _register(Rule(
    "RL001", "artifact", "unknown-wire", Severity.ERROR,
    "a referenced wire does not exist at the given tile on this part",
))
RL002 = _register(Rule(
    "RL002", "artifact", "missing-pip", Severity.ERROR,
    "no architecture PIP connects the two wires of a step",
))
RL003 = _register(Rule(
    "RL003", "artifact", "undrivable-target", Severity.ERROR,
    "the step's target wire cannot be driven at that tile "
    "(direction legality: pure sources, odd-hex far ends)",
))
RL004 = _register(Rule(
    "RL004", "artifact", "drive-conflict", Severity.ERROR,
    "two steps drive the same physical wire from different sources "
    "(the static form of the runtime isOn/contention check)",
))
RL005 = _register(Rule(
    "RL005", "artifact", "illegal-template-step", Severity.ERROR,
    "no fabric location can realise this template step "
    "(impossible value transition, or the cursor leaves the device)",
))
RL006 = _register(Rule(
    "RL006", "artifact", "dead-template-entry", Severity.WARNING,
    "a template-set entry can never be chosen "
    "(duplicate, or displacement disagrees with the declared target)",
))
RL007 = _register(Rule(
    "RL007", "artifact", "wal-frame", Severity.ERROR,
    "a WAL frame is malformed: bad header, CRC mismatch, sequence gap, "
    "or a torn tail (torn tails are warnings — recovery tolerates them)",
))
RL008 = _register(Rule(
    "RL008", "artifact", "replay-illegal", Severity.ERROR,
    "replaying the journal in order would trip the device's contention "
    "or loop protection (drive-before-driver, double drive, off-without-on)",
))
RL009 = _register(Rule(
    "RL009", "artifact", "checkpoint-inconsistent", Severity.ERROR,
    "a checkpoint's PIP preorder, net records or WAL linkage are "
    "mutually inconsistent",
))

# -- Layer 2: code-level concurrency-hazard rules ------------------------------
# Each of these is a named, regression-proof form of a bug class fixed in
# PRs 1-4 (see docs/ANALYSIS.md for the history and a minimal trigger).

RPR001 = _register(Rule(
    "RPR001", "code", "id-keyed-cache", Severity.ERROR,
    "id(...) used as a mapping key: CPython reuses ids after garbage "
    "collection, so the cache aliases dead objects (PR 4's fault-mask bug)",
))
RPR002 = _register(Rule(
    "RPR002", "code", "unguarded-global-mutation", Severity.ERROR,
    "a module-level global is mutated outside any lock guard: data race "
    "once worker threads share the module (PR 4's GLOBAL_STATS bug)",
))
RPR003 = _register(Rule(
    "RPR003", "code", "pool-in-loop", Severity.WARNING,
    "an executor/pool is constructed inside a loop: per-iteration "
    "spawn/teardown cost, and workers never amortise (fixed in PR 4)",
))
RPR004 = _register(Rule(
    "RPR004", "code", "deadline-poll-missing", Severity.WARNING,
    "an unbounded search loop in a deadline-taking function never polls "
    "the deadline token: the budget cannot bound this loop (PR 3's "
    "contract)",
))
RPR005 = _register(Rule(
    "RPR005", "code", "shm-create-without-unlink", Severity.ERROR,
    "SharedMemory(create=True) in a module that never unlinks: the "
    "segment leaks past process exit (PR 4's /dev/shm lifecycle)",
))
RPR006 = _register(Rule(
    "RPR006", "code", "swallowed-exception", Severity.WARNING,
    "a bare/broad except (or an except RoutingFailure whose body is only "
    "pass/continue) silently discards failures and their structured "
    "context",
))
RPR007 = _register(Rule(
    "RPR007", "code", "per-element-array-loop", Severity.WARNING,
    "a Python for loop iterates per element over a numpy array (or "
    "indexes one through range(len)): hot-path scalar fallback that the "
    "vectorized SoA kernel exists to avoid (PR 7's batched search); "
    "justified scalar oracles carry `# repro: noqa RPR007`",
))
RPR008 = _register(Rule(
    "RPR008", "code", "blocking-call-in-async", Severity.ERROR,
    "a blocking call (time.sleep, builtin open, subprocess.run/…) sits "
    "directly inside an async def body: it stalls the event loop for "
    "every connection the daemon is serving; hop to a worker thread "
    "(asyncio.to_thread) or use the async equivalent; since the "
    "interprocedural upgrade, import-alias forms (from time import "
    "sleep) resolve too",
))

# -- Interprocedural rules (call graph + CFG dataflow, this PR) ----------------
# These need the whole program: the hazards they encode crossed function
# boundaries every time this repo hit them (PRs 4, 8, 9).

RPR009 = _register(Rule(
    "RPR009", "code", "transitive-blocking-in-async", Severity.ERROR,
    "an async def reaches a blocking primitive through a chain of "
    "synchronous helpers (call-graph closure): the loop stalls exactly "
    "as with RPR008, but no single file shows it; the finding prints "
    "the call chain",
))
RPR010 = _register(Rule(
    "RPR010", "code", "lock-order-inversion", Severity.ERROR,
    "two locks are acquired in opposite orders on different call paths "
    "(lockset cycle over the lock-order graph, including locks held "
    "across call edges): two threads can deadlock",
))
RPR011 = _register(Rule(
    "RPR011", "code", "spawn-lost-global-mutation", Severity.WARNING,
    "a module global mutated in code reachable from a process-pool "
    "entry point while parent-side code reads the same global: under "
    "spawn the child mutates a copy, so the update silently never "
    "reaches the parent (ship it back in the worker result instead)",
))
RPR012 = _register(Rule(
    "RPR012", "code", "resource-path-leak", Severity.WARNING,
    "a resource (SharedMemory(create=True), an executor, a bare open) "
    "is created but some CFG path reaches the function exit without "
    "releasing or handing it off — the path-sensitive generalisation "
    "of RPR005",
))
RPR013 = _register(Rule(
    "RPR013", "code", "unused-suppression", Severity.INFO,
    "a `# repro: noqa` directive suppresses nothing on its line: the "
    "hazard it justified is gone, so the comment is dead and should be "
    "deleted (stale suppressions hide future regressions)",
))

#: The full catalog, id-sorted.
RULES: dict[str, Rule] = dict(sorted(_REGISTRY.items()))


def rule(rule_id: str) -> Rule:
    """Look up a rule by id (raises KeyError for unknown ids)."""
    return RULES[rule_id]


def artifact_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.layer == "artifact"]


def code_rules() -> list[Rule]:
    return [r for r in RULES.values() if r.layer == "code"]
