"""Whole-program call graph over the analysed Python sources.

:class:`ProjectIndex` parses every module once and records what a
name-resolution pass needs: module-level functions, classes and their
methods, import aliases (absolute and relative), nested functions and
lambdas.  :class:`CallGraph` then resolves every call site in every
function body to either a *project* function (a qualified name such as
``repro.core.kernel.dijkstra`` or ``repro.service.server.Server.start``)
or an *external* dotted name (``ext:time.sleep``), producing typed
edges.

Edges carry a *kind*, because how a callee is reached decides which
hazards apply:

``call``
    ordinary synchronous invocation (also decorator application and
    ``atexit.register`` callbacks — they run in this process).
``task``
    ``asyncio.create_task`` / ``ensure_future`` — the coroutine runs on
    the same event loop.
``spawn-thread``
    ``ThreadPoolExecutor.submit/map``, ``asyncio.to_thread``,
    ``loop.run_in_executor``, ``threading.Thread(target=...)`` — the
    callee runs off-loop but in this process.
``spawn-process``
    ``ProcessPoolExecutor`` submit/map/initializer,
    ``multiprocessing.Process(target=...)`` (including through a cached
    ``get_context(...)`` handle) — the callee runs in a *child* process
    under ``spawn``: module globals are copies, locks are meaningless
    across the boundary.
``spawn``
    a submit to an executor whose concrete type could not be inferred.

Resolution is deliberately *best-effort and unsound* (documented in
``docs/ANALYSIS.md``): direct names, ``self``/``cls`` methods,
single-assignment local types (``x = ClassName(...)``, annotated
parameters, project constructors and annotated return types),
``functools.partial`` and lambdas handed to executors all resolve;
arbitrary higher-order flow and monkey-patching do not.  Unresolved
calls simply produce no edge — the dataflow passes built on top treat
missing edges as "no evidence", never as proof of safety.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "CallSite",
    "LockAcquisition",
    "CallGraph",
    "EXT_PREFIX",
]

#: prefix marking an edge to a function outside the analysed project
EXT_PREFIX = "ext:"

#: executor/pool constructors by spawn kind
_PROCESS_POOLS = {"ProcessPoolExecutor", "Pool"}
_THREAD_POOLS = {"ThreadPoolExecutor"}

#: method names that schedule their first argument on the receiver
_SUBMIT_METHODS = {"submit", "map", "apply_async", "map_async"}

#: marker type for ``multiprocessing.get_context(...)`` handles
_MP_CONTEXT = "<mp-context>"


@dataclass(slots=True)
class FunctionInfo:
    """One project function/method/lambda the graph can resolve to."""

    qualname: str
    module: str
    file: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    is_async: bool
    #: qualified name of the enclosing class, or None for free functions
    cls: str | None = None
    name: str = ""
    lineno: int = 0

    @property
    def params(self) -> list[str]:
        a = self.node.args
        return [
            p.arg
            for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]
        ]


@dataclass(slots=True)
class ClassInfo:
    """A project class: methods, bases (as written), inferred attr types."""

    qualname: str
    module: str
    #: base-class expressions as source text, resolution deferred
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` -> inferred type qualname (from ctor assignments)
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module and its top-level namespace."""

    name: str
    file: str
    tree: ast.Module
    #: import alias -> absolute dotted target ("np" -> "numpy",
    #: "Finding" -> "repro.analysis.findings.Finding")
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level function name -> qualname
    functions: dict[str, str] = field(default_factory=dict)
    #: class name -> qualname
    classes: dict[str, str] = field(default_factory=dict)
    #: module-level names assigned (the global-mutation universe)
    globals: set[str] = field(default_factory=set)
    #: module-level names bound to a lock constructor (threading.Lock()
    #: and friends) — lock identity beyond the "name contains lock"
    #: heuristic
    lock_globals: set[str] = field(default_factory=set)


def module_name_for(
    path: str, is_file: "Callable[[str], bool]" = os.path.isfile
) -> str:
    """Dotted module name for a file, by walking up ``__init__.py``s.

    Files outside any package resolve to their bare stem, which keeps
    single-file test snippets addressable.  ``is_file`` exists so an
    index built from in-memory sources can treat its own items as
    present (packages that are not on disk).
    """
    path = os.path.abspath(path)
    parts = [os.path.splitext(os.path.basename(path))[0]]
    d = os.path.dirname(path)
    while is_file(os.path.join(d, "__init__.py")):
        parts.append(os.path.basename(d))
        parent = os.path.dirname(d)
        if parent == d:  # filesystem root
            break
        d = parent
    if parts[0] == "__init__":
        parts = parts[1:] or parts
    return ".".join(reversed(parts))


def _dotted_text(node: ast.AST) -> str | None:
    """``a.b.c`` text for a pure attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: constructor names that produce a mutual-exclusion object
_LOCK_CTORS = {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}


def _is_lock_ctor(expr: ast.expr) -> bool:
    """``threading.Lock()`` / ``RLock()`` / an mp context's ``.Lock()``."""
    if not isinstance(expr, ast.Call):
        return False
    text = _dotted_text(expr.func)
    return text is not None and text.rsplit(".", 1)[-1] in _LOCK_CTORS


class ProjectIndex:
    """Every module of the analysed project, parsed and indexed once."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: file path -> module name (driver lookups)
        self.by_file: dict[str, str] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls, items: Iterable[tuple[str, str, ast.Module]]
    ) -> "ProjectIndex":
        """Index ``(path, source, tree)`` triples (one per module)."""
        index = cls()
        batch = list(items)
        known = {os.path.abspath(p) for p, _s, _t in batch}

        def is_file(p: str) -> bool:
            return os.path.abspath(p) in known or os.path.isfile(p)

        for path, _source, tree in batch:
            index.add_module(path, tree, is_file=is_file)
        return index

    def add_module(
        self,
        path: str,
        tree: ast.Module,
        is_file: "Callable[[str], bool]" = os.path.isfile,
    ) -> ModuleInfo:
        name = module_name_for(path, is_file)
        mod = ModuleInfo(name=name, file=path, tree=tree)
        self.modules[name] = mod
        self.by_file[os.path.abspath(path)] = name
        self._collect_imports(mod)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, prefix=name, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        mod.globals.add(t.id)
                        if _is_lock_ctor(node.value):
                            mod.lock_globals.add(t.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                mod.globals.add(node.target.id)
                if node.value is not None and _is_lock_ctor(node.value):
                    mod.lock_globals.add(node.target.id)
        return mod

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    mod.imports[a.asname or a.name.split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
                    if a.asname is None and "." in a.name:
                        # `import a.b.c` binds `a`; the chain resolves
                        # lazily through attribute lookups
                        mod.imports[a.name.split(".")[0]] = a.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(mod.name, node)
                for a in node.names:
                    if a.name == "*":
                        continue
                    mod.imports[a.asname or a.name] = (
                        f"{base}.{a.name}" if base else a.name
                    )

    @staticmethod
    def _resolve_from(modname: str, node: ast.ImportFrom) -> str:
        """Absolute dotted base of a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module or ""
        parts = modname.split(".")
        # `from . import x` in package module a.b.c strips `level` tails
        # (the module itself counts as one level)
        base = parts[: len(parts) - node.level]
        if node.module:
            base.append(node.module)
        return ".".join(base)

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        prefix: str,
        cls: str | None,
    ) -> FunctionInfo:
        qual = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qual,
            module=mod.name,
            file=mod.file,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            cls=cls,
            name=node.name,
            lineno=node.lineno,
        )
        self.functions[qual] = info
        if cls is None and prefix == mod.name:
            mod.functions[node.name] = qual
        # nested defs/lambdas are their own nodes, qualified by parent
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._direct_parent_function(node, child) is node:
                    self._add_function(mod, child, prefix=qual, cls=cls)
            elif isinstance(child, ast.Lambda):
                if self._direct_parent_function(node, child) is node:
                    lq = f"{qual}.<lambda:{child.lineno}>"
                    self.functions[lq] = FunctionInfo(
                        qualname=lq,
                        module=mod.name,
                        file=mod.file,
                        node=child,
                        is_async=False,
                        cls=cls,
                        name="<lambda>",
                        lineno=child.lineno,
                    )
        return info

    @staticmethod
    def _direct_parent_function(
        root: ast.AST, target: ast.AST
    ) -> ast.AST | None:
        """The innermost function/lambda enclosing ``target`` under
        ``root`` (``root`` itself when none is nested between)."""
        parent: ast.AST | None = None

        def walk(node: ast.AST, owner: ast.AST) -> None:
            nonlocal parent
            for child in ast.iter_child_nodes(node):
                if child is target:
                    parent = owner
                    return
                next_owner = owner
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    next_owner = child
                walk(child, next_owner)
                if parent is not None:
                    return

        walk(root, root)
        return parent

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.name}.{node.name}"
        ci = ClassInfo(qualname=qual, module=mod.name)
        for b in node.bases:
            text = _dotted_text(b)
            if text:
                ci.bases.append(text)
        self.classes[qual] = ci
        mod.classes[node.name] = qual
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = self._add_function(
                    mod, child, prefix=qual, cls=qual
                )
                ci.methods[child.name] = fi.qualname
        # infer `self.<attr>` types from constructor-call assignments
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign):
                continue
            for t in child.targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    and isinstance(child.value, ast.Call)
                ):
                    typ = self._ctor_type(mod, child.value)
                    if typ is not None:
                        ci.attr_types.setdefault(t.attr, typ)

    def _ctor_type(self, mod: ModuleInfo, call: ast.Call) -> str | None:
        """Type qualname produced by a constructor-ish call, if known."""
        text = _dotted_text(call.func)
        if text is None:
            return None
        resolved = self.resolve_name(mod, text)
        if resolved is not None and resolved in self.classes:
            return resolved
        ext = self.external_name(mod, text)
        if ext is not None:
            tail = ext.rsplit(".", 1)[-1]
            if tail in _PROCESS_POOLS | _THREAD_POOLS | {"Process", "Thread"}:
                return ext
            if ext in ("multiprocessing.get_context",):
                return _MP_CONTEXT
        # project function with an annotated class return type
        if resolved is not None and resolved in self.functions:
            ret = getattr(self.functions[resolved].node, "returns", None)
            if ret is not None:
                rtext = _dotted_text(ret) or (
                    ret.value if isinstance(ret, ast.Constant) else None
                )
                if isinstance(rtext, str):
                    rmod = self.modules.get(self.functions[resolved].module)
                    if rmod is not None:
                        typ = self.resolve_name(rmod, rtext)
                        if typ in self.classes:
                            return typ
                        etyp = self.external_name(rmod, rtext)
                        if etyp and etyp.rsplit(".", 1)[-1] in (
                            _PROCESS_POOLS | _THREAD_POOLS
                        ):
                            return etyp
        return None

    # -- lookup ------------------------------------------------------------

    def resolve_name(self, mod: ModuleInfo, dotted: str) -> str | None:
        """Resolve ``dotted`` (as written in ``mod``) to a project
        function/class qualname, or None."""
        head, _, rest = dotted.partition(".")
        # locally defined?
        candidates: list[str] = []
        if head in mod.functions:
            candidates.append(mod.functions[head])
        if head in mod.classes:
            candidates.append(mod.classes[head])
        if head in mod.imports:
            candidates.append(mod.imports[head])
        candidates.append(f"{mod.name}.{head}" if rest else "")
        for base in candidates:
            if not base:
                continue
            qual = f"{base}.{rest}" if rest else base
            hit = self._project_qual(qual)
            if hit is not None:
                return hit
        return None

    def _project_qual(self, qual: str) -> str | None:
        """Canonical project qualname for ``qual``, following module
        attribute chains (``repro.arch.graph.np_columns``)."""
        if qual in self.functions or qual in self.classes:
            return qual
        # a module attr: "pkg.mod.attr" where "pkg.mod" is indexed
        base, _, attr = qual.rpartition(".")
        if not base or not attr:
            return None
        m = self.modules.get(base)
        if m is not None:
            if attr in m.functions:
                return m.functions[attr]
            if attr in m.classes:
                return m.classes[attr]
            # re-export: follow one import hop
            target = m.imports.get(attr)
            if target is not None and target != qual:
                return self._project_qual(target)
        return None

    def external_name(self, mod: ModuleInfo, dotted: str) -> str | None:
        """Absolute external dotted name for ``dotted``, or None if the
        name is project-internal/unknown."""
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head, head)
        full = f"{target}.{rest}" if rest else target
        if self._project_qual(full) is not None:
            return None
        if full.split(".")[0] in self.modules:
            return None
        return full

    def method_on(self, type_qual: str, method: str) -> str | None:
        """Resolve ``method`` on project class ``type_qual`` (walking
        same-project base classes)."""
        seen: set[str] = set()
        stack = [type_qual]
        while stack:
            t = stack.pop()
            if t in seen:
                continue
            seen.add(t)
            ci = self.classes.get(t)
            if ci is None:
                continue
            if method in ci.methods:
                return ci.methods[method]
            base_mod = self.modules[ci.module]
            for b in ci.bases:
                resolved = self.resolve_name(base_mod, b)
                if resolved is not None:
                    stack.append(resolved)
        return None


# ---------------------------------------------------------------------------
# call-site extraction


@dataclass(frozen=True, slots=True)
class LockAcquisition:
    """One ``with <lock>:`` entry and the locks already held there."""

    func: str
    lock: str
    held: tuple[str, ...]
    file: str
    lineno: int


@dataclass(frozen=True, slots=True)
class CallSite:
    """One resolved edge: ``caller`` invokes/schedules ``callee``."""

    caller: str
    #: project qualname, or ``ext:<dotted>`` for external targets
    callee: str
    kind: str  # call | task | spawn-thread | spawn-process | spawn
    file: str
    lineno: int
    col: int
    #: True when the call site sits under an ``await`` expression
    awaited: bool = False
    #: lock names held (outermost first) at this call site
    locks: tuple[str, ...] = ()

    @property
    def external(self) -> bool:
        return self.callee.startswith(EXT_PREFIX)

    @property
    def target(self) -> str:
        """Callee with the ``ext:`` prefix stripped."""
        return self.callee[len(EXT_PREFIX):] if self.external else self.callee


class CallGraph:
    """Typed, project-wide call graph built from a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: list[CallSite] = []
        #: every ``with <lock>:`` acquisition, per function
        self.acquisitions: dict[str, list[LockAcquisition]] = {}
        self._out: dict[str, list[CallSite]] = {}
        self._in: dict[str, list[CallSite]] = {}

    @classmethod
    def build(cls, index: ProjectIndex) -> "CallGraph":
        graph = cls(index)
        for info in list(index.functions.values()):
            _FunctionResolver(graph, info).run()
        for site in graph.edges:
            graph._out.setdefault(site.caller, []).append(site)
            graph._in.setdefault(site.callee, []).append(site)
        return graph

    # -- queries -----------------------------------------------------------

    def callees(self, qual: str) -> list[CallSite]:
        return self._out.get(qual, [])

    def callers(self, qual: str) -> list[CallSite]:
        return self._in.get(qual, [])

    def reachable(
        self,
        roots: Iterable[str],
        *,
        kinds: frozenset[str] | None = None,
    ) -> set[str]:
        """Project functions reachable from ``roots`` along edges whose
        kind is in ``kinds`` (None = every kind)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.index.functions]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            for site in self.callees(q):
                if kinds is not None and site.kind not in kinds:
                    continue
                if not site.external and site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def spawn_process_roots(self) -> set[str]:
        """Project functions that are entry points of a child process."""
        return {
            s.callee
            for s in self.edges
            if s.kind == "spawn-process" and not s.external
        }

    def shortest_chain(
        self, start: str, goal: "str | set[str]"
    ) -> list[CallSite]:
        """BFS chain of call-kind edges from ``start`` to ``goal``
        (a callee qualname or a set of them); empty when unreachable."""
        goals = {goal} if isinstance(goal, str) else set(goal)
        prev: dict[str, CallSite] = {}
        seen = {start}
        queue = [start]
        while queue:
            q = queue.pop(0)
            for site in self.callees(q):
                key = site.callee
                if key in seen or site.kind != "call":
                    continue
                seen.add(key)
                prev[key] = site
                if key in goals:
                    chain: list[CallSite] = []
                    cur = key
                    while cur != start:
                        chain.append(prev[cur])
                        cur = prev[cur].caller
                    return list(reversed(chain))
                if not site.external:
                    queue.append(key)
        return []


class _FunctionResolver:
    """Resolve every call site inside one function body."""

    def __init__(self, graph: CallGraph, info: FunctionInfo) -> None:
        self.graph = graph
        self.index = graph.index
        self.info = info
        self.mod = self.index.modules[info.module]
        #: local name -> project function qualname or ext:name (callables)
        self.func_env: dict[str, str] = {}
        #: local name -> type qualname (project class or marker external)
        self.type_env: dict[str, str] = {}
        self._seed_envs()

    # -- environments ------------------------------------------------------

    def _seed_envs(self) -> None:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            return
        # annotated parameters give types
        a = node.args
        for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
            if p.annotation is not None:
                text = _dotted_text(p.annotation)
                if text:
                    t = self.index.resolve_name(self.mod, text)
                    if t in self.index.classes:
                        self.type_env[p.arg] = t
        # nested defs are local callables
        for child in node.body:
            self._scan_stmt_env(child)
        for child in ast.walk(node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not node
                and self.index._direct_parent_function(node, child) is node
            ):
                self.func_env[child.name] = f"{self.info.qualname}.{child.name}"

    def _scan_stmt_env(self, stmt: ast.stmt) -> None:
        """Flow-insensitive env from simple-name assignments (including
        ones nested under if/with/try bodies)."""
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if not names:
                continue
            v = node.value
            ref = self._func_ref(v, record_lambda=False)
            if ref is not None:
                for n in names:
                    self.func_env.setdefault(n, ref)
                continue
            if isinstance(v, ast.Call):
                typ = self.index._ctor_type(self.mod, v)
                if typ is not None:
                    for n in names:
                        # two branches can bind incompatible pool types;
                        # first write wins, spawn kind degrades to "spawn"
                        # when a later conflicting bind is seen
                        if (
                            n in self.type_env
                            and self.type_env[n] != typ
                        ):
                            self.type_env[n] = "<ambiguous>"
                        else:
                            self.type_env.setdefault(n, typ)

    # -- function references ----------------------------------------------

    def _func_ref(
        self, node: ast.AST, *, record_lambda: bool = True
    ) -> str | None:
        """Resolve an expression *referencing* a callable (not calling
        it): names, attributes, ``functools.partial``, lambdas."""
        if isinstance(node, ast.Lambda):
            lq = f"{self.info.qualname}.<lambda:{node.lineno}>"
            return lq if lq in self.index.functions else None
        if isinstance(node, ast.Call):
            # partial(f, ...) forwards to f
            text = _dotted_text(node.func)
            if text is not None:
                ext = self.index.external_name(self.mod, text)
                if (ext == "functools.partial" or text == "partial") and (
                    node.args
                ):
                    return self._func_ref(node.args[0])
            return None
        if isinstance(node, ast.Name):
            if node.id in self.func_env:
                return self.func_env[node.id]
            resolved = self.index.resolve_name(self.mod, node.id)
            if resolved in self.index.functions:
                return resolved
            if resolved in self.index.classes:
                ctor = self.index.method_on(resolved, "__init__")
                return ctor
            ext = self.index.external_name(self.mod, node.id)
            if ext is not None and node.id in self.mod.imports:
                return EXT_PREFIX + ext
            return None
        if isinstance(node, ast.Attribute):
            text = _dotted_text(node)
            if text is None:
                return None
            # self.method / typed-local.method
            root = text.split(".")[0]
            if root == "self" and self.info.cls is not None:
                return self._self_attr_ref(text)
            if root in self.type_env:
                t = self.type_env[root]
                if t in self.index.classes and text.count(".") == 1:
                    return self.index.method_on(t, text.split(".")[1])
            resolved = self.index.resolve_name(self.mod, text)
            if resolved in self.index.functions:
                return resolved
            if resolved in self.index.classes:
                return self.index.method_on(resolved, "__init__")
            ext = self.index.external_name(self.mod, text)
            if ext is not None:
                return EXT_PREFIX + ext
        return None

    def _self_attr_ref(self, dotted: str) -> str | None:
        """Resolve ``self.x`` / ``self.x.y`` through methods and the
        class's inferred attribute types."""
        assert self.info.cls is not None
        parts = dotted.split(".")
        if len(parts) == 2:
            return self.index.method_on(self.info.cls, parts[1])
        if len(parts) == 3:
            ci = self.index.classes.get(self.info.cls)
            if ci is not None:
                t = ci.attr_types.get(parts[1])
                if t in self.index.classes:
                    return self.index.method_on(t, parts[2])
        return None

    def _receiver_type(self, node: ast.AST) -> str | None:
        """Best-effort type of a method call's receiver expression."""
        if isinstance(node, ast.Name):
            t = self.type_env.get(node.id)
            if t is not None:
                return t
            resolved = self.index.resolve_name(self.mod, node.id)
            if resolved in self.index.classes:
                return resolved
            ext = self.index.external_name(self.mod, node.id)
            return ext
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and self.info.cls is not None
            ):
                ci = self.index.classes.get(self.info.cls)
                if ci is not None:
                    return ci.attr_types.get(node.attr)
            text = _dotted_text(node)
            if text is not None:
                resolved = self.index.resolve_name(self.mod, text)
                if resolved in self.index.classes:
                    return resolved
        if isinstance(node, ast.Call):
            return self.index._ctor_type(self.mod, node)
        return None

    # -- traversal ---------------------------------------------------------

    def run(self) -> None:
        node = self.info.node
        body: list[ast.stmt] | ast.expr
        if isinstance(node, ast.Lambda):
            self._walk_expr(node.body, awaited=False, locks=())
            return
        for stmt in node.body:
            self._walk_stmt(stmt, locks=())
        # decorators run at definition time in the defining module
        for dec in node.decorator_list:
            self._visit_call_like(dec, awaited=False, locks=())

    def _walk_stmt(self, stmt: ast.stmt, locks: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested function bodies resolve as their own callers
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new_locks = locks
            for item in stmt.items:
                self._walk_expr(item.context_expr, awaited=False, locks=locks)
                lock_id = self.lock_id(item.context_expr)
                if lock_id is not None:
                    self.graph.acquisitions.setdefault(
                        self.info.qualname, []
                    ).append(
                        LockAcquisition(
                            func=self.info.qualname,
                            lock=lock_id,
                            held=new_locks,
                            file=self.info.file,
                            lineno=stmt.lineno,
                        )
                    )
                    new_locks = new_locks + (lock_id,)
            for s in stmt.body:
                self._walk_stmt(s, new_locks)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._walk_expr(child, awaited=False, locks=locks)
            elif isinstance(child, ast.stmt):
                self._walk_stmt(child, locks)
            else:
                # arguments/keywords/handlers etc.: descend generically
                for sub in ast.walk(child):
                    if isinstance(sub, ast.stmt):
                        self._walk_stmt(sub, locks)
                        break
                else:
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.expr):
                            self._walk_expr(sub, awaited=False, locks=locks)
                if isinstance(child, (ast.excepthandler,)):
                    for s in child.body:
                        self._walk_stmt(s, locks)

    def _walk_expr(
        self, expr: ast.expr, *, awaited: bool, locks: tuple[str, ...]
    ) -> None:
        if isinstance(expr, ast.Await):
            self._walk_expr(expr.value, awaited=True, locks=locks)
            return
        if isinstance(expr, ast.Call):
            self._visit_call_like(expr, awaited=awaited, locks=locks)
            return
        if isinstance(expr, (ast.Lambda,)):
            return  # lambda bodies are their own callers
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._walk_expr(child, awaited=False, locks=locks)
            else:
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self._walk_expr(sub, awaited=False, locks=locks)

    # -- lock identity ------------------------------------------------------

    def lock_id(self, expr: ast.expr) -> str | None:
        """Canonical cross-function name for a lock-ish ``with`` context.

        ``_LOCK`` (module global) -> ``module._LOCK``; ``self._lock`` ->
        ``module.Class._lock``; a typed local's attr -> its class.  The
        "is it a lock" test is the same text heuristic RPR002 uses.
        """
        text = _dotted_text(expr)
        if text is None:
            return None
        parts = text.split(".")
        lockish = "lock" in text.lower() or (
            parts[0] in self.mod.lock_globals and len(parts) == 1
        )
        if not lockish:
            return None
        if parts[0] == "self" and self.info.cls is not None and len(parts) == 2:
            return f"{self.info.cls}.{parts[1]}"
        if len(parts) == 1:
            if parts[0] in self.mod.globals:
                return f"{self.mod.name}.{parts[0]}"
            return f"{self.info.qualname}.{parts[0]}"
        root = parts[0]
        t = self.type_env.get(root)
        if t is not None and t in self.index.classes and len(parts) == 2:
            return f"{t}.{parts[1]}"
        if root in self.mod.globals:
            return f"{self.mod.name}.{text}"
        return f"{self.mod.name}:{text}"

    # -- call classification -----------------------------------------------

    def _emit(
        self,
        node: ast.AST,
        callee: str | None,
        kind: str,
        *,
        awaited: bool = False,
        locks: tuple[str, ...] = (),
    ) -> None:
        if callee is None:
            return
        self.graph.edges.append(
            CallSite(
                caller=self.info.qualname,
                callee=callee,
                kind=kind,
                file=self.info.file,
                lineno=getattr(node, "lineno", self.info.lineno),
                col=getattr(node, "col_offset", 0),
                awaited=awaited,
                locks=locks,
            )
        )

    def _spawn_kind_for_type(self, t: str | None) -> str:
        if t is None or t == "<ambiguous>":
            return "spawn"
        tail = t.rsplit(".", 1)[-1]
        if tail in _PROCESS_POOLS:
            return "spawn-process"
        if tail in _THREAD_POOLS:
            return "spawn-thread"
        return "spawn"

    def _visit_call_like(
        self, node: ast.expr, *, awaited: bool, locks: tuple[str, ...]
    ) -> None:
        if not isinstance(node, ast.Call):
            # bare decorator reference: @functools.wraps(f) handled via
            # Call branch; @property etc. produce no edge
            return
        func = node.func
        handled_args: set[int] = set()
        text = _dotted_text(func)
        ext = self.index.external_name(self.mod, text) if text else None

        # executor.submit(f, ...) / executor.map(f, ...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and node.args
        ):
            rtype = self._receiver_type(func.value)
            kind = self._spawn_kind_for_type(rtype)
            ref = self._func_ref(node.args[0])
            if ref is not None:
                self._emit(node, ref, kind, locks=locks)
                handled_args.add(0)
        # asyncio.to_thread(f, ...) / loop.run_in_executor(ex, f, ...)
        if ext == "asyncio.to_thread" and node.args:
            self._emit(node, self._func_ref(node.args[0]), "spawn-thread",
                       locks=locks)
            handled_args.add(0)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "run_in_executor"
            and len(node.args) >= 2
        ):
            self._emit(node, self._func_ref(node.args[1]), "spawn-thread",
                       locks=locks)
            handled_args.add(1)
        # asyncio.create_task(coro()) / ensure_future
        if ext in ("asyncio.create_task", "asyncio.ensure_future") and (
            node.args
        ):
            inner = node.args[0]
            if isinstance(inner, ast.Call):
                ref = self._func_ref(inner.func)
                self._emit(node, ref, "task", locks=locks)
        # Thread(target=f) / Process(target=f) / pool(initializer=f)
        ctor_type = None
        if text is not None:
            resolved = self.index.resolve_name(self.mod, text)
            if resolved in self.index.classes:
                ctor_type = resolved
        tail = (ext or text or "").rsplit(".", 1)[-1]
        recv_t = (
            self._receiver_type(func.value)
            if isinstance(func, ast.Attribute)
            else None
        )
        is_thread_ctor = tail == "Thread" and ext is not None
        is_process_ctor = (
            (tail == "Process" and (ext is not None or recv_t == _MP_CONTEXT))
        )
        is_pool_ctor = tail in _PROCESS_POOLS | _THREAD_POOLS and (
            ext is not None or recv_t == _MP_CONTEXT
        )
        if is_thread_ctor or is_process_ctor or is_pool_ctor:
            spawn = (
                "spawn-thread"
                if is_thread_ctor or tail in _THREAD_POOLS
                else "spawn-process"
            )
            for kw in node.keywords:
                if kw.arg in ("target", "initializer"):
                    self._emit(node, self._func_ref(kw.value), spawn,
                               locks=locks)
        # atexit.register(f): runs in-process at exit
        if ext == "atexit.register" and node.args:
            self._emit(node, self._func_ref(node.args[0]), "call",
                       locks=locks)
            handled_args.add(0)

        # the ordinary call edge for the callee expression itself
        if not (is_thread_ctor or is_process_ctor or is_pool_ctor):
            ref = self._func_ref(func)
            if ref is not None and not (
                isinstance(func, ast.Attribute)
                and func.attr in _SUBMIT_METHODS
            ):
                self._emit(node, ref, "call", awaited=awaited, locks=locks)
        elif ctor_type is not None:
            ctor = self.index.method_on(ctor_type, "__init__")
            self._emit(node, ctor, "call", locks=locks)

        # descend into arguments (skipping ones consumed as spawn refs)
        for i, a in enumerate(node.args):
            if i in handled_args and not isinstance(a, ast.Call):
                continue
            self._walk_expr(a, awaited=False, locks=locks)
        for kw in node.keywords:
            self._walk_expr(kw.value, awaited=False, locks=locks)
        if isinstance(func, ast.Attribute):
            self._walk_expr(func.value, awaited=False, locks=locks)


def iter_calls(
    node: ast.AST,
) -> Iterator[ast.Call]:  # pragma: no cover - debugging helper
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub
