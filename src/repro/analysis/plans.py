"""Serialized routing artifacts: PIP-plan and template-set files.

Routers *plan* (ordered ``(row, col, from, to)`` PIP lists) and the
template machinery *describes* (value sequences); persisting either lets
a deployment review, diff and lint routes before anything touches a
device.  This module defines the two JSON formats ``repro analyze``
understands, plus a seeded random-walk corpus generator used by the E19
analysis-throughput benchmark and the test fixtures.

Plan file::

    {"format": "repro-plan", "version": 1, "part": "XCV50",
     "plans": [{"net": "n0", "start": [5, 7],
                "pips": [[5, 7, "S1_YQ", "OUT1"], ...]}, ...]}

Template-set file::

    {"format": "repro-templates", "version": 1, "part": "XCV50",
     "start": [5, 7], "displacement": [1, 2],
     "templates": [["OUTMUX", "EAST1", "NORTH1", "CLBIN"], ...]}

Wire and template values serialize as their stable display names; plain
ints are accepted on load for compactness.
"""

from __future__ import annotations

import json
import random
from typing import Any, Sequence

from .. import errors
from ..arch import wires
from ..arch.templates import TemplateValue
from ..arch.virtex import VirtexArch
from ..device.fabric import Device
from ..routers.base import PlanPip

__all__ = [
    "PLAN_FORMAT",
    "TEMPLATE_FORMAT",
    "dump_plans",
    "load_plans",
    "dump_template_set",
    "load_template_set",
    "random_plan_corpus",
    "sniff_artifact",
]

PLAN_FORMAT = "repro-plan"
TEMPLATE_FORMAT = "repro-templates"
ARTIFACT_VERSION = 1


def _wire_out(name: int) -> str:
    return wires.wire_name(name)


def _wire_in(value: Any) -> int:
    """Accept a wire as display name or raw name int."""
    if isinstance(value, bool):  # bool is an int subclass; reject it
        raise errors.JRouteError(f"not a wire name: {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return wires.parse_wire_name(value)
        except KeyError:
            raise errors.JRouteError(f"unknown wire name {value!r}") from None
    raise errors.JRouteError(f"not a wire name: {value!r}")


def dump_plans(
    part: str,
    plans: Sequence[tuple[str, Sequence[PlanPip]]],
) -> str:
    """Serialize named plans to the plan-file JSON text."""
    body = {
        "format": PLAN_FORMAT,
        "version": ARTIFACT_VERSION,
        "part": part,
        "plans": [
            {
                "net": net,
                "pips": [
                    [r, c, _wire_out(f), _wire_out(t)] for r, c, f, t in plan
                ],
            }
            for net, plan in plans
        ],
    }
    return json.dumps(body, indent=1)


def load_plans(text: str) -> tuple[str, list[tuple[str, list[PlanPip]]]]:
    """Parse a plan file; returns ``(part, [(net, plan), ...])``."""
    body = json.loads(text)
    if not isinstance(body, dict) or body.get("format") != PLAN_FORMAT:
        raise errors.JRouteError("not a repro-plan file")
    if body.get("version") != ARTIFACT_VERSION:
        raise errors.JRouteError(
            f"unsupported plan-file version {body.get('version')!r}"
        )
    out: list[tuple[str, list[PlanPip]]] = []
    for i, entry in enumerate(body.get("plans", [])):
        net = str(entry.get("net", i))
        plan: list[PlanPip] = []
        for step in entry.get("pips", []):
            r, c, f, t = step
            plan.append((int(r), int(c), _wire_in(f), _wire_in(t)))
        out.append((net, plan))
    return str(body.get("part", "XCV50")), out


def dump_template_set(
    part: str,
    templates: Sequence[Sequence[TemplateValue]],
    *,
    start: tuple[int, int] | None = None,
    displacement: tuple[int, int] | None = None,
) -> str:
    """Serialize a candidate template set to JSON text."""
    body: dict[str, Any] = {
        "format": TEMPLATE_FORMAT,
        "version": ARTIFACT_VERSION,
        "part": part,
        "templates": [
            [TemplateValue(v).name for v in tpl] for tpl in templates
        ],
    }
    if start is not None:
        body["start"] = list(start)
    if displacement is not None:
        body["displacement"] = list(displacement)
    return json.dumps(body, indent=1)


def load_template_set(
    text: str,
) -> tuple[str, list[list[TemplateValue]], dict[str, Any]]:
    """Parse a template-set file.

    Returns ``(part, templates, extras)`` where ``extras`` holds the
    optional ``start``/``displacement`` metadata.
    """
    body = json.loads(text)
    if not isinstance(body, dict) or body.get("format") != TEMPLATE_FORMAT:
        raise errors.JRouteError("not a repro-templates file")
    if body.get("version") != ARTIFACT_VERSION:
        raise errors.JRouteError(
            f"unsupported template-file version {body.get('version')!r}"
        )
    templates: list[list[TemplateValue]] = []
    for tpl in body.get("templates", []):
        values: list[TemplateValue] = []
        for v in tpl:
            if isinstance(v, str):
                try:
                    values.append(TemplateValue[v])
                except KeyError:
                    raise errors.JRouteError(
                        f"unknown template value {v!r}"
                    ) from None
            else:
                values.append(TemplateValue(int(v)))
        templates.append(values)
    extras = {
        k: tuple(body[k]) for k in ("start", "displacement") if k in body
    }
    return str(body.get("part", "XCV50")), templates, extras


def sniff_artifact(text: str) -> str | None:
    """Classify artifact text: "plan", "templates", "wal", "checkpoint".

    Returns None when the text matches no known artifact format.  WALs
    are line-oriented, so only the first line needs to parse.
    """
    head = text.lstrip()[:1]
    if head != "{":
        return None
    first_line = text.splitlines()[0] if text else ""
    for candidate in (first_line, text):
        try:
            body = json.loads(candidate)
        except ValueError:
            continue
        if not isinstance(body, dict):
            continue
        if body.get("format") == PLAN_FORMAT:
            return "plan"
        if body.get("format") == TEMPLATE_FORMAT:
            return "templates"
        if "wal" in body and candidate is first_line:
            return "wal"
        if "ckpt" in body:
            return "checkpoint"
    return None


# -- corpus generation ----------------------------------------------------------


def random_plan_corpus(
    part: str,
    *,
    n_plans: int,
    steps: int = 12,
    seed: int = 0,
    conflict_rate: float = 0.0,
) -> str:
    """Generate a serialized corpus of fabric-legal random-walk plans.

    Walks the real PIP graph (:meth:`Device.fanout_pips`) from random
    slice outputs, never driving a wire twice, so the corpus is legal by
    construction — except that a ``conflict_rate`` fraction of plans get
    one step re-driven from a second source, seeding known
    drive-conflicts for detector benchmarks.  Deterministic per seed.
    """
    rng = random.Random(seed)
    device = Device(part)
    arch = device.arch
    driven: dict[int, int] = {}  # canon_to -> canon_from (corpus-wide)
    plans: list[tuple[str, list[PlanPip]]] = []
    conflict_pips: list[PlanPip] = []
    for p in range(n_plans):
        row = rng.randrange(arch.rows)
        col = rng.randrange(arch.cols)
        src = arch.canonicalize(
            row, col, wires.OUT[rng.randrange(wires.N_OUT)]
        )
        assert src is not None  # OUT wires exist at every tile
        plan: list[PlanPip] = []
        cursor = src
        for _ in range(steps):
            options = [
                pip
                for pip in device.fanout_pips(cursor)
                if pip[4] not in driven and pip[4] != src
            ]
            if not options:
                break
            r, c, f, t, canon_to = options[rng.randrange(len(options))]
            plan.append((r, c, f, t))
            driven[canon_to] = cursor
            cursor = canon_to
        if len(plan) >= 2 and rng.random() < conflict_rate:
            # re-drive this plan's last wire from a different source:
            # a deliberate, detectable drive conflict
            r, c, f, t = plan[-1]
            canon_to = arch.canonicalize(r, c, t)
            assert canon_to is not None
            prev_from = driven[canon_to]
            for r2, c2, f2, t2, canon_from in device.fanin_pips(canon_to):
                if canon_from != prev_from:
                    conflict_pips.append((r2, c2, f2, t2))
                    break
        plans.append((f"n{p}", plan))
    if conflict_pips:
        plans.append(("conflict-seed", conflict_pips))
    return dump_plans(part, plans)
