"""Static analysis for routing artifacts and for our own source.

Two engines, one finding format (:mod:`repro.analysis.findings`):

* :mod:`repro.analysis.routelint` — Layer 1, fabric-aware validation of
  Paths, templates, port maps, serialized PIP plans, WALs and
  checkpoints against the architecture model, with no routing runs;
* :mod:`repro.analysis.codelint` — Layer 2, an AST pass over the source
  tree detecting the concurrency-hazard bug classes previous PRs fixed;
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.cfg` /
  :mod:`repro.analysis.dataflow` — Layer 3, whole-program call graph,
  per-function control-flow graphs and the interprocedural dataflow
  passes (transitive blocking, lock ordering, spawn reachability,
  resource paths) behind rules RPR009-RPR012.

``repro analyze`` (see :mod:`repro.cli`) drives all of them; CI runs it
with ``--strict`` as a merge gate and ``--diff`` on pull requests.  The
catalog of rule ids lives in :mod:`repro.analysis.rules` and is
documented in ``docs/ANALYSIS.md``.
"""

from .findings import SCHEMA_VERSION, Finding, Report, Severity
from .rules import RULES, Rule, artifact_rules, code_rules, rule
from .driver import analyze_paths, default_target, filter_rules

__all__ = [
    "SCHEMA_VERSION",
    "Finding",
    "Report",
    "Severity",
    "RULES",
    "Rule",
    "rule",
    "artifact_rules",
    "code_rules",
    "analyze_paths",
    "default_target",
    "filter_rules",
]
