"""Per-function control-flow graphs for the dataflow passes.

A :class:`CFG` is statement-granular: every simple statement, loop/if
test, and ``with`` header is one node; virtual ``entry``/``exit`` nodes
bracket the function.  That granularity is all the passes need (lockset,
resource-release paths) while keeping construction simple enough to be
obviously correct — the routing analogy is deliberate: a CFG is just a
routing graph over statements, and a leak is an unreachable "release"
target on some path to the exit.

Shapes handled: ``if``/``elif``/``else``, ``while``/``for`` (+
``break``/``continue``/loop-``else``), ``with``, ``try``/``except``/
``else``/``finally`` (every try-body node may branch to every handler;
``return``/``raise``/``break``/``continue`` inside a ``try`` route
*through* enclosing ``finally`` blocks before leaving), ``match``,
``return``/``raise``, and the async variants.

Known unsoundness (documented in ``docs/ANALYSIS.md``): implicit
exceptions (a ``KeyError`` from any expression) only create edges to
handlers when the statement is lexically inside a ``try`` body — a call
outside any ``try`` is assumed to return.  This keeps path-based rules
like RPR012 actionable instead of flagging every statement pair.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "Node"]


@dataclass(slots=True)
class Node:
    """One CFG node: a statement (or virtual marker) plus successors."""

    id: int
    stmt: ast.stmt | None  # None for entry/exit/join markers
    label: str = ""
    succs: set[int] = field(default_factory=set)


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")

    # -- construction ------------------------------------------------------

    def _new(self, stmt: ast.stmt | None, label: str = "") -> int:
        n = Node(id=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(n)
        return n.id

    def _edge(self, a: int, b: int) -> None:
        self.nodes[a].succs.add(b)

    @classmethod
    def build(
        cls, func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    ) -> "CFG":
        cfg = cls()
        if isinstance(func, ast.Lambda):
            n = cfg._new(None, "lambda-body")
            cfg._edge(cfg.entry, n)
            cfg._edge(n, cfg.exit)
            return cfg
        builder = _Builder(cfg)
        first = builder.seq(func.body, cfg.exit)
        cfg._edge(cfg.entry, first)
        return cfg

    # -- queries -----------------------------------------------------------

    def statements(self) -> list[Node]:
        return [n for n in self.nodes if n.stmt is not None]

    def node_for(self, stmt: ast.stmt) -> int | None:
        for n in self.nodes:
            if n.stmt is stmt:
                return n.id
        return None

    def paths_escape(
        self,
        start: int,
        *,
        stops: "set[int]",
    ) -> bool:
        """True when some path from ``start``'s successors reaches
        ``exit`` without passing through a node in ``stops``."""
        seen: set[int] = set()
        stack = [s for s in self.nodes[start].succs]
        while stack:
            n = stack.pop()
            if n in seen or n in stops:
                continue
            if n == self.exit:
                return True
            seen.add(n)
            stack.extend(self.nodes[n].succs)
        return False


class _Builder:
    """Recursive-descent CFG builder.

    ``seq(stmts, succ)`` wires a statement list so its last statement
    falls through to ``succ`` and returns the entry node id.  Loop and
    finally context is carried on explicit stacks so ``break``/
    ``continue``/``return`` resolve to the right targets, routed through
    any enclosing ``finally`` bodies first.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: (break_target, continue_target) per enclosing loop
        self.loops: list[tuple[int, int]] = []
        #: entry of each enclosing finally body (innermost last), plus
        #: the join node collecting its continuations
        self.finallys: list[tuple[list[ast.stmt], int]] = []

    # A jump (return/raise/break/continue) must execute enclosing
    # finally bodies innermost-out before reaching its target.  Each
    # finally body is rebuilt per jump target — statement nodes are
    # duplicated, which over-counts nodes slightly but keeps every path
    # explicit (the passes match statements by AST identity, and
    # `node_for` returning the first copy is fine because every copy
    # has the same successors modulo continuation).
    def _through_finallys(self, target: int, depth: int | None = None) -> int:
        d = len(self.finallys) if depth is None else depth
        for body, _join in reversed(self.finallys[:d]):
            target = self.seq(body, target)
        return target

    def seq(self, stmts: list[ast.stmt], succ: int) -> int:
        entry = succ
        for stmt in reversed(stmts):
            entry = self.stmt(stmt, entry)
        return entry

    def stmt(self, s: ast.stmt, succ: int) -> int:
        cfg = self.cfg
        if isinstance(s, (ast.If,)):
            test = cfg._new(s, "if")
            then_entry = self.seq(s.body, succ)
            cfg._edge(test, then_entry)
            if s.orelse:
                cfg._edge(test, self.seq(s.orelse, succ))
            else:
                cfg._edge(test, succ)
            return test
        if isinstance(s, (ast.While,)):
            test = cfg._new(s, "while")
            self.loops.append((succ, test))
            body_entry = self.seq(s.body, test)
            self.loops.pop()
            cfg._edge(test, body_entry)
            if s.orelse:
                cfg._edge(test, self.seq(s.orelse, succ))
            else:
                cfg._edge(test, succ)
            return test
        if isinstance(s, (ast.For, ast.AsyncFor)):
            head = cfg._new(s, "for")
            self.loops.append((succ, head))
            body_entry = self.seq(s.body, head)
            self.loops.pop()
            cfg._edge(head, body_entry)
            if s.orelse:
                cfg._edge(head, self.seq(s.orelse, succ))
            else:
                cfg._edge(head, succ)
            return head
        if isinstance(s, (ast.With, ast.AsyncWith)):
            head = cfg._new(s, "with")
            cfg._edge(head, self.seq(s.body, succ))
            return head
        if isinstance(s, ast.Try):
            return self._try(s, succ)
        if isinstance(s, ast.Match):
            head = cfg._new(s, "match")
            matched = False
            for case in s.cases:
                cfg._edge(head, self.seq(case.body, succ))
                if _irrefutable(case):
                    matched = True
            if not matched:
                cfg._edge(head, succ)
            return head
        if isinstance(s, ast.Return):
            n = cfg._new(s, "return")
            cfg._edge(n, self._through_finallys(cfg.exit))
            return n
        if isinstance(s, ast.Raise):
            n = cfg._new(s, "raise")
            cfg._edge(n, self._through_finallys(cfg.exit))
            return n
        if isinstance(s, ast.Break):
            n = cfg._new(s, "break")
            if self.loops:
                cfg._edge(n, self._through_finallys(self.loops[-1][0]))
            else:  # malformed code; fall through
                cfg._edge(n, succ)
            return n
        if isinstance(s, ast.Continue):
            n = cfg._new(s, "continue")
            if self.loops:
                cfg._edge(n, self._through_finallys(self.loops[-1][1]))
            else:
                cfg._edge(n, succ)
            return n
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # a nested definition is one opaque statement here
            n = cfg._new(s, "def")
            cfg._edge(n, succ)
            return n
        n = cfg._new(s, type(s).__name__.lower())
        cfg._edge(n, succ)
        return n

    def _try(self, s: ast.Try, succ: int) -> int:
        cfg = self.cfg
        if s.finalbody:
            # the normal continuation runs the finally body first
            normal_succ = self.seq(s.finalbody, succ)
            # jumps out of the try body replay the finally too: push it
            self.finallys.append((s.finalbody, normal_succ))
        else:
            normal_succ = succ

        handler_entries: list[int] = []
        for handler in s.handlers:
            handler_entries.append(self.seq(handler.body, normal_succ))

        else_entry = (
            self.seq(s.orelse, normal_succ) if s.orelse else normal_succ
        )
        body_entry = self.seq(s.body, else_entry)

        if s.finalbody:
            self.finallys.pop()

        # every node lexically in the try body may raise into every
        # handler (and, with no handler, through finally to the exit)
        body_nodes = self._nodes_of(s.body)
        for nid in body_nodes:
            for h in handler_entries:
                cfg._edge(nid, h)
            if not handler_entries and s.finalbody:
                # exception propagates, but finally still runs
                exc_path = self.seq(s.finalbody, cfg.exit)
                cfg._edge(nid, exc_path)
        return body_entry

    def _nodes_of(self, stmts: list[ast.stmt]) -> list[int]:
        """CFG node ids whose statement is lexically one of ``stmts``
        or nested under one (loops/ifs inside the try body)."""
        wanted: set[ast.stmt] = set()
        for top in stmts:
            for sub in ast.walk(top):
                if isinstance(sub, ast.stmt):
                    wanted.add(sub)
        return [
            n.id
            for n in self.cfg.nodes
            if n.stmt is not None and n.stmt in wanted
        ]


def _irrefutable(case: "ast.match_case") -> bool:
    """True when a match case always matches (bare ``case _:``)."""
    return (
        case.guard is None
        and isinstance(case.pattern, ast.MatchAs)
        and case.pattern.pattern is None
    )
