"""The one finding format shared by both static-analysis engines.

Every defect either engine detects — an illegal template step in a route
artifact, an ``id()``-keyed cache in our own source — is reported as a
:class:`Finding`: rule id, severity, location, message, fix hint.  The
location keys (``file``/``line``/``col`` for code, ``row``/``col``/
``wire``/``frame``/``offset``/``seq``/``net`` for artifacts) are exactly
the keys :meth:`repro.errors.RoutingFailure.context` and
:class:`repro.errors.LocatedError` render at run time, so a lint report
and a production stack trace point at a problem in the same vocabulary.

The JSON form is versioned (:data:`SCHEMA_VERSION`) and round-trips
losslessly (``Finding.from_dict(f.to_dict()) == f``); CI and editor
integrations consume it via ``repro analyze --json``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "Severity",
    "Finding",
    "Report",
]

#: Version of the JSON finding schema (bump on incompatible change).
SCHEMA_VERSION = 1

#: Location keys permitted in :attr:`Finding.context`, in render order.
#: Shared with the runtime error hierarchy — see module docstring.
_CONTEXT_KEYS = (
    "row",
    "col",
    "wire",
    "net",
    "frame",
    "offset",
    "seq",
    "plan",
    "step",
    "template",
)


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe artifacts that cannot work or code that
    is wrong under concurrency; ``WARNING`` findings describe likely
    defects that need a human judgement; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One machine-readable static-analysis finding.

    Attributes
    ----------
    rule:
        Stable rule id (``"RPR001"``, ``"RL004"`` — see
        :mod:`repro.analysis.rules`).  Ids never change meaning; retired
        rules are not reused.
    severity:
        :class:`Severity` of this occurrence.
    message:
        One-line description of the defect.
    hint:
        Actionable fix suggestion ("guard the mutation with a lock",
        "use a stable cache token"), or ``""``.
    file:
        Source file or artifact path the finding is located in, or
        ``""`` for findings about in-memory objects.
    line:
        1-based line for code findings and line-oriented artifacts
        (WAL), or ``None``.
    col:
        0-based column for code findings, or ``None``.
    context:
        Extra structured location (fabric coordinates, frame/offset,
        plan/step indices) restricted to the shared location keys.
    """

    rule: str
    severity: Severity
    message: str
    hint: str = ""
    file: str = ""
    line: int | None = None
    col: int | None = None
    context: tuple[tuple[str, int | str], ...] = ()

    @staticmethod
    def make(
        rule: str,
        severity: Severity,
        message: str,
        *,
        hint: str = "",
        file: str = "",
        line: int | None = None,
        col: int | None = None,
        at: tuple[int, int] | None = None,
        **context: int | str | None,
    ) -> "Finding":
        """Build a finding, dropping ``None`` context values and pinning
        context-key order so equal findings compare equal.

        ``col`` is the 0-based *source-code* column; fabric tile
        coordinates go through ``at=(row, col)``, which expands to the
        ``row``/``col`` context keys (the keyword ``col`` cannot reach
        ``**context`` because the code-column parameter shadows it).
        """
        if at is not None:
            context["row"], context["col"] = at
        items = tuple(
            (k, v)
            for k in _CONTEXT_KEYS
            if (v := context.pop(k, None)) is not None
        )
        if context:
            raise ValueError(
                f"unknown finding context keys: {sorted(context)}"
            )
        return Finding(
            rule=rule,
            severity=severity,
            message=message,
            hint=hint,
            file=file,
            line=line,
            col=col,
            context=items,
        )

    # -- rendering ---------------------------------------------------------

    def location(self) -> str:
        """Human-readable ``file:line:col [k=v, ...]`` location string."""
        loc = self.file or "<input>"
        if self.line is not None:
            loc += f":{self.line}"
            if self.col is not None:
                loc += f":{self.col + 1}"
        if self.context:
            rendered = ", ".join(f"{k}={v}" for k, v in self.context)
            loc += f" [{rendered}]"
        return loc

    def render(self) -> str:
        """One-line text form: ``location: SEVERITY RULE message (hint)``."""
        out = f"{self.location()}: {self.severity} {self.rule} {self.message}"
        if self.hint:
            out += f" (hint: {self.hint})"
        return out

    # -- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "context": {k: v for k, v in self.context},
        }
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Finding":
        ctx: Mapping[str, Any] = data.get("context", {})
        unknown = set(ctx) - set(_CONTEXT_KEYS)
        if unknown:
            raise ValueError(f"unknown finding context keys: {sorted(unknown)}")
        return Finding(
            rule=data["rule"],
            severity=Severity(data["severity"]),
            message=data["message"],
            hint=data.get("hint", ""),
            file=data.get("file", ""),
            line=data.get("line"),
            col=data.get("col"),
            context=tuple(
                (k, ctx[k])
                for k in _CONTEXT_KEYS
                if ctx.get(k) is not None
            ),
        )


@dataclass(slots=True)
class Report:
    """A batch of findings plus suppression accounting."""

    findings: list[Finding] = field(default_factory=list)
    #: findings silenced by an inline ``# repro: noqa`` directive
    suppressed: list[Finding] = field(default_factory=list)
    #: files/artifacts examined
    inputs: list[str] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "Report") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.inputs.extend(other.inputs)

    def counts_by_rule(self) -> dict[str, int]:
        """Per-rule finding counts (the CI job summary)."""
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def worst(self) -> Severity | None:
        """Most severe finding present, or None when clean."""
        order = (Severity.ERROR, Severity.WARNING, Severity.INFO)
        present = {f.severity for f in self.findings}
        for sev in order:
            if sev in present:
                return sev
        return None

    def sort(self) -> None:
        """Stable order: by file, line, column, then rule id."""
        self.findings.sort(
            key=lambda f: (f.file, f.line or 0, f.col or 0, f.rule)
        )

    def to_json(self) -> str:
        body = {
            "version": SCHEMA_VERSION,
            "inputs": list(self.inputs),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts": self.counts_by_rule(),
        }
        return json.dumps(body, indent=2, sort_keys=False)

    @staticmethod
    def from_json(text: str) -> "Report":
        body = json.loads(text)
        if body.get("version") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported findings schema {body.get('version')!r}"
            )
        report = Report(inputs=list(body.get("inputs", [])))
        report.findings = [
            Finding.from_dict(d) for d in body.get("findings", [])
        ]
        report.suppressed = [
            Finding.from_dict(d) for d in body.get("suppressed", [])
        ]
        return report

    def render_text(self) -> str:
        """Full text report: findings, then the per-rule summary."""
        lines = [f.render() for f in self.findings]
        counts = self.counts_by_rule()
        lines.append("")
        if counts:
            lines.append("findings by rule:")
            for rule, n in counts.items():
                lines.append(f"  {rule:8s} {n}")
        else:
            lines.append("no findings")
        if self.suppressed:
            lines.append(f"suppressed: {len(self.suppressed)}")
        lines.append(
            f"{len(self.findings)} finding(s) across "
            f"{len(self.inputs)} input(s)"
        )
        return "\n".join(lines)
