"""Forward dataflow passes over the call graph and per-function CFGs.

This is the interprocedural layer of ``repro analyze``: the syntactic
pass (:mod:`repro.analysis.codelint`) sees one function body at a time;
the passes here see the whole program through the
:class:`~repro.analysis.callgraph.CallGraph` and the per-function
:class:`~repro.analysis.cfg.CFG`, which is where the concurrency bugs
this repo has actually shipped live — every hazard fixed by hand in
PRs 4, 8 and 9 crossed a function boundary.

Passes and the rules they feed:

* **blocking-call propagation** — the fixpoint closure of "calls a
  blocking primitive" over synchronous call edges.  Feeds RPR008
  (import-alias-aware direct blocking in ``async def``) and RPR009
  (*transitive* blocking reachable from an ``async def`` through sync
  helpers — the call chain is printed in the finding).
* **lockset tracking** — every ``with <lock>:`` acquisition knows which
  locks are already held, including locks held across call edges into
  functions that acquire more.  A cycle in the resulting lock-order
  graph is RPR010 (two call paths can interleave into deadlock).
* **spawn-reachability** — functions reachable from a
  ``spawn-process`` entry point run in a child under ``spawn``: module
  globals there are per-process copies.  A mutation of a global that
  parent-side code also reads is RPR011 (the update silently never
  crosses the process boundary).
* **resource-escape analysis** — for every resource constructed and
  bound to a local (``SharedMemory(create=True)``, executors, bare
  ``open``), walk the CFG: if some path reaches the function exit (or a
  rebinding of the name) without releasing or escaping the resource,
  that path leaks it — RPR012, the path-sensitive generalisation of
  RPR005.
* **deadline-poll closure** — which functions (transitively) poll a
  deadline token.  Feeds the interprocedural upgrade of RPR004: an
  unbounded loop whose body *calls a polling helper* is bounded, no
  ``# repro: noqa`` needed.

Soundness limits are documented in ``docs/ANALYSIS.md`` — unresolved
calls produce no edges, so these passes can miss (never invent)
reachability through higher-order code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import (
    EXT_PREFIX,
    CallGraph,
    CallSite,
    FunctionInfo,
    ProjectIndex,
    _dotted_text,
)
from .cfg import CFG
from .codelint import _BLOCKING_BARE, _BLOCKING_DOTTED
from .findings import Finding, Severity

__all__ = ["InterproceduralResult", "analyze_project"]

#: external dotted names that block the calling thread
BLOCKING_EXT = frozenset(_BLOCKING_DOTTED) | frozenset(_BLOCKING_BARE)

#: resource constructors RPR012 tracks, by callee tail name
_RESOURCE_CTORS = {
    "SharedMemory": "shared-memory segment",
    "ProcessPoolExecutor": "process pool",
    "ThreadPoolExecutor": "thread pool",
    "Pool": "multiprocessing pool",
    "open": "file handle",
}

#: method names that release a tracked resource
_RELEASERS = {
    "close", "unlink", "shutdown", "terminate", "join", "release",
    "cleanup", "stop",
}

#: container/registration mutators that make a stored value escape
_STORE_METHODS = {"append", "add", "insert", "register", "put", "setdefault"}


@dataclass(slots=True)
class InterproceduralResult:
    """Everything the driver needs from one whole-program pass."""

    findings: list[Finding] = field(default_factory=list)
    #: ``(file, line)`` of syntactic RPR004 findings proven bounded by
    #: a polling helper called inside the loop
    rpr004_exempt: set[tuple[str, int]] = field(default_factory=set)
    #: functions whose blocking-closure is non-empty (diagnostics)
    blocking: dict[str, list[str]] = field(default_factory=dict)
    #: lock-order edges observed: (outer, inner) -> witness site
    lock_order: dict[tuple[str, str], tuple[str, int]] = field(
        default_factory=dict
    )


def analyze_project(
    index: ProjectIndex, graph: CallGraph | None = None
) -> InterproceduralResult:
    """Run every interprocedural pass; returns findings + exemptions."""
    if graph is None:
        graph = CallGraph.build(index)
    result = InterproceduralResult()
    _blocking_pass(index, graph, result)
    _lock_order_pass(index, graph, result)
    _spawn_globals_pass(index, graph, result)
    _resource_path_pass(index, graph, result)
    _deadline_poll_pass(index, graph, result)
    result.findings.sort(
        key=lambda f: (f.file, f.line or 0, f.col or 0, f.rule)
    )
    return result


# ---------------------------------------------------------------------------
# blocking-call propagation (RPR008 upgrade + RPR009)


def _direct_blocking_sites(graph: CallGraph, qual: str) -> list[CallSite]:
    return [
        s
        for s in graph.callees(qual)
        if s.kind == "call" and s.external and s.target in BLOCKING_EXT
    ]


def _blocking_closure(
    index: ProjectIndex, graph: CallGraph
) -> dict[str, bool]:
    """``qual -> True`` when the *sync* function transitively reaches a
    blocking primitive through ordinary call edges.

    Async callees never propagate (calling one only builds a coroutine)
    and spawn/task edges never propagate (the work leaves this thread).
    """
    blocking = {q: False for q in index.functions}
    for q in blocking:
        if _direct_blocking_sites(graph, q):
            blocking[q] = True
    changed = True
    while changed:
        changed = False
        for q in blocking:
            if blocking[q]:
                continue
            for site in graph.callees(q):
                if site.kind != "call" or site.external:
                    continue
                callee = index.functions.get(site.callee)
                if callee is None or callee.is_async:
                    continue
                if blocking[site.callee]:
                    blocking[q] = True
                    changed = True
                    break
    return blocking


def _chain_text(graph: CallGraph, start: str, short: bool = True) -> str:
    """Render ``start -> helper -> time.sleep`` for a finding message."""
    goals = {EXT_PREFIX + p for p in BLOCKING_EXT}
    chain = graph.shortest_chain(start, goals)
    names = [start.rsplit(".", 1)[-1] if short else start]
    for site in chain:
        names.append(site.target.rsplit(".", 1)[-1] if short else site.target)
    return " -> ".join(names)


def _blocking_pass(
    index: ProjectIndex, graph: CallGraph, result: InterproceduralResult
) -> None:
    blocking = _blocking_closure(index, graph)
    result.blocking = {
        q: [s.target for s in _direct_blocking_sites(graph, q)]
        for q, b in blocking.items()
        if b
    }
    for qual, info in index.functions.items():
        if not info.is_async:
            continue
        for site in graph.callees(qual):
            if site.kind != "call":
                continue
            if site.external and site.target in BLOCKING_EXT:
                # direct, but resolved through an import alias the
                # syntactic RPR008 cannot see; the driver de-duplicates
                # against codelint's own RPR008 on the same line
                result.findings.append(
                    Finding.make(
                        "RPR008",
                        Severity.ERROR,
                        f"blocking call {site.target}(...) inside async "
                        f"def {info.name!r}",
                        hint="the event loop stalls while this runs; use "
                        "the async equivalent (asyncio.sleep, "
                        "asyncio.to_thread, loop.run_in_executor)",
                        file=site.file,
                        line=site.lineno,
                        col=site.col,
                    )
                )
                continue
            callee = index.functions.get(site.callee)
            if callee is None or callee.is_async:
                continue
            if site.awaited:
                continue  # awaiting a sync call is a different bug
            if blocking.get(site.callee):
                chain = _chain_text(graph, site.callee)
                result.findings.append(
                    Finding.make(
                        "RPR009",
                        Severity.ERROR,
                        f"async def {info.name!r} reaches a blocking call "
                        f"through {chain}",
                        hint="every await on this loop stalls while the "
                        "chain runs; hop to a worker thread at this "
                        "boundary (asyncio.to_thread / run_in_executor) "
                        "or make the helper async",
                        file=site.file,
                        line=site.lineno,
                        col=site.col,
                    )
                )


# ---------------------------------------------------------------------------
# lock-order inversion (RPR010)


def _acquired_closure(
    graph: CallGraph,
) -> dict[str, set[str]]:
    """``qual -> locks (transitively) acquired while executing it``."""
    acquired: dict[str, set[str]] = {
        q: {a.lock for a in acqs}
        for q, acqs in graph.acquisitions.items()
    }
    for q in graph.index.functions:
        acquired.setdefault(q, set())
    changed = True
    while changed:
        changed = False
        for q in acquired:
            for site in graph.callees(q):
                if site.kind != "call" or site.external:
                    continue
                extra = acquired.get(site.callee, set())
                if not extra <= acquired[q]:
                    acquired[q] |= extra
                    changed = True
    return acquired


def _lock_order_pass(
    index: ProjectIndex, graph: CallGraph, result: InterproceduralResult
) -> None:
    order: dict[tuple[str, str], tuple[str, int]] = {}

    def record(outer: str, inner: str, file: str, line: int) -> None:
        if outer == inner:
            return  # re-entrant acquisition is a different hazard
        order.setdefault((outer, inner), (file, line))

    # intra-function nesting
    for acqs in graph.acquisitions.values():
        for a in acqs:
            for held in a.held:
                record(held, a.lock, a.file, a.lineno)
    # locks held across call edges into lock-acquiring callees
    acquired = _acquired_closure(graph)
    for site in graph.edges:
        if site.kind != "call" or site.external or not site.locks:
            continue
        for inner in acquired.get(site.callee, ()):
            for outer in site.locks:
                record(outer, inner, site.file, site.lineno)
    result.lock_order = order

    # cycle detection over the order graph (iterative DFS)
    adj: dict[str, set[str]] = {}
    for a, b in order:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    color: dict[str, int] = {}
    reported: set[frozenset[str]] = set()

    def dfs(root: str) -> None:
        stack: list[tuple[str, list[str]]] = [(root, [root])]
        while stack:
            node, path = stack.pop()
            color[node] = 1
            for nxt in sorted(adj.get(node, ())):
                if nxt in path:
                    cycle = path[path.index(nxt):] + [nxt]
                    key = frozenset(cycle)
                    if key in reported:
                        continue
                    reported.add(key)
                    file, line = order.get(
                        (cycle[0], cycle[1]), ("", 0)
                    )
                    pretty = " -> ".join(
                        c.rsplit(".", 1)[-1] for c in cycle
                    )
                    result.findings.append(
                        Finding.make(
                            "RPR010",
                            Severity.ERROR,
                            f"lock-order inversion: {pretty} (two threads "
                            f"taking these locks in opposite orders can "
                            f"deadlock)",
                            hint="pick one global acquisition order for "
                            "these locks and take them in that order on "
                            "every path (or collapse them into one lock)",
                            file=file,
                            line=line or None,
                        )
                    )
                elif color.get(nxt, 0) == 0:
                    stack.append((nxt, path + [nxt]))
        color[root] = 2

    for node in sorted(adj):
        if color.get(node, 0) == 0:
            dfs(node)


# ---------------------------------------------------------------------------
# spawn-reachable global mutation (RPR011)


@dataclass(slots=True)
class _GlobalUse:
    name: str
    node: ast.AST
    how: str


def _walk_own(root: ast.AST):
    """Walk ``root``'s subtree without descending into nested function
    bodies (those are analysed as their own call-graph nodes)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _global_mutations(
    info: FunctionInfo, module_globals: set[str]
) -> list[_GlobalUse]:
    """Module-global mutations inside one function body (the RPR002
    shapes: item/aug assignment, mutator method calls, rebinding under
    a ``global`` declaration)."""
    out: list[_GlobalUse] = []
    declared_global: set[str] = set()
    body = info.node.body if not isinstance(info.node, ast.Lambda) else []
    for stmt in body:
        for node in [stmt, *_walk_own(stmt)]:
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.AugAssign):
                t = node.target
                if isinstance(t, ast.Name) and t.id in module_globals:
                    out.append(_GlobalUse(t.id, node, "aug-assigned"))
                elif (
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in module_globals
                ):
                    out.append(
                        _GlobalUse(t.value.id, node, "item aug-assigned")
                    )
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.value, ast.Name)
                        and t.value.id in module_globals
                    ):
                        out.append(
                            _GlobalUse(t.value.id, node, "item-assigned")
                        )
                    elif (
                        isinstance(t, ast.Name)
                        and t.id in declared_global
                        and t.id in module_globals
                    ):
                        out.append(_GlobalUse(t.id, node, "rebound"))
            elif isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                f = node.value.func
                if (
                    isinstance(f, ast.Attribute)
                    and isinstance(f.value, ast.Name)
                    and f.value.id in module_globals
                    and f.attr
                    in {
                        "append", "extend", "insert", "add", "update",
                        "merge", "clear", "pop", "popitem", "remove",
                        "discard", "setdefault", "appendleft", "record",
                    }
                ):
                    out.append(
                        _GlobalUse(
                            f.value.id, node, f"mutated via .{f.attr}()"
                        )
                    )
    return out


def _global_reads(info: FunctionInfo, module_globals: set[str]) -> set[str]:
    body = info.node.body if not isinstance(info.node, ast.Lambda) else []
    reads: set[str] = set()
    for stmt in body:
        for node in [stmt, *_walk_own(stmt)]:
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in module_globals
            ):
                reads.add(node.id)
    return reads


def _memo_return(info: FunctionInfo, mut: _GlobalUse) -> bool:
    """True for the memo-cache shape ``G[key] = x ... return x``: the
    caller receives the cached value through the return path, so the
    mutation is a per-process cache fill, not a lost hand-off."""
    node = mut.node
    if not isinstance(node, ast.Assign) or not isinstance(
        node.value, ast.Name
    ):
        return False
    name = node.value.id
    if isinstance(info.node, ast.Lambda):
        return False
    for stmt in info.node.body:
        for sub in [stmt, *_walk_own(stmt)]:
            if (
                isinstance(sub, ast.Return)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == name
            ):
                return True
    return False


def _atexit_registered(index: ProjectIndex) -> set[str]:
    """Functions decorated with ``@atexit.register`` — they run at
    *every* process's exit, child processes included."""
    out: set[str] = set()
    for qual, info in index.functions.items():
        if isinstance(info.node, ast.Lambda):
            continue
        for dec in info.node.decorator_list:
            text = _dotted_text(dec)
            if text in {"atexit.register", "register"} and text:
                out.add(qual)
    return out


def _spawn_globals_pass(
    index: ProjectIndex, graph: CallGraph, result: InterproceduralResult
) -> None:
    roots = graph.spawn_process_roots()
    if not roots:
        return
    # everything a child process can execute, along any edge kind —
    # a thread inside the child is still inside the child
    child = graph.reachable(roots)
    # functions that may run in *some* worker context even when the
    # executor's type could not be resolved ("spawn" edges), plus
    # atexit hooks (they fire at child exit too): none of these are
    # credible parent-side readers
    maybe_worker = {
        cs.target
        for cs in graph.edges
        if cs.kind in {"spawn", "spawn-process"} and cs.target
    }
    maybe_worker |= _atexit_registered(index)
    workerish = child | graph.reachable(maybe_worker)
    for qual in sorted(child):
        info = index.functions.get(qual)
        if info is None:
            continue
        mod = index.modules.get(info.module)
        if mod is None:
            continue
        mutations = _global_mutations(info, mod.globals)
        if not mutations:
            continue
        for mut in mutations:
            if _memo_return(info, mut):
                continue
            # only a hazard when parent-side code *reads* the global:
            # a worker-private cache mutated and read only on child
            # paths is per-process state by design
            parent_readers = [
                other
                for other in index.functions.values()
                if other.module == info.module
                and other.qualname not in workerish
                and mut.name in _global_reads(other, mod.globals)
            ]
            if not parent_readers:
                continue
            reader = min(parent_readers, key=lambda f: f.lineno)
            root = min(roots)
            result.findings.append(
                Finding.make(
                    "RPR011",
                    Severity.WARNING,
                    f"module global {mut.name!r} {mut.how} on a "
                    f"process-pool worker path (reachable from "
                    f"{root.rsplit('.', 1)[-1]}); under spawn the parent's "
                    f"copy — read by {reader.name}() — never sees this "
                    f"update",
                    hint="ship the state back explicitly in the worker's "
                    "return value (the PathFinder ledger/stats pattern), "
                    "or mark deliberately per-process state with "
                    "`# repro: noqa RPR011`",
                    file=info.file,
                    line=getattr(mut.node, "lineno", info.lineno),
                    col=getattr(mut.node, "col_offset", None),
                )
            )


# ---------------------------------------------------------------------------
# resource-escape / release-on-every-path (RPR012)


def _resource_kind(
    index: ProjectIndex, info: FunctionInfo, call: ast.Call
) -> str | None:
    """Classify a constructor call as a tracked resource, or None."""
    text = _dotted_text(call.func)
    if text is None:
        return None
    tail = text.rsplit(".", 1)[-1]
    if tail not in _RESOURCE_CTORS:
        return None
    mod = index.modules.get(info.module)
    if mod is None:
        return None
    if tail == "open":
        # only the builtin: a project `open`/method named open is not a
        # file handle factory
        if text != "open" or index.resolve_name(mod, text) is not None:
            return None
        return _RESOURCE_CTORS[tail]
    if index.resolve_name(mod, text) is not None:
        return None  # a project class that happens to share the name
    if tail == "SharedMemory":
        for kw in call.keywords:
            if (
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return _RESOURCE_CTORS[tail]
        return None  # attach-side handles have process lifetime
    return _RESOURCE_CTORS[tail]


def _stmt_header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *at* a CFG node (compound statements
    contribute only their headers; their bodies are separate nodes)."""
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [i.context_expr for i in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    out: list[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return out


def _name_in(expr: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(expr)
    )


def _releases(stmt: ast.stmt, name: str) -> bool:
    for expr in _stmt_header_exprs(stmt):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASERS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                return True
    return False


def _escapes(stmt: ast.stmt, name: str) -> bool:
    """The resource outlives this function legitimately: returned,
    yielded, stored on an object/container/global, registered, or handed
    to another call that now owns it."""
    if isinstance(stmt, ast.Return):
        return stmt.value is not None and _name_in(stmt.value, name)
    if isinstance(stmt, ast.Assign):
        if _name_in(stmt.value, name):
            for t in stmt.targets:
                if not isinstance(t, ast.Name):
                    return True  # self.x = r / container[k] = r
                if t.id != name:
                    return True  # alias: tracking stops, assume owned
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if _name_in(stmt.value, name) and not isinstance(
            stmt.target, ast.Name
        ):
            return True
    for expr in _stmt_header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Yield) or isinstance(node, ast.YieldFrom):
                if node.value is not None and _name_in(node.value, name):
                    return True
            if isinstance(node, ast.Call):
                # receiver method calls are not escapes; argument
                # positions are (ownership transfer / registration)
                for a in node.args:
                    if _name_in(a, name):
                        return True
                for kw in node.keywords:
                    if _name_in(kw.value, name):
                        return True
    return False


def _rebinds(stmt: ast.stmt, name: str) -> bool:
    if isinstance(stmt, ast.Assign):
        return any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        )
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return isinstance(stmt.target, ast.Name) and stmt.target.id == name
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _name_in(stmt.target, name)
    return False


def _resource_path_pass(
    index: ProjectIndex, graph: CallGraph, result: InterproceduralResult
) -> None:
    for qual, info in index.functions.items():
        if isinstance(info.node, ast.Lambda):
            continue
        creations: list[tuple[ast.Assign, str, str]] = []
        for stmt in ast.walk(info.node):
            if not isinstance(stmt, ast.Assign):
                continue
            if (
                len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                kind = _resource_kind(index, info, stmt.value)
                if kind is not None:
                    creations.append((stmt, stmt.targets[0].id, kind))
        if not creations:
            continue
        cfg = CFG.build(info.node)
        for stmt, name, kind in creations:
            start = cfg.node_for(stmt)
            if start is None:
                continue  # inside a nested function; its own pass sees it
            stops = {
                n.id
                for n in cfg.nodes
                if n.stmt is not None
                and n.stmt is not stmt
                and (_releases(n.stmt, name) or _escapes(n.stmt, name))
            }
            # a release anywhere inside a finally body counts for every
            # path through that finally — a guard around the shutdown
            # (``if backend == "thread" and pool is not None``) usually
            # correlates with the creation branch, which path-insensitive
            # reachability cannot see
            releasing_finals = _finally_releases(info.node, name)
            stops |= {
                n.id
                for n in cfg.nodes
                if n.stmt is not None and n.stmt in releasing_finals
            }
            leaks = {
                n.id
                for n in cfg.nodes
                if n.stmt is not None
                and n.stmt is not stmt
                and _rebinds(n.stmt, name)
            }
            # a path that reaches exit (or rebinds the only name bound
            # to the resource) without releasing/escaping leaks it
            leaked = cfg.paths_escape(
                start, stops=stops | leaks
            ) or _reaches(cfg, start, leaks, stops)
            if leaked:
                result.findings.append(
                    Finding.make(
                        "RPR012",
                        Severity.WARNING,
                        f"{kind} {name!r} is not released on every path "
                        f"out of {info.name}()",
                        hint="release in a finally (or `with`), or hand "
                        "ownership out explicitly (return it / store it "
                        "/ atexit.register the cleanup) on every path",
                        file=info.file,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                    )
                )


def _finally_releases(func: ast.AST, name: str) -> set[ast.stmt]:
    """Statements of every ``finally`` body that releases ``name``
    somewhere inside it (statements belonging to nested functions never
    match the enclosing function's CFG nodes, so including them is
    harmless)."""
    out: set[ast.stmt] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Try) or not node.finalbody:
            continue
        stmts: list[ast.stmt] = []
        for s in node.finalbody:
            stmts.append(s)
            stmts.extend(
                sub for sub in _walk_own(s) if isinstance(sub, ast.stmt)
            )
        if any(_releases(s, name) for s in stmts):
            out.update(stmts)
    return out


def _reaches(
    cfg: CFG, start: int, goals: set[int], stops: set[int]
) -> bool:
    if not goals:
        return False
    seen: set[int] = set()
    stack = list(cfg.nodes[start].succs)
    while stack:
        n = stack.pop()
        if n in seen or n in stops:
            continue
        if n in goals:
            return True
        seen.add(n)
        stack.extend(cfg.nodes[n].succs)
    return False


# ---------------------------------------------------------------------------
# deadline-poll closure (interprocedural RPR004 exemption)


def _polls_deadline_directly(info: FunctionInfo) -> bool:
    node = info.node
    if isinstance(node, ast.Lambda):
        return False
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in ("poll", "expired", "remaining")
        ):
            text = _dotted_text(sub.func.value) or ""
            if "deadline" in text.lower() or "budget" in text.lower():
                return True
    return False


def _polling_closure(index: ProjectIndex, graph: CallGraph) -> set[str]:
    polls = {
        q for q, info in index.functions.items()
        if _polls_deadline_directly(info)
    }
    changed = True
    while changed:
        changed = False
        for q in index.functions:
            if q in polls:
                continue
            for site in graph.callees(q):
                if (
                    site.kind == "call"
                    and not site.external
                    and site.callee in polls
                ):
                    polls.add(q)
                    changed = True
                    break
    return polls


def _deadline_poll_pass(
    index: ProjectIndex, graph: CallGraph, result: InterproceduralResult
) -> None:
    """Mark ``while`` loops whose body calls a deadline-polling helper:
    the syntactic RPR004 finding on that loop line is withdrawn."""
    polls = _polling_closure(index, graph)
    if not polls:
        return
    for qual, info in index.functions.items():
        if isinstance(info.node, ast.Lambda):
            continue
        calls_by_line = [
            s
            for s in graph.callees(qual)
            if s.kind == "call" and not s.external and s.callee in polls
        ]
        if not calls_by_line:
            continue
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.While):
                continue
            lo = sub.lineno
            hi = getattr(sub, "end_lineno", lo) or lo
            if any(lo <= s.lineno <= hi for s in calls_by_line):
                result.rpr004_exempt.add((info.file, sub.lineno))
