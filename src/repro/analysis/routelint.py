"""Layer 1: fabric-aware linting of routing artifacts — no routing runs.

Everything the runtime eventually refuses (a nonexistent wire, a missing
PIP, two drivers on one bidirectional wire, an unreplayable journal) is
detectable *statically* against the architecture description, before a
session starts.  This module validates:

* :class:`~repro.core.path.Path` objects and serialized PIP plans —
  wire/PIP existence, tile adjacency, direction legality (RL001-RL003);
* plan *sets* — cross-plan drive-conflict prediction, the static form of
  the paper's ``isOn`` contention exception (RL004);
* :class:`~repro.core.template.Template` values and predefined template
  sets — per-step transition legality and fabric bounds (RL005),
  dead/duplicate entries (RL006);
* port maps — pin existence and direction legality (RL001/RL003);
* WAL and checkpoint files — frame integrity and replay legality
  (RL007-RL009), built on :func:`repro.core.wal.iter_wal_frames`.

All functions return :class:`~repro.analysis.findings.Finding` lists and
never raise on bad artifacts; raising is reserved for unreadable input.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from ..arch import templates as tmpl
from ..arch import wires
from ..arch.templates import TemplateValue
from ..arch.virtex import VirtexArch
from ..core.endpoints import Port, PortDirection
from ..core.path import Path
from ..core.template import Template
from ..core.wal import iter_wal_frames, load_checkpoint
from ..errors import JRouteError
from ..routers.base import PlanPip
from .findings import Finding, Severity
from . import plans as planio

__all__ = [
    "lint_path",
    "lint_plan",
    "lint_plans",
    "lint_template",
    "lint_template_set",
    "lint_port_map",
    "lint_wal_file",
    "lint_checkpoint_file",
    "lint_artifact_file",
]

#: reason code from :meth:`VirtexArch.pip_legal_at` -> (rule, message)
_PIP_REASONS = {
    "unknown-name": ("RL001", "wire name out of range"),
    "missing-from": ("RL001", "source wire does not exist at this tile"),
    "missing-to": ("RL001", "target wire does not exist at this tile"),
    "missing-pip": ("RL002", "no architecture PIP between these wires"),
    "undrivable": ("RL003", "target wire cannot be driven at this tile"),
    "self-drive": ("RL002", "source and target are the same physical wire"),
}


def _name(n: int) -> str:
    return wires.wire_name(n) if 0 <= n < wires.N_NAMES else f"<{n}>"


def _check_pip(
    arch: VirtexArch,
    r: int,
    c: int,
    f: int,
    t: int,
    *,
    file: str,
    line: int | None = None,
    **context: int | str | None,
) -> Finding | None:
    reason = arch.pip_legal_at(r, c, f, t)
    if reason is None:
        return None
    rule, detail = _PIP_REASONS[reason]
    return Finding.make(
        rule,
        Severity.ERROR,
        f"PIP {_name(f)} -> {_name(t)} at ({r},{c}): {detail}",
        hint=(
            "check the step against `repro wires` and the part geometry"
            if rule == "RL001"
            else "pick a connection the architecture provides "
            "(see Device.fanout_pips)"
        ),
        file=file,
        line=line,
        at=(r, c),
        wire=_name(t),
        **context,
    )


# -- plans and paths -----------------------------------------------------------


def lint_plan(
    arch: VirtexArch,
    plan: Sequence[PlanPip],
    *,
    file: str = "",
    plan_name: str | int = 0,
    driven: dict[int, tuple[int, str | int, int]] | None = None,
) -> list[Finding]:
    """Validate one PIP plan: existence, adjacency, drive conflicts.

    ``driven`` is the cross-plan driver map (canonical wire ->
    ``(canon_from, plan_name, step)``); pass the same dict across plans
    of one deployment set to get the static ``isOn`` conflict analysis
    (RL004) *between* plans as well as within one.
    """
    findings: list[Finding] = []
    driven = {} if driven is None else driven
    for step, (r, c, f, t) in enumerate(plan):
        bad = _check_pip(
            arch, r, c, f, t, file=file, plan=plan_name, step=step
        )
        if bad is not None:
            findings.append(bad)
            continue
        canon_from = arch.canonicalize(r, c, f)
        canon_to = arch.canonicalize(r, c, t)
        assert canon_from is not None and canon_to is not None
        prior = driven.get(canon_to)
        if prior is not None and prior[0] != canon_from:
            _, other_plan, other_step = prior
            findings.append(
                Finding.make(
                    "RL004",
                    Severity.ERROR,
                    f"{_name(t)} at ({r},{c}) is driven twice: plan "
                    f"{plan_name!r} step {step} conflicts with plan "
                    f"{other_plan!r} step {other_step}",
                    hint="the device would raise ContentionError on the "
                    "second turn_on; reroute one of the nets",
                    file=file,
                    plan=plan_name,
                    step=step,
                    at=(r, c),
                    wire=_name(t),
                )
            )
        else:
            driven[canon_to] = (canon_from, plan_name, step)
    return findings


def lint_plans(
    arch: VirtexArch,
    named_plans: Sequence[tuple[str, Sequence[PlanPip]]],
    *,
    file: str = "",
) -> list[Finding]:
    """Validate a set of plans together (cross-plan conflict analysis)."""
    findings: list[Finding] = []
    driven: dict[int, tuple[int, str | int, int]] = {}
    for net, plan in named_plans:
        findings.extend(
            lint_plan(arch, plan, file=file, plan_name=net, driven=driven)
        )
    return findings


def lint_path(
    arch: VirtexArch, path: Path, *, file: str = ""
) -> list[Finding]:
    """Validate a level-2 :class:`Path` without resolving it on a device.

    Walks the same presence-point logic as :meth:`Path.resolve` but
    reports findings instead of raising at the first illegal step.
    """
    findings: list[Finding] = []
    canon0 = arch.canonicalize(path.row, path.col, path.wires[0])
    if canon0 is None:
        findings.append(
            Finding.make(
                "RL001",
                Severity.ERROR,
                f"path start {_name(path.wires[0])} does not exist at "
                f"({path.row},{path.col})",
                hint="start a path on a wire the tile owns",
                file=file,
                at=(path.row, path.col),
                wire=_name(path.wires[0]),
            )
        )
        return findings
    here = sorted(
        arch.presences(canon0),
        key=lambda p: (p[0], p[1]) != (path.row, path.col),
    )
    for step, to_wire in enumerate(path.wires[1:], start=1):
        # mirror Path.resolve's placement search exactly, so the lint
        # walks the same plan the runtime would build
        placed = None
        for r, c, from_name in here:
            if not arch.pip_exists(from_name, to_wire):
                continue
            canon_to = arch.canonicalize(r, c, to_wire)
            if canon_to is None:
                continue
            placed = (r, c, from_name, to_wire, canon_to)
            break
        if placed is None:
            r0, c0, n0 = here[0]
            findings.append(
                Finding.make(
                    "RL002",
                    Severity.ERROR,
                    f"path step {step}: cannot drive {_name(to_wire)} "
                    f"from {_name(n0)} near ({r0},{c0})",
                    hint="insert an intermediate resource the "
                    "architecture connects, or drop to a template",
                    file=file,
                    at=(r0, c0),
                    wire=_name(to_wire),
                    step=step,
                )
            )
            return findings
        r, c, from_name, _, canon_to = placed
        if not arch.drivable(r, c, to_wire):
            findings.append(
                Finding.make(
                    "RL003",
                    Severity.ERROR,
                    f"path step {step}: {_name(to_wire)} cannot be "
                    f"driven at ({r},{c}) (direction legality)",
                    hint="odd hexes and pure sources only drive one "
                    "way; approach from the other end",
                    file=file,
                    at=(r, c),
                    wire=_name(to_wire),
                    step=step,
                )
            )
        here = sorted(
            arch.presences(canon_to), key=lambda p: (p[0], p[1]) == (r, c)
        )
    return findings


# -- templates -----------------------------------------------------------------


def lint_template(
    arch: VirtexArch,
    template: Template | Sequence[TemplateValue],
    *,
    start: tuple[int, int] | None = None,
    file: str = "",
    template_index: int | None = None,
) -> list[Finding]:
    """Validate one template: transition legality and fabric bounds.

    Every consecutive value pair must be realisable by *some* PIP of the
    architecture (:func:`repro.arch.templates.legal_transition`); with a
    ``start`` tile the displacement cursor must additionally stay on the
    device.  Both are necessary conditions — a clean template can still
    fail at routing time on occupancy.
    """
    values = list(
        template.values if isinstance(template, Template) else template
    )
    findings: list[Finding] = []

    def tag(msg: str, step: int, hint: str) -> Finding:
        return Finding.make(
            "RL005",
            Severity.ERROR,
            msg,
            hint=hint,
            file=file,
            step=step,
            template=template_index,
        )

    if not values:
        return [
            tag(
                "empty template",
                0,
                "a template needs at least one value",
            )
        ]
    for step in range(1, len(values)):
        a, b = values[step - 1], values[step]
        if not tmpl.legal_transition(a, b):
            findings.append(
                tag(
                    f"step {step}: no fabric PIP realises "
                    f"{a.name} -> {b.name}",
                    step,
                    "consult the connectivity tables; e.g. hexes cannot "
                    "drive CLB inputs directly — land on a single first",
                )
            )
    if start is not None:
        row, col = start
        r: int | None = row
        c: int | None = col
        for step, v in enumerate(values):
            d = tmpl.step_displacement(v)
            if d is None:
                # long/global: row or column becomes data-dependent
                if v is TemplateValue.LONGH:
                    c = None
                elif v is TemplateValue.LONGV:
                    r = None
                else:
                    r = c = None
                continue
            r = None if r is None else r + d[0]
            c = None if c is None else c + d[1]
            if (r is not None and not 0 <= r < arch.rows) or (
                c is not None and not 0 <= c < arch.cols
            ):
                findings.append(
                    tag(
                        f"step {step}: {v.name} leaves the "
                        f"{arch.rows}x{arch.cols} fabric of "
                        f"{arch.part.name} (cursor ({r},{c}))",
                        step,
                        "shorten the movement or start the route "
                        "further from the edge",
                    )
                )
                break
    return findings


def lint_template_set(
    arch: VirtexArch,
    templates: Sequence[Template | Sequence[TemplateValue]],
    *,
    displacement: tuple[int, int] | None = None,
    start: tuple[int, int] | None = None,
    file: str = "",
) -> list[Finding]:
    """Validate a candidate template set (the auto-router's menu).

    Beyond per-template legality, flags *dead entries* (RL006): exact
    duplicates that can never be chosen because an earlier identical
    entry always matches first, and — when the set declares a target
    ``displacement`` — entries whose net movement cannot reach it.
    """
    findings: list[Finding] = []
    seen: dict[tuple[TemplateValue, ...], int] = {}
    for i, entry in enumerate(templates):
        values = tuple(
            entry.values if isinstance(entry, Template) else entry
        )
        findings.extend(
            lint_template(
                arch, values, start=start, file=file, template_index=i
            )
        )
        first = seen.get(values)
        if first is not None:
            findings.append(
                Finding.make(
                    "RL006",
                    Severity.WARNING,
                    f"template {i} duplicates template {first}; the "
                    f"router tries entries in order, so it is dead",
                    hint="remove the duplicate entry",
                    file=file,
                    template=i,
                )
            )
            continue
        seen[values] = i
        if displacement is not None:
            fixed = [tmpl.step_displacement(v) for v in values]
            if None not in fixed:
                dr = sum(d[0] for d in fixed)  # type: ignore[index]
                dc = sum(d[1] for d in fixed)  # type: ignore[index]
                if (dr, dc) != tuple(displacement):
                    findings.append(
                        Finding.make(
                            "RL006",
                            Severity.WARNING,
                            f"template {i} travels ({dr},{dc}), not the "
                            f"declared ({displacement[0]},"
                            f"{displacement[1]}); it can never reach "
                            f"the sink",
                            hint="regenerate the set with "
                            "predefined_templates(drow, dcol)",
                            file=file,
                            template=i,
                        )
                    )
    return findings


# -- port maps -----------------------------------------------------------------


def lint_port_map(
    arch: VirtexArch,
    ports: Iterable[Port | tuple[str, int, int, int, str]],
    *,
    file: str = "",
) -> list[Finding]:
    """Validate a port map: every pin exists and matches its direction.

    Accepts live :class:`Port` objects (resolved to their pins) or raw
    ``(label, row, col, wire_name, "in"|"out")`` tuples.  Output ports
    must sit on source-capable wires, input ports on sink/drivable
    wires (RL003); nonexistent pins are RL001.
    """
    findings: list[Finding] = []
    flat: list[tuple[str, int, int, int, str]] = []
    for p in ports:
        if isinstance(p, Port):
            try:
                pins = p.resolve_pins()
            except JRouteError:  # repro: noqa RPR006
                continue  # unconnected ports are legal until routed
            for pin in pins:
                flat.append(
                    (
                        p.name,
                        pin.row,
                        pin.col,
                        pin.wire,
                        "out" if p.direction is PortDirection.OUT else "in",
                    )
                )
        else:
            flat.append(p)
    for label, row, col, name, direction in flat:
        if not 0 <= name < wires.N_NAMES or (
            arch.canonicalize(row, col, name) is None
        ):
            findings.append(
                Finding.make(
                    "RL001",
                    Severity.ERROR,
                    f"port {label!r}: pin {_name(name)} does not exist "
                    f"at ({row},{col})",
                    hint="place the core so its pins stay on the fabric",
                    file=file,
                    at=(row, col),
                    wire=_name(name),
                )
            )
            continue
        if direction == "out" and not wires.is_source_name(name):
            findings.append(
                Finding.make(
                    "RL003",
                    Severity.ERROR,
                    f"port {label!r}: output pin {_name(name)} at "
                    f"({row},{col}) is not a signal source",
                    hint="an OUT port must resolve to a slice output, "
                    "OMUX or pad-input wire",
                    file=file,
                    at=(row, col),
                    wire=_name(name),
                )
            )
        elif direction == "in" and not wires.is_sink_name(name):
            findings.append(
                Finding.make(
                    "RL003",
                    Severity.ERROR,
                    f"port {label!r}: input pin {_name(name)} at "
                    f"({row},{col}) is not a routable sink",
                    hint="an IN port must resolve to a slice/control "
                    "input or pad-output wire",
                    file=file,
                    at=(row, col),
                    wire=_name(name),
                )
            )
    return findings


# -- WAL / checkpoint files ----------------------------------------------------


def lint_wal_file(
    path: str, *, part: str | None = None
) -> list[Finding]:
    """Validate a write-ahead log: frames (RL007) and replay (RL008).

    Frame checks mirror what recovery tolerates: a torn *tail* is the
    expected crash artifact (warning), while corruption *before* intact
    frames, CRC mismatches and sequence gaps mean the log cannot be
    trusted (error).  Replay checks simulate the driver map the device
    would build, so contention and loop protection trips are predicted
    offline.
    """
    findings: list[Finding] = []
    header, frames = iter_wal_frames(path)
    if header is None:
        return [
            Finding.make(
                "RL007",
                Severity.ERROR,
                "not a WAL: bad or missing header",
                hint="line 1 must be the JSON header the "
                "WriteAheadLog writes",
                file=path,
                line=1,
            )
        ]
    wal_part = str(header.get("part", part or "XCV50"))
    if part is not None and wal_part != part:
        findings.append(
            Finding.make(
                "RL007",
                Severity.ERROR,
                f"WAL is for part {wal_part!r}, expected {part!r}",
                hint="lint with --part matching the session",
                file=path,
                line=1,
            )
        )
    try:
        arch = VirtexArch(wal_part)
    except KeyError:
        return findings + [
            Finding.make(
                "RL007",
                Severity.ERROR,
                f"unknown part {wal_part!r} in WAL header",
                hint="the header names a part the catalogue lacks",
                file=path,
                line=1,
            )
        ]
    expect = 0
    driver: dict[int, int] = {}  # canon_to -> canon_from
    for i, frame in enumerate(frames):
        rec = frame.record
        if rec is None:
            is_tail = i == len(frames) - 1
            findings.append(
                Finding.make(
                    "RL007",
                    Severity.WARNING if is_tail else Severity.ERROR,
                    "torn tail record (crash artifact)"
                    if is_tail
                    else "corrupt frame before intact records",
                    hint="recovery drops a torn tail automatically"
                    if is_tail
                    else "the log was modified or interleaved; do not "
                    "replay past this point",
                    file=path,
                    line=frame.line,
                )
            )
            if is_tail:
                break
            continue
        if rec.seq != expect:
            findings.append(
                Finding.make(
                    "RL007",
                    Severity.ERROR,
                    f"sequence gap: expected seq {expect}, found "
                    f"{rec.seq}",
                    hint="records were lost or reordered; recovery "
                    "stops at the gap",
                    file=path,
                    line=frame.line,
                    seq=rec.seq,
                )
            )
            expect = rec.seq + 1
        else:
            expect += 1
        bad = _check_pip(
            arch,
            rec.row,
            rec.col,
            rec.from_name,
            rec.to_name,
            file=path,
            line=frame.line,
            seq=rec.seq,
        )
        if bad is not None:
            findings.append(bad)
            continue
        canon_from = arch.canonicalize(rec.row, rec.col, rec.from_name)
        canon_to = arch.canonicalize(rec.row, rec.col, rec.to_name)
        assert canon_from is not None and canon_to is not None
        if rec.on:
            prior = driver.get(canon_to)
            if prior is not None and prior != canon_from:
                findings.append(
                    Finding.make(
                        "RL008",
                        Severity.ERROR,
                        f"seq {rec.seq}: {_name(rec.to_name)} at "
                        f"({rec.row},{rec.col}) is already driven; "
                        f"replay would raise ContentionError",
                        hint="the journal interleaves two sessions or "
                        "skipped an off-event",
                        file=path,
                        line=frame.line,
                        seq=rec.seq,
                        at=(rec.row, rec.col),
                        wire=_name(rec.to_name),
                    )
                )
                continue
            # loop protection: driving an ancestor closes a cycle
            node, hops = canon_from, 0
            while node in driver and hops <= len(driver):
                node = driver[node]
                hops += 1
            if node == canon_to and prior is None:
                findings.append(
                    Finding.make(
                        "RL008",
                        Severity.ERROR,
                        f"seq {rec.seq}: turning on "
                        f"{_name(rec.from_name)} -> "
                        f"{_name(rec.to_name)} closes a routing loop",
                        hint="replay would raise RoutingLoopError",
                        file=path,
                        line=frame.line,
                        seq=rec.seq,
                        at=(rec.row, rec.col),
                        wire=_name(rec.to_name),
                    )
                )
                continue
            driver[canon_to] = canon_from
        else:
            prior = driver.get(canon_to)
            if prior is None or prior != canon_from:
                findings.append(
                    Finding.make(
                        "RL008",
                        Severity.WARNING,
                        f"seq {rec.seq}: off-event for a PIP that is "
                        f"not on ({_name(rec.from_name)} -> "
                        f"{_name(rec.to_name)})",
                        hint="idempotent replay skips it, but the "
                        "journal and the session disagree",
                        file=path,
                        line=frame.line,
                        seq=rec.seq,
                        at=(rec.row, rec.col),
                        wire=_name(rec.to_name),
                    )
                )
            else:
                del driver[canon_to]
    return findings


def lint_checkpoint_file(
    path: str, *, wal_path: str | None = None
) -> list[Finding]:
    """Validate a checkpoint: integrity, PIP preorder, net consistency.

    RL009 covers: CRC/version damage, a PIP list that is not replayable
    in order (drivers must precede the wires they drive — the property
    ``write_checkpoint`` guarantees), net records whose wires do not
    exist, and — when the session's WAL is supplied — part/sequence
    disagreement between the two artifacts.
    """

    def bad(msg: str, hint: str, **ctx: int | str | None) -> Finding:
        return Finding.make(
            "RL009", Severity.ERROR, msg, hint=hint, file=path, **ctx
        )

    try:
        body = load_checkpoint(path)
    except JRouteError:
        return [
            bad(
                "corrupt checkpoint (bad CRC or version)",
                "checkpoints are atomic; restore the previous one",
            )
        ]
    except ValueError:
        return [
            bad(
                "checkpoint is not valid JSON",
                "the file was truncated or is not a checkpoint",
            )
        ]
    findings: list[Finding] = []
    part = str(body.get("part", "XCV50"))
    try:
        arch = VirtexArch(part)
    except KeyError:
        return [
            bad(
                f"unknown part {part!r} in checkpoint",
                "the checkpoint names a part the catalogue lacks",
            )
        ]
    driven: set[int] = set()
    for step, pip in enumerate(body.get("pips", [])):
        r, c, f, t = pip
        illegal = _check_pip(arch, r, c, f, t, file=path, step=step)
        if illegal is not None:
            findings.append(illegal)
            continue
        canon_from = arch.canonicalize(r, c, f)
        canon_to = arch.canonicalize(r, c, t)
        assert canon_from is not None and canon_to is not None
        if canon_to in driven:
            findings.append(
                bad(
                    f"pip {step} re-drives {_name(t)} at ({r},{c})",
                    "write_checkpoint emits each wire once; this "
                    "checkpoint was hand-edited or merged",
                    step=step,
                    at=(r, c),
                    wire=_name(t),
                )
            )
        if (
            canon_from not in driven
            and not wires.is_source_name(arch.primary_name(canon_from)[2])
            and arch.wire_class_of(canon_from).name != "GCLK"
        ):
            findings.append(
                bad(
                    f"pip {step} drives from {_name(f)} at ({r},{c}) "
                    f"before anything drives it (preorder violation)",
                    "replay applies pips in order; reorder drivers "
                    "before the wires they feed",
                    step=step,
                    at=(r, c),
                    wire=_name(f),
                )
            )
        driven.add(canon_to)
    for src_str, net in body.get("nets", {}).items():
        try:
            src = int(src_str)
        except ValueError:
            findings.append(
                bad(
                    f"net key {src_str!r} is not a canonical wire id",
                    "net records are keyed by the source wire's "
                    "canonical id",
                )
            )
            continue
        for canon in [src, *net.get("sinks", [])]:
            if not arch.wire_exists(canon):
                findings.append(
                    bad(
                        f"net {src_str}: wire id {canon} does not exist "
                        f"on {part}",
                        "the checkpoint and part geometry disagree",
                        net=src,
                    )
                )
    if wal_path is not None and os.path.exists(wal_path):
        header, frames = iter_wal_frames(wal_path)
        if header is not None:
            wal_part = header.get("part")
            if wal_part != part:
                findings.append(
                    bad(
                        f"checkpoint part {part!r} != WAL part "
                        f"{wal_part!r}",
                        "these artifacts are from different sessions",
                    )
                )
            last_seq = max(
                (f.record.seq for f in frames if f.record is not None),
                default=-1,
            )
            ckpt_seq = int(body.get("seq", 0))
            if ckpt_seq > last_seq + 1:
                findings.append(
                    bad(
                        f"checkpoint seq {ckpt_seq} is past the end of "
                        f"the WAL (last seq {last_seq})",
                        "the WAL was truncated after the checkpoint "
                        "was written; recovery would silently lose "
                        "events",
                        seq=ckpt_seq,
                    )
                )
    return findings


# -- file dispatch -------------------------------------------------------------


def lint_artifact_file(
    path: str, *, part: str | None = None
) -> tuple[str, list[Finding]]:
    """Sniff and lint one artifact file.

    Returns ``(kind, findings)`` where ``kind`` is the detected artifact
    type.  Unknown formats produce a single RL007 info-level finding
    rather than an error, so mixed directories can be swept.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    kind = planio.sniff_artifact(text)
    if kind == "plan":
        try:
            plan_part, named = planio.load_plans(text)
        except (JRouteError, ValueError, TypeError) as e:
            return "plan", [
                Finding.make(
                    "RL001",
                    Severity.ERROR,
                    f"unreadable plan file: {e}",
                    hint="regenerate with repro.analysis.plans.dump_plans",
                    file=path,
                )
            ]
        arch = VirtexArch(part or plan_part)
        return "plan", lint_plans(arch, named, file=path)
    if kind == "templates":
        try:
            tpl_part, tpls, extras = planio.load_template_set(text)
        except (JRouteError, ValueError, TypeError) as e:
            return "templates", [
                Finding.make(
                    "RL005",
                    Severity.ERROR,
                    f"unreadable template-set file: {e}",
                    hint="regenerate with "
                    "repro.analysis.plans.dump_template_set",
                    file=path,
                )
            ]
        arch = VirtexArch(part or tpl_part)
        return "templates", lint_template_set(
            arch,
            tpls,
            displacement=extras.get("displacement"),
            start=extras.get("start"),
            file=path,
        )
    if kind == "wal":
        return "wal", lint_wal_file(path, part=part)
    if kind == "checkpoint":
        ckpt = lint_checkpoint_file(path)
        return "checkpoint", ckpt
    return "unknown", [
        Finding.make(
            "RL007",
            Severity.INFO,
            "unrecognised artifact format",
            hint="expected a repro-plan/repro-templates file, a WAL or "
            "a checkpoint",
            file=path,
        )
    ]
