"""Layer 2: AST-based concurrency-hazard detection over our own source.

Every rule here (``RPR001``-``RPR007``) is a named, regression-proof
form of a bug class a previous PR actually hit and fixed — ``id()``-keyed
caches aliasing collected objects, module globals mutated off-lock from
worker threads, executors constructed per loop iteration, search loops a
deadline cannot bound, leaked shared-memory segments, broad excepts
that swallow :class:`~repro.errors.RoutingFailure` context, and
per-element Python loops over numpy arrays in paths the vectorized
batch kernel exists to keep scalar-free.  The pass is
purely syntactic (:mod:`ast`), needs no imports of the analysed code,
and is fast enough to run on every commit.

Suppression: a finding on a line containing ``# repro: noqa`` (all
rules) or ``# repro: noqa RPR004`` (listed rules only) is moved to the
report's ``suppressed`` list instead of dropped, so CI can still count
justified exceptions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterator

from .findings import Finding, Severity

__all__ = ["lint_source", "lint_parsed", "lint_file", "parse_noqa", "apply_noqa"]

#: ``# repro: noqa`` / ``# repro: noqa RPR001,RPR004`` (ids optional).
#: Matched only inside a comment *token* (never a string literal), and a
#: back-quoted mention in documentation prose — ``# repro: noqa`` — is
#: not a suppression either (the unused-suppression rule RPR013 depends
#: on this); the directive may be stacked after another comment
#: section (after a coverage pragma, say).
_NOQA_RE = re.compile(
    r"(?<!`)#\s*repro:\s*noqa(?!`)"
    r"(?:\s*:?\s+(?P<ids>[A-Z]{2,3}\d{3}(?:[,\s]+[A-Z]{2,3}\d{3})*))?",
)

#: call names whose first positional argument is a mapping key
_KEYED_METHODS = {"get", "setdefault", "pop"}

#: attribute calls that mutate their receiver in place
_MUTATORS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "merge",
    "clear",
    "pop",
    "popitem",
    "remove",
    "discard",
    "setdefault",
    "appendleft",
}

#: executor/pool constructors (RPR003)
_POOLS = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Pool"}

#: broad exception classes (RPR006a)
_BROAD = {"Exception", "BaseException"}

#: module aliases whose calls produce numpy arrays (RPR007)
_NP_MODULES = {"np", "numpy"}

#: repo calls returning bundles of numpy columns (RPR007 tuple-assign)
_NP_BUNDLES = {"np_columns"}

#: struct-of-arrays state attributes holding numpy columns (RPR007)
_SOA_ATTRS = {"cost", "backptr", "node_epoch"}

#: project failure types whose silent discard loses structured context
_FAILURES = {"JRouteError", "RoutingFailure"}

#: dotted blocking calls that stall an event loop (RPR008)
_BLOCKING_DOTTED = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
}

#: bare names that block: builtin file I/O (RPR008)
_BLOCKING_BARE = {"open"}


def parse_noqa(source: str) -> dict[int, frozenset[str] | None]:
    """Map 1-based line -> suppressed rule ids (None = all rules).

    Directives are recognised only where Python sees a *comment*
    containing ``# repro: noqa`` as its own ``#`` section — a
    back-quoted mention in a doc comment or a string literal does not
    suppress anything, while a directive stacked after another comment
    (``# pragma: no cover  # repro: noqa RPR006``) does.
    """
    out: dict[int, frozenset[str] | None] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, ValueError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _NOQA_RE.search(tok.string)
        if m is None:
            continue
        ids = m.group("ids")
        if ids is None:
            out[tok.start[0]] = None
        else:
            out[tok.start[0]] = frozenset(re.split(r"[,\s]+", ids.strip()))
    return out


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _contains_id_call(node: ast.AST) -> ast.Call | None:
    """The first ``id(...)`` call anywhere inside ``node``, if any."""
    for sub in ast.walk(node):
        if _is_id_call(sub):
            return sub  # type: ignore[return-value]
    return None


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name text of an expression (for messages)."""
    try:
        return ast.unparse(node)
    # message-rendering fallback: unparse failure must never abort a lint
    except Exception:  # pragma: no cover  # repro: noqa RPR006
        return "<expr>"


def _call_name(node: ast.Call) -> str:
    f = node.func
    if isinstance(f, ast.Name):
        return f.id
    if isinstance(f, ast.Attribute):
        return f.attr
    return ""


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _np_rooted(call: ast.Call) -> bool:
    """True for calls rooted at the numpy module (``np.zeros(...)``,
    ``np.frombuffer(...).reshape(...)``, ...)."""
    f = call.func
    while isinstance(f, ast.Attribute):
        f = f.value
    if isinstance(f, ast.Call):
        return _np_rooted(f)
    return isinstance(f, ast.Name) and f.id in _NP_MODULES


class _CodeLinter(ast.NodeVisitor):
    """One pass over a module, accumulating findings.

    The visitor keeps three bits of scope context while descending:
    the enclosing loop stack (RPR003/RPR004), the enclosing ``with``
    items (RPR002's lock-guard exemption), and the enclosing function
    (RPR004's deadline parameter).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        # module-level names bound to mutable containers / objects
        self.module_globals = self._collect_module_globals(tree)
        self.module_text_has_unlink = ".unlink" in source or re.search(
            r"\batexit\.register\b", source
        ) is not None
        self._loops: list[ast.For | ast.While] = []
        self._withs: list[ast.With] = []
        self._funcs: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        # names bound to numpy arrays, one frame per scope; nested
        # functions see enclosing frames (closures over SoA columns)
        self._arrays: list[set[str]] = [set()]

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _collect_module_globals(tree: ast.Module) -> set[str]:
        out: set[str] = set()
        for node in tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            for t in targets:
                if isinstance(t, ast.Name):
                    out.add(t.id)
        return out

    def _emit(
        self,
        rule: str,
        severity: Severity,
        node: ast.AST,
        message: str,
        hint: str,
    ) -> None:
        self.findings.append(
            Finding.make(
                rule,
                severity,
                message,
                hint=hint,
                file=self.path,
                line=getattr(node, "lineno", None),
                col=getattr(node, "col_offset", None),
            )
        )

    def _under_lock(self) -> bool:
        """True inside a ``with`` whose context expression names a lock."""
        for w in self._withs:
            for item in w.items:
                if "lock" in _dotted(item.context_expr).lower():
                    return True
        return False

    def _is_module_global(self, name: str) -> bool:
        return name in self.module_globals

    # -- scope tracking ----------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._withs.append(node)
        self.generic_visit(node)
        self._withs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_deadline_loops(node)
        self._funcs.append(node)
        self._arrays.append(set())
        self.generic_visit(node)
        self._arrays.pop()
        self._funcs.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_For(self, node: ast.For) -> None:
        self._check_array_loop(node)
        self._loops.append(node)
        self.generic_visit(node)
        self._loops.pop()

    def visit_While(self, node: ast.While) -> None:
        self._loops.append(node)
        self.generic_visit(node)
        self._loops.pop()

    # -- RPR001: id()-keyed caches -----------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        bad = _contains_id_call(node.slice)
        if bad is not None:
            self._emit(
                "RPR001",
                Severity.ERROR,
                bad,
                f"id(...) used as a mapping key in "
                f"{_dotted(node.value)}[...]",
                "CPython reuses ids after collection; key on a stable "
                "token (object field, weakref, or an explicit epoch)",
            )
        self.generic_visit(node)

    # -- RPR001 (keyed methods) / RPR003 / RPR005 --------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if (
            isinstance(node.func, ast.Attribute)
            and name in _KEYED_METHODS
            and node.args
        ):
            bad = _contains_id_call(node.args[0])
            if bad is not None:
                self._emit(
                    "RPR001",
                    Severity.ERROR,
                    bad,
                    f"id(...) used as the key of "
                    f"{_dotted(node.func)}(...)",
                    "CPython reuses ids after collection; key on a "
                    "stable token instead",
                )
        if name in _POOLS and self._loops:
            self._emit(
                "RPR003",
                Severity.WARNING,
                node,
                f"{name} constructed inside a loop",
                "hoist the pool out of the loop and reuse its workers "
                "across iterations",
            )
        self._check_blocking_in_async(node)
        if name == "SharedMemory" and any(
            isinstance(k, ast.keyword)
            and k.arg == "create"
            and isinstance(k.value, ast.Constant)
            and k.value.value is True
            for k in node.keywords
        ):
            if not self.module_text_has_unlink:
                self._emit(
                    "RPR005",
                    Severity.ERROR,
                    node,
                    "SharedMemory(create=True) in a module that never "
                    "unlinks a segment",
                    "register cleanup (atexit.register or a finally "
                    "calling .close()/.unlink()) or the segment "
                    "outlives the process",
                )
        self.generic_visit(node)

    # -- RPR008: blocking calls inside async def ---------------------------

    def _check_blocking_in_async(self, node: ast.Call) -> None:
        """A synchronous stall inside a coroutine freezes the whole loop.

        Only the *innermost* enclosing function matters: a blocking call
        inside a nested sync ``def`` is fine (that function presumably
        runs on a worker thread via ``asyncio.to_thread`` or an
        executor); the same call directly in an ``async def`` body
        stalls every connection the event loop is serving.
        """
        if not self._funcs or not isinstance(
            self._funcs[-1], ast.AsyncFunctionDef
        ):
            return
        dotted = _dotted(node.func)
        blocking = dotted in _BLOCKING_DOTTED or (
            isinstance(node.func, ast.Name) and node.func.id in _BLOCKING_BARE
        )
        if not blocking:
            return
        self._emit(
            "RPR008",
            Severity.ERROR,
            node,
            f"blocking call {dotted}(...) inside async def "
            f"{self._funcs[-1].name!r}",
            "the event loop stalls for every connection while this "
            "runs; use the async equivalent (asyncio.sleep, "
            "asyncio.to_thread, loop.run_in_executor, a subprocess "
            "via asyncio.create_subprocess_exec)",
        )

    # -- RPR002: unguarded module-global mutation --------------------------

    def _flag_global_mutation(self, node: ast.AST, name: str, how: str) -> None:
        if not self._funcs or self._under_lock():
            return
        self._emit(
            "RPR002",
            Severity.ERROR,
            node,
            f"module global {name!r} {how} outside a lock guard",
            "wrap the mutation in the module's lock (e.g. `with "
            "_LOCK:`) or confine the state to one thread",
        )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        t = node.target
        if isinstance(t, ast.Name) and self._is_module_global(t.id):
            self._flag_global_mutation(node, t.id, "is aug-assigned")
        elif isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
            if self._is_module_global(t.value.id):
                self._flag_global_mutation(
                    node, t.value.id, "has an item aug-assigned"
                )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                if self._is_module_global(t.value.id):
                    self._flag_global_mutation(
                        node, t.value.id, "has an item assigned"
                    )
        self._track_arrays(node)
        self.generic_visit(node)

    # -- RPR007: per-element loops over numpy arrays -----------------------

    def _is_array_name(self, name: str) -> bool:
        return any(name in frame for frame in self._arrays)

    def _track_arrays(self, node: ast.Assign) -> None:
        """Record names bound to numpy arrays by this assignment.

        Purely syntactic provenance: direct ``np.*`` construction,
        tuple-unpacking an SoA column bundle (``graph.np_columns()``),
        reading a struct-of-arrays state attribute, or slicing/viewing
        a name already known to be an array.
        """
        v = node.value
        arrayish = False
        if isinstance(v, ast.Call):
            arrayish = _np_rooted(v) or _call_name(v) in _NP_BUNDLES
        elif isinstance(v, ast.Attribute):
            arrayish = v.attr in _SOA_ATTRS
        elif isinstance(v, ast.Subscript):
            arrayish = isinstance(v.value, ast.Name) and self._is_array_name(
                v.value.id
            )
        if not arrayish:
            return
        frame = self._arrays[-1]
        for t in node.targets:
            if isinstance(t, ast.Name):
                frame.add(t.id)
            elif isinstance(t, (ast.Tuple, ast.List)):
                for elt in t.elts:
                    if isinstance(elt, ast.Name):
                        frame.add(elt.id)

    def _check_array_loop(self, node: ast.For) -> None:
        """Flag ``for`` loops that touch a numpy array one element at
        a time — directly iterating it, or indexing it through a
        ``range(...)`` loop variable.  ``zip``/``enumerate``/
        ``.tolist()`` iterations and ``while`` loops are out of scope
        (the scalar oracle uses ``# repro: noqa RPR007`` instead)."""
        it = node.iter
        if isinstance(it, ast.Name) and self._is_array_name(it.id):
            self._emit(
                "RPR007",
                Severity.WARNING,
                node,
                f"per-element for loop over numpy array {it.id!r}",
                "vectorize with numpy ufuncs/fancy indexing (see the "
                "batched SoA kernel), or mark a deliberate scalar "
                "oracle with `# repro: noqa RPR007`",
            )
            return
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
            and isinstance(node.target, ast.Name)
        ):
            return
        var = node.target.id
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Name)
                    and self._is_array_name(sub.value.id)
                    and var in _names_in(sub.slice)
                ):
                    self._emit(
                        "RPR007",
                        Severity.WARNING,
                        node,
                        f"range loop indexes numpy array "
                        f"{sub.value.id!r} one element at a time",
                        "vectorize with numpy ufuncs/fancy indexing "
                        "(see the batched SoA kernel), or mark a "
                        "deliberate scalar oracle with "
                        "`# repro: noqa RPR007`",
                    )
                    return

    def visit_Expr(self, node: ast.Expr) -> None:
        v = node.value
        if (
            isinstance(v, ast.Call)
            and isinstance(v.func, ast.Attribute)
            and v.func.attr in _MUTATORS
            and isinstance(v.func.value, ast.Name)
            and self._is_module_global(v.func.value.id)
        ):
            self._flag_global_mutation(
                node, v.func.value.id, f"is mutated via .{v.func.attr}()"
            )
        self.generic_visit(node)

    # -- RPR004: deadline-poll-missing -------------------------------------

    def _check_deadline_loops(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        params = {
            a.arg
            for a in [
                *func.args.posonlyargs,
                *func.args.args,
                *func.args.kwonlyargs,
            ]
        }
        if "deadline" not in params:
            return
        tracked = self._deadline_derived_names(func)
        for loop, guarded in self._unbounded_loops(func, tracked):
            if guarded:
                continue
            if _names_in(loop) & tracked:
                continue
            self._emit(
                "RPR004",
                Severity.WARNING,
                loop,
                f"unbounded loop in {func.name}() never polls the "
                f"deadline parameter",
                "call deadline.poll() (masked is fine) inside the "
                "loop, or document why the loop is bounded and "
                "suppress with `# repro: noqa RPR004`",
            )

    @staticmethod
    def _deadline_derived_names(func: ast.AST) -> set[str]:
        """``deadline`` plus every local name whose value is computed
        from it (``fast = ... and deadline is None``): a branch on a
        derived flag is a branch on the deadline.  The propagation is a
        tiny intra-function dataflow fixpoint over assignments.
        """
        tracked = {"deadline"}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(func):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not func:
                        continue
                if not isinstance(node, ast.Assign):
                    continue
                if not _names_in(node.value) & tracked:
                    continue
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id not in tracked:
                        tracked.add(t.id)
                        changed = True
        return tracked

    @staticmethod
    def _unbounded_loops(
        func: ast.AST, tracked: set[str] | None = None
    ) -> Iterator[tuple[ast.While, bool]]:
        """Yield ``(while_loop, deadline_guarded)`` for unbounded loops.

        A loop is *unbounded* when its test is a constant true or a bare
        name (``while heap:``) — the classic search-loop shapes.  It is
        *guarded* when some ancestor ``if`` that dominates the loop
        mentions ``deadline`` or a name derived from it (the compiled
        kernel's ``fast`` flag), because the branch already encodes the
        budget decision.
        """
        names = tracked if tracked is not None else {"deadline"}

        def walk(node: ast.AST, guard: bool) -> Iterator[tuple[ast.While, bool]]:
            for child in ast.iter_child_nodes(node):
                g = guard
                if isinstance(child, ast.If) and _names_in(child.test) & names:
                    g = True
                if isinstance(child, ast.While):
                    test = child.test
                    unbounded = (
                        isinstance(test, ast.Constant) and bool(test.value)
                    ) or isinstance(test, ast.Name)
                    if unbounded:
                        yield child, g
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield from walk(child, g)

        yield from walk(func, False)

    # -- RPR006: swallowed exceptions --------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        names: set[str] = set()
        if node.type is not None:
            for sub in ast.walk(node.type):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    names.add(sub.attr)
        has_raise = any(
            isinstance(sub, ast.Raise) for sub in ast.walk(node)
        )
        if node.type is None or names & _BROAD:
            if not has_raise:
                what = "bare except" if node.type is None else (
                    f"except {_dotted(node.type)}"
                )
                self._emit(
                    "RPR006",
                    Severity.WARNING,
                    node,
                    f"{what} swallows all failures (no re-raise in the "
                    f"handler)",
                    "catch the narrowest type that can actually occur, "
                    "or re-raise after cleanup",
                )
        elif names & _FAILURES:
            body = node.body
            if all(isinstance(s, (ast.Pass, ast.Continue)) for s in body):
                self._emit(
                    "RPR006",
                    Severity.WARNING,
                    node,
                    f"except {_dotted(node.type)} discards the failure "
                    f"and its structured context",
                    "log the failure (it carries row/col/wire context) "
                    "or let it propagate",
                )
        self.generic_visit(node)


def lint_parsed(
    path: str, source: str, tree: ast.Module
) -> list[Finding]:
    """Raw syntactic findings for an already-parsed module.

    No suppression is applied: the whole-program driver merges these
    with the interprocedural findings first, *then* resolves
    ``# repro: noqa`` once over the union (so a directive suppressing
    only an interprocedural rule still counts as used).
    """
    linter = _CodeLinter(path, source, tree)
    linter.visit(tree)
    return linter.findings


def apply_noqa(
    findings: list[Finding], noqa: dict[int, frozenset[str] | None]
) -> tuple[list[Finding], list[Finding], set[int]]:
    """Split findings into ``(kept, suppressed, used_directive_lines)``."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[int] = set()
    for f in findings:
        line = f.line or 0
        if line in noqa:
            ids = noqa[line]
            if ids is None or f.rule in ids:
                suppressed.append(f)
                used.add(line)
                continue
        kept.append(f)
    kept.sort(key=lambda f: (f.line or 0, f.col or 0, f.rule))
    return kept, suppressed, used


def lint_source(
    source: str, path: str = "<input>"
) -> tuple[list[Finding], list[Finding]]:
    """Lint Python source text; returns ``(findings, suppressed)``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as e:
        f = Finding.make(
            "RPR006",
            Severity.ERROR,
            f"cannot parse: {e.msg}",
            hint="the code linter needs syntactically valid Python",
            file=path,
            line=e.lineno,
            col=(e.offset - 1) if e.offset else None,
        )
        return [f], []
    kept, suppressed, _ = apply_noqa(
        lint_parsed(path, source, tree), parse_noqa(source)
    )
    return kept, suppressed


def lint_file(path: str) -> tuple[list[Finding], list[Finding]]:
    """Lint one Python file; returns ``(findings, suppressed)``."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        return lint_source(fh.read(), path)
