"""Orchestration: sweep paths through all three analysis engines.

``analyze_paths`` is what the CLI and CI call: Python files are parsed
once, swept by the AST hazard detector
(:mod:`repro.analysis.codelint`), then indexed into a whole-program
:class:`~repro.analysis.callgraph.CallGraph` for the interprocedural
passes (:mod:`repro.analysis.dataflow` — blocking-call closure, lock
ordering, spawn-reachability, resource paths).  Everything else is
sniffed and routed to the artifact linter
(:mod:`repro.analysis.routelint`).  Directories are walked recursively;
with no paths at all, the installed ``repro`` package source is analysed
— the self-hosting default that CI gates on.

Two CI-shaped refinements ride on top:

* ``changed_only`` (the CLI's ``--diff <git-ref>``) keeps the *report*
  to files changed against a ref while the call graph is still built
  whole-program — an unchanged helper newly reached from a changed
  ``async def`` is still convicted, at the changed call site.
* ``baseline`` (the CLI's ``--baseline findings.json``) suppresses
  known findings so new rules can land without a flag-day; baselined
  findings stay visible in the report's ``suppressed`` list.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
from typing import Iterable, Sequence

from . import codelint, dataflow, routelint
from .callgraph import CallGraph, ProjectIndex
from .findings import Finding, Report, Severity
from .rules import RULES

__all__ = [
    "analyze_paths",
    "default_target",
    "filter_rules",
    "changed_files",
    "load_baseline",
    "write_baseline",
    "baseline_key",
]

#: directories never descended into during a sweep
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: artifact extensions worth sniffing (anything else non-.py is skipped
#: during directory walks; explicit file arguments are always analysed)
_ARTIFACT_EXTS = {".json", ".wal", ".ckpt", ".plan", ".tpl"}

#: version of the baseline file format
_BASELINE_VERSION = 1


def default_target() -> str:
    """The package's own source tree (self-hosting target)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _walk(root: str) -> Iterable[tuple[str, bool]]:
    """Yield ``(path, explicit)`` for files under ``root``."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            yield os.path.join(dirpath, name), False


def analyze_paths(
    paths: Sequence[str] | None = None,
    *,
    part: str | None = None,
    rules: frozenset[str] | None = None,
    interprocedural: bool = True,
    changed_only: "set[str] | None" = None,
    baseline: "dict[tuple[str, str, str], int] | None" = None,
) -> Report:
    """Run every engine over ``paths`` (default: the repro package).

    ``rules`` restricts the report to a rule-id subset; suppression
    accounting is unaffected.  ``changed_only`` filters *reported*
    findings to those files (absolute paths) after the whole-program
    passes ran over everything.  ``baseline`` (see
    :func:`load_baseline`) moves known findings to ``suppressed``.
    Unreadable paths become findings, not exceptions, so a CI sweep
    always produces a report.
    """
    report = Report()
    work: list[tuple[str, bool]] = []
    for p in paths if paths else [default_target()]:
        if os.path.isdir(p):
            work.extend(_walk(p))
        else:
            work.append((p, True))

    # -- pass 1: parse every Python module once ---------------------------
    py_items: list[tuple[str, str, ast.Module]] = []
    per_file: dict[str, list[Finding]] = {}
    for path, explicit in work:
        ext = os.path.splitext(path)[1].lower()
        if ext != ".py":
            continue
        report.inputs.append(path)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                source = fh.read()
        except OSError as e:
            report.add(_unreadable(path, e))
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as e:
            report.add(
                Finding.make(
                    "RPR006",
                    Severity.ERROR,
                    f"cannot parse: {e.msg}",
                    hint="the code linter needs syntactically valid Python",
                    file=path,
                    line=e.lineno,
                    col=(e.offset - 1) if e.offset else None,
                )
            )
            continue
        py_items.append((path, source, tree))
        per_file[path] = codelint.lint_parsed(path, source, tree)

    # -- pass 2: whole-program call graph + dataflow ----------------------
    if interprocedural and py_items:
        index = ProjectIndex.build(py_items)
        graph = CallGraph.build(index)
        inter = dataflow.analyze_project(index, graph)
        for f in inter.findings:
            per_file.setdefault(f.file, []).append(f)
        # withdraw syntactic RPR004 findings proven bounded by a
        # deadline-polling helper called inside the loop
        for path, findings in per_file.items():
            per_file[path] = [
                f
                for f in findings
                if not (
                    f.rule == "RPR004"
                    and (f.file, f.line or 0) in inter.rpr004_exempt
                )
            ]

    # -- pass 3: per-file suppression + unused-directive accounting ------
    sources = {path: source for path, source, _tree in py_items}
    for path, _source, _tree in py_items:
        findings = _dedupe(per_file.get(path, []))
        noqa = codelint.parse_noqa(sources[path])
        kept, suppressed, used = codelint.apply_noqa(findings, noqa)
        for line in sorted(set(noqa) - used):
            kept.append(
                Finding.make(
                    "RPR013",
                    Severity.INFO,
                    "unused suppression: no finding on this line needs "
                    "`# repro: noqa`",
                    hint="delete the stale directive (it would silently "
                    "waive a future regression on this line)",
                    file=path,
                    line=line,
                )
            )
        report.extend(kept)
        report.suppressed.extend(suppressed)

    # -- artifacts --------------------------------------------------------
    for path, explicit in work:
        ext = os.path.splitext(path)[1].lower()
        if ext == ".py":
            continue
        if explicit or ext in _ARTIFACT_EXTS:
            report.inputs.append(path)
            try:
                _, findings = routelint.lint_artifact_file(path, part=part)
            except OSError as e:
                report.add(_unreadable(path, e))
                continue
            report.extend(findings)

    # -- report-shaping ---------------------------------------------------
    if rules is not None:
        report.findings = [f for f in report.findings if f.rule in rules]
    if changed_only is not None:
        changed = {os.path.abspath(p) for p in changed_only}
        report.findings = [
            f for f in report.findings if os.path.abspath(f.file) in changed
        ]
        report.suppressed = [
            f
            for f in report.suppressed
            if os.path.abspath(f.file) in changed
        ]
    if baseline:
        remaining = dict(baseline)
        fresh: list[Finding] = []
        for f in report.findings:
            key = baseline_key(f)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                report.suppressed.append(f)
            else:
                fresh.append(f)
        report.findings = fresh
    report.sort()
    return report


def _dedupe(findings: list[Finding]) -> list[Finding]:
    """Drop same-rule-same-line duplicates (the syntactic and
    interprocedural engines can both convict one call site)."""
    seen: set[tuple[str, str, int]] = set()
    out: list[Finding] = []
    for f in findings:
        key = (f.rule, f.file, f.line or 0)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def _unreadable(path: str, err: OSError) -> Finding:
    return Finding.make(
        "RL007",
        Severity.ERROR,
        f"unreadable input: {err}",
        hint="check the path and permissions",
        file=path,
    )


def filter_rules(spec: str) -> frozenset[str]:
    """Parse a ``--rules RPR001,RL004`` spec, validating ids."""
    ids = frozenset(s.strip() for s in spec.split(",") if s.strip())
    unknown = ids - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule ids: {', '.join(sorted(unknown))} "
            f"(see `repro analyze --list-rules`)"
        )
    return ids


# ---------------------------------------------------------------------------
# --diff support


def changed_files(ref: str, *, cwd: str | None = None) -> set[str]:
    """Absolute paths of files changed versus ``ref`` (``git diff`` +
    untracked), for ``repro analyze --diff``.

    Raises ``ValueError`` with git's stderr when the ref is unknown or
    the directory is not a repository — the CLI maps that to exit 2.
    """
    base = cwd or os.getcwd()
    try:
        top = _git(["rev-parse", "--show-toplevel"], base).strip()
        diff = _git(["diff", "--name-only", "--diff-filter=d", ref], base)
        untracked = _git(
            ["ls-files", "--others", "--exclude-standard"], base
        )
    except subprocess.CalledProcessError as e:
        raise ValueError(
            f"git diff against {ref!r} failed: "
            f"{(e.stderr or '').strip() or e}"
        ) from e
    except OSError as e:  # git not installed
        raise ValueError(f"cannot run git: {e}") from e
    out: set[str] = set()
    for line in (diff + untracked).splitlines():
        line = line.strip()
        if line:
            out.add(os.path.join(top, line))
    return out


def _git(args: list[str], cwd: str) -> str:
    proc = subprocess.run(
        ["git", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        check=True,
    )
    return proc.stdout


# ---------------------------------------------------------------------------
# --baseline support


def baseline_key(f: Finding) -> tuple[str, str, str]:
    """Stable identity of a finding across commits: relative path, rule
    and message (line numbers drift with every edit and are excluded)."""
    path = f.file
    try:
        rel = os.path.relpath(os.path.abspath(path))
    except ValueError:  # different drive (windows)
        rel = path
    return (rel, f.rule, f.message)


def load_baseline(path: str) -> dict[tuple[str, str, str], int]:
    """Load a baseline written by :func:`write_baseline` into the
    multiset ``analyze_paths`` consumes."""
    with open(path, "r", encoding="utf-8") as fh:
        body = json.load(fh)
    if body.get("version") != _BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {body.get('version')!r}"
        )
    out: dict[tuple[str, str, str], int] = {}
    for entry in body.get("findings", []):
        key = (entry["file"], entry["rule"], entry["message"])
        out[key] = out.get(key, 0) + 1
    return out


def write_baseline(report: Report, path: str) -> int:
    """Write the report's current findings as the new baseline; returns
    how many entries were recorded."""
    entries = [
        {"file": k[0], "rule": k[1], "message": k[2]}
        for k in map(baseline_key, report.findings)
    ]
    body = {"version": _BASELINE_VERSION, "findings": entries}
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(body, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return len(entries)
