"""Orchestration: sweep paths through both analysis engines.

``analyze_paths`` is what the CLI and CI call: Python files go through
the AST hazard detector (:mod:`repro.analysis.codelint`), everything
else is sniffed and routed to the artifact linter
(:mod:`repro.analysis.routelint`).  Directories are walked recursively;
with no paths at all, the installed ``repro`` package source is analysed
— the self-hosting default that CI gates on.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from . import codelint, routelint
from .findings import Finding, Report, Severity
from .rules import RULES

__all__ = ["analyze_paths", "default_target", "filter_rules"]

#: directories never descended into during a sweep
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}

#: artifact extensions worth sniffing (anything else non-.py is skipped
#: during directory walks; explicit file arguments are always analysed)
_ARTIFACT_EXTS = {".json", ".wal", ".ckpt", ".plan", ".tpl"}


def default_target() -> str:
    """The package's own source tree (self-hosting target)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _walk(root: str) -> Iterable[tuple[str, bool]]:
    """Yield ``(path, explicit)`` for files under ``root``."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            yield os.path.join(dirpath, name), False


def analyze_paths(
    paths: Sequence[str] | None = None,
    *,
    part: str | None = None,
    rules: frozenset[str] | None = None,
) -> Report:
    """Run both engines over ``paths`` (default: the repro package).

    ``rules`` restricts the report to a rule-id subset; suppression
    accounting is unaffected.  Unreadable paths become findings, not
    exceptions, so a CI sweep always produces a report.
    """
    report = Report()
    work: list[tuple[str, bool]] = []
    for p in paths if paths else [default_target()]:
        if os.path.isdir(p):
            work.extend(_walk(p))
        else:
            work.append((p, True))
    for path, explicit in work:
        ext = os.path.splitext(path)[1].lower()
        if ext == ".py":
            report.inputs.append(path)
            try:
                kept, suppressed = codelint.lint_file(path)
            except OSError as e:
                report.add(_unreadable(path, e))
                continue
            report.extend(kept)
            report.suppressed.extend(suppressed)
        elif explicit or ext in _ARTIFACT_EXTS:
            report.inputs.append(path)
            try:
                _, findings = routelint.lint_artifact_file(path, part=part)
            except OSError as e:
                report.add(_unreadable(path, e))
                continue
            report.extend(findings)
    if rules is not None:
        report.findings = [f for f in report.findings if f.rule in rules]
    report.sort()
    return report


def _unreadable(path: str, err: OSError) -> Finding:
    return Finding.make(
        "RL007",
        Severity.ERROR,
        f"unreadable input: {err}",
        hint="check the path and permissions",
        file=path,
    )


def filter_rules(spec: str) -> frozenset[str]:
    """Parse a ``--rules RPR001,RL004`` spec, validating ids."""
    ids = frozenset(s.strip() for s in spec.split(",") if s.strip())
    unknown = ids - set(RULES)
    if unknown:
        raise ValueError(
            f"unknown rule ids: {', '.join(sorted(unknown))} "
            f"(see `repro analyze --list-rules`)"
        )
    return ids
