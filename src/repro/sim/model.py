"""Functional simulation of a configured device.

The paper's toolchain pairs JRoute with BoardScope, which observes a
*running* device.  This module provides the running device: a LUT-level
functional simulator over the simulated fabric's routing state and LUT /
flip-flop configuration, so a routed design actually computes — the
counter counts, the adder adds — and tests can verify routing + logic
end-to-end rather than structurally.

Semantics
---------
* The logical value of any wire is the value of its net's source (ideal
  interconnect: the routing forest only transports values).
* A slice's combinational outputs (X, Y) evaluate their LUT over the
  values arriving at the LUT input pins (unconnected inputs read 0, or a
  value forced with :meth:`Simulator.force`).
* A slice's registered outputs (XQ, YQ) hold flip-flop state; sites whose
  FF mode bit is set latch their LUT's combinational value on
  :meth:`Simulator.step`.
* Sources with no logic behind them (unconfigured slice outputs, global
  nets) read 0 unless forced — that is how testbenches inject stimuli.

Combinational cycles through LUTs raise :class:`CombinationalLoopError`;
cycles through flip-flops are fine (that is what state machines are).

Clocking model: :meth:`Simulator.step` advances one global clock edge —
every enabled flip-flop latches, regardless of which physical clock net
reaches its CLK pin (a single-clock-domain simplification; the routing
of clock nets is still fully modelled and checked by the router).
"""

from __future__ import annotations

from .. import errors
from ..arch import wires
from ..arch.wires import WireClass
from ..device.fabric import Device
from ..jbits.jbits import JBits

__all__ = ["Simulator", "CombinationalLoopError"]


class CombinationalLoopError(errors.JRouteError):
    """The configured design has a combinational cycle through LUTs."""


#: per-site (lut index) static pin sets:
#: (inputs, comb_out, reg_out, write_enable, data_in)
_SITE_PINS = (
    (tuple(wires.S0F[1:5]), wires.S0_X, wires.S0_XQ, wires.S0_CE, wires.S0_BX),
    (tuple(wires.S0G[1:5]), wires.S0_Y, wires.S0_YQ, wires.S0_CE, wires.S0_BY),
    (tuple(wires.S1F[1:5]), wires.S1_X, wires.S1_XQ, wires.S1_CE, wires.S1_BX),
    (tuple(wires.S1G[1:5]), wires.S1_Y, wires.S1_YQ, wires.S1_CE, wires.S1_BY),
)

#: slice-mode bit offsets: 0..3 FF enable per site, 4..7 LUT-RAM mode
RAM_MODE_BIT_BASE = 4

_COMB_OUT_TO_SITE = {pins[1]: i for i, pins in enumerate(_SITE_PINS)}
_REG_OUT_TO_SITE = {pins[2]: i for i, pins in enumerate(_SITE_PINS)}


class Simulator:
    """Functional simulator bound to a device and its JBits configuration.

    Parameters
    ----------
    device:
        The routed device.
    jbits:
        Its configuration (LUT truth tables, FF mode bits, global
        buffers).  Usually ``router.jbits``.
    """

    def __init__(self, device: Device, jbits: JBits) -> None:
        self.device = device
        self.jbits = jbits
        #: forced source values, by canonical wire id
        self._forced: dict[int, int] = {}
        #: flip-flop state: (row, col, site) -> 0/1
        self._ff: dict[tuple[int, int, int], int] = {}
        #: global net values (clock modelling is explicit via step())
        self._globals = [0] * wires.N_GCLK
        self.cycle = 0
        #: cached (FF sites, RAM sites); invalidated via invalidate()
        self._site_cache: tuple[list, list] | None = None

    # -- stimulus ----------------------------------------------------------------

    def force(self, row: int, col: int, name: int, value: int) -> None:
        """Force a wire's *source* value (testbench stimulus).

        Forcing a slice output overrides its LUT; forcing an input pin
        provides a default used only while the pin is unrouted.
        """
        canon = self.device.resolve(row, col, name)
        self._forced[canon] = 1 if value else 0

    def release(self, row: int, col: int, name: int) -> None:
        """Remove a forced value."""
        self._forced.pop(self.device.resolve(row, col, name), None)

    def set_global(self, index: int, value: int) -> None:
        """Drive one of the four dedicated global nets."""
        self._globals[index] = 1 if value else 0

    # -- value evaluation -----------------------------------------------------------

    def wire_value(self, row: int, col: int, name: int) -> int:
        """The logical value observed on a wire at a tile."""
        return self._value(self.device.resolve(row, col, name), set())

    def _value(self, canon: int, visiting: set[int]) -> int:
        root = self.device.state.root_of(canon)
        forced = self._forced.get(root)
        if forced is not None:
            return forced
        arch = self.device.arch
        cls = arch.wire_class_of(root)
        if cls is WireClass.GCLK:
            _, _, name = arch.primary_name(root)
            return self._globals[name - wires.GCLK[0]]
        if cls is WireClass.IOB_IN:
            return 0  # unforced input pad reads low
        if cls is not WireClass.SLICE_OUT:
            return 0  # undriven interconnect or unconfigured pin
        row, col, name = arch.primary_name(root)
        site = _COMB_OUT_TO_SITE.get(name)
        if site is not None:
            return self._comb(row, col, site, visiting)
        site = _REG_OUT_TO_SITE[name]
        return self._ff.get((row, col, site), 0)

    def _comb(self, row: int, col: int, site: int, visiting: set[int]) -> int:
        key_wire = self.device.resolve(row, col, _SITE_PINS[site][1])
        if key_wire in visiting:
            raise CombinationalLoopError(
                f"combinational cycle through LUT site {site} at "
                f"({row},{col})"
            )
        visiting.add(key_wire)
        try:
            truth = self.jbits.get_lut(row, col, site)
            addr = 0
            for bit, pin in enumerate(_SITE_PINS[site][0]):
                canon = self.device.resolve(row, col, pin)
                if self.device.state.is_driven(canon):
                    v = self._value(canon, visiting)
                else:
                    v = self._forced.get(canon, 0)
                addr |= v << bit
            return (truth >> addr) & 1
        finally:
            visiting.remove(key_wire)

    # -- sequential behaviour ---------------------------------------------------------

    def _scan_sites(self) -> tuple[list, list]:
        if self._site_cache is None:
            ff, ram = [], []
            for row in range(self.device.rows):
                for col in range(self.device.cols):
                    for site in range(4):
                        if self.jbits.get_mode_bit(row, col, site):
                            ff.append((row, col, site))
                        if self.jbits.get_mode_bit(
                            row, col, RAM_MODE_BIT_BASE + site
                        ):
                            ram.append((row, col, site))
            self._site_cache = (ff, ram)
        return self._site_cache

    def invalidate(self) -> None:
        """Drop cached site lists after a reconfiguration.

        The site scan is cached for speed; call this (or build a fresh
        Simulator) after changing FF/RAM mode bits.  LUT truth-table
        rewrites (constants, KCM swaps, RAM writes) do not need it.
        """
        self._site_cache = None

    def registered_sites(self) -> list[tuple[int, int, int]]:
        """All (row, col, site) with their FF mode bit set (cached)."""
        return self._scan_sites()[0]

    def ram_sites(self) -> list[tuple[int, int, int]]:
        """All (row, col, site) configured as distributed LUT-RAM (cached)."""
        return self._scan_sites()[1]

    def step(self, cycles: int = 1) -> None:
        """Advance the clock: FFs latch their LUT values, and LUT-RAM
        sites with write-enable high store their data input at the
        addressed entry (the write lands in the configuration bits, so
        readback sees the memory contents, as on the device).

        All state updates are computed first, then applied simultaneously
        (two-phase evaluation).
        """
        ff_sites, ram = self._scan_sites()
        for _ in range(cycles):
            nxt = {
                (row, col, site): self._comb(row, col, site, set())
                for row, col, site in ff_sites
            }
            writes = []
            for row, col, site in ram:
                we = self._pin_value(row, col, _SITE_PINS[site][3])
                if not we:
                    continue
                addr = 0
                for bit, pin in enumerate(_SITE_PINS[site][0]):
                    addr |= self._pin_value(row, col, pin) << bit
                data = self._pin_value(row, col, _SITE_PINS[site][4])
                writes.append((row, col, site, addr, data))
            self._ff.update(nxt)
            for row, col, site, addr, data in writes:
                truth = self.jbits.get_lut(row, col, site)
                truth = (truth | (1 << addr)) if data else (truth & ~(1 << addr))
                self.jbits.set_lut(row, col, site, truth)
            self.cycle += 1

    def _pin_value(self, row: int, col: int, pin: int) -> int:
        """Value at an input pin: its net's value, or a forced default."""
        canon = self.device.resolve(row, col, pin)
        if self.device.state.is_driven(canon):
            return self._value(canon, set())
        return self._forced.get(canon, 0)

    def reset(self) -> None:
        """Clear all flip-flop state and the cycle counter."""
        self._ff.clear()
        self.cycle = 0

    # -- convenience --------------------------------------------------------------------

    def read_bus(self, pins) -> int:
        """Read a little-endian bus of pins/ports as an integer."""
        from ..core.endpoints import Pin, Port

        value = 0
        for i, ep in enumerate(pins):
            if isinstance(ep, Port):
                pin = ep.resolve_pins()[0]
            elif isinstance(ep, Pin):
                pin = ep
            else:
                raise errors.JRouteError(f"not a pin or port: {ep!r}")
            value |= self.wire_value(pin.row, pin.col, pin.wire) << i
        return value

    def drive_bus(self, pins, value: int) -> None:
        """Force a little-endian bus of source pins to an integer value."""
        from ..core.endpoints import Pin, Port

        for i, ep in enumerate(pins):
            if isinstance(ep, Port):
                for pin in ep.resolve_pins():
                    self.force(pin.row, pin.col, pin.wire, (value >> i) & 1)
            else:
                self.force(ep.row, ep.col, ep.wire, (value >> i) & 1)
