"""Functional LUT-level simulation of a configured device.

An extension beyond the paper's scope (its BoardScope observed real
hardware): lets tests and examples verify that a routed, configured
design actually computes — see :class:`~repro.sim.model.Simulator`.
"""

from .model import CombinationalLoopError, Simulator

__all__ = ["Simulator", "CombinationalLoopError"]
