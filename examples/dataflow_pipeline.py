"""A dataflow design built from cores and port-to-port bus routing.

The paper's motivating use case (Section 3.1): "In a data flow design,
the outputs of one stage go to the inputs of the next stage. ... the
output ports of a multiplier core could be connected to the input ports
of an adder core."

Builds multiplier -> adder -> register, distributes a global clock, and
renders the resulting fabric occupancy.  Run::

    python examples/dataflow_pipeline.py
"""

from repro import JRouter
from repro.cores import AdderCore, ConstantMultiplierCore, RegisterCore
from repro.debug import BoardScope, congestion_stats, render_occupancy


def main() -> None:
    router = JRouter(part="XCV100")

    # place the stages
    mult = ConstantMultiplierCore(router, "mult", 2, 2, width=4, constant=11)
    adder = AdderCore(router, "acc", 2, 6, width=mult.out_width)
    reg = RegisterCore(router, "out", 2, 10, width=mult.out_width)
    print(f"placed: {mult}, {adder}, {reg}")

    # port-to-port buses: no wire names, no architecture knowledge
    router.route(list(mult.get_ports("out")), list(adder.get_ports("a")))
    router.route(list(adder.get_ports("sum")), list(reg.get_ports("d")))

    # clock the register from dedicated global net 0
    router.route_clock(0, [reg.get_ports("clk")[0]])

    scope = BoardScope(router.device, router.jbits)
    print("\nstate:", scope.summary())
    problems = scope.crosscheck()
    print("coherence problems:", problems or "none")

    print("\nper-class utilisation:")
    for cls, frac in sorted(congestion_stats(router.device).items()):
        if frac:
            print(f"  {cls:10s} {frac:6.2%}")

    print("\nfabric occupancy (north up):")
    print(render_occupancy(router.device))


if __name__ == "__main__":
    main()
