"""Run-time floorplan defragmentation: a tool built on the JRoute API.

A long-running RTR system fragments its free area.  This example places
cores scattered across the device, shows that a large new core no longer
fits, compacts the floorplan with the defrag tool (every move is a paper
Section 3.3 relocation with automatic reconnection), and then places the
core that previously did not fit — while a live accumulator keeps its
routing and its function through all the moves.  Run::

    python examples/defragmentation.py
"""

from repro import JRouter
from repro.cores import AccumulatorCore, ConstantCore, RegisterCore
from repro.cores.core import _floorplan_of
from repro.debug import render_occupancy
from repro.sim import Simulator
from repro.tools import defrag, find_fit, largest_free_rect


def main() -> None:
    router = JRouter(part="XCV100")

    # a fragmented system: live cores scattered over the fabric
    acc = AccumulatorCore(router, "acc", 8, 12, width=4)
    k = ConstantCore(router, "k", 3, 22, width=4, value=3)
    mon = RegisterCore(router, "mon", 14, 5, width=4)
    router.route(list(k.get_ports("out")), list(acc.get_ports("in")))
    router.route(list(acc.get_ports("q")), list(mon.get_ports("d")))

    sim = Simulator(router.device, router.jbits)
    sim.step(4)
    print(f"accumulator after 4 clocks: {sim.read_bus(acc.get_ports('q'))}")

    fp = _floorplan_of(router)
    free = largest_free_rect(fp)
    print(f"\nlargest free rectangle: {free.height}x{free.width} "
          f"at ({free.row},{free.col})")
    want = (18, 24)
    print(f"want to place a {want[0]}x{want[1]} core: "
          f"fits = {find_fit(fp, *want) is not None}")

    print("\noccupancy before defrag:")
    print(render_occupancy(router.device, max_scale=8))

    result = defrag(router, [acc, k, mon])
    print(f"\ndefrag moved {len(result.moves)} core(s):")
    for name, old, new in result.moves:
        print(f"  {name}: {old} -> {new}")
    free = result.largest_free_after
    print(f"largest free rectangle now: {free.height}x{free.width}")
    print(f"the {want[0]}x{want[1]} core fits now = "
          f"{find_fit(fp, *want) is not None}")

    print("\noccupancy after defrag:")
    print(render_occupancy(router.device, max_scale=8))

    # the relocated design is fully routed and functional (a fresh
    # simulator starts the flip-flops from reset)
    sim = Simulator(router.device, router.jbits)
    sim.step(4)
    q_ports = [router.netdb.port_registry[("port", "acc", "q", i, f"q{i}")]
               for i in range(4)]
    print(f"\nrelocated accumulator, 4 clocks from reset: "
          f"{sim.read_bus(q_ports)} (still 3 per clock)")


if __name__ == "__main__":
    main()
