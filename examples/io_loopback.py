"""Off-chip I/O: the IOB ring in action (paper Section 6 future work).

An 8-bit bus enters on the west pads, passes through an adder (+3) and a
register, and leaves on the east pads; the functional simulator drives
patterns into the input pads and reads the result off the output pads.
Run::

    python examples/io_loopback.py
"""

from repro import JRouter
from repro.cores import AdderCore, ConstantCore, RegisterCore
from repro.io import IoRing, PadDirection, Side
from repro.sim import Simulator


def main() -> None:
    router = JRouter(part="XCV100")
    ring = IoRing(router.device.arch)
    print(f"device has {ring.n_pads()} pads")

    width = 8
    adder = AdderCore(router, "add", 6, 6, width=width)
    three = ConstantCore(router, "three", 6, 8, width=width, value=3)
    reg = RegisterCore(router, "reg", 6, 10, width=width)

    in_bus = ring.bus(Side.WEST, PadDirection.IN, width, offset=12)
    out_bus = ring.bus(Side.EAST, PadDirection.OUT, width, offset=12)

    router.route(in_bus, [p for p in adder.get_ports("a")])
    router.route(list(three.get_ports("out")), list(adder.get_ports("b")))
    router.route(list(adder.get_ports("sum")), list(reg.get_ports("d")))
    router.route(list(reg.get_ports("q")), out_bus)
    print(f"routed: {router.device.state.n_pips_on} PIPs")

    sim = Simulator(router.device, router.jbits)
    print("\n  in | out (in + 3, registered)")
    print("  ---+----")
    for value in (0x00, 0x05, 0x10, 0x42, 0xF0):
        sim.drive_bus(in_bus, value)
        sim.step()
        print(f"  {value:02X} | {sim.read_bus(out_bus):02X}")


if __name__ == "__main__":
    main()
