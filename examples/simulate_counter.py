"""Functional simulation: watch the Section 4 counter actually count.

Builds the paper's counter (adder + feedback register + constant one),
attaches a monitor register and an equality comparator ("count == 11"),
then steps the clock and prints the live values — the closest this
reproduction gets to BoardScope attached to a running board.  Run::

    python examples/simulate_counter.py
"""

from repro import JRouter
from repro.cores import ComparatorCore, ConstantCore, CounterCore, RegisterCore
from repro.sim import Simulator


def main() -> None:
    router = JRouter(part="XCV100")

    ctr = CounterCore(router, "ctr", 2, 2, width=4)
    mon = RegisterCore(router, "mon", 2, 8, width=4)
    cmp_ = ComparatorCore(router, "cmp", 8, 2, width=4)
    target = ConstantCore(router, "target", 8, 6, width=4, value=11)

    router.route(list(ctr.get_ports("q")), list(mon.get_ports("d")))
    router.route(list(ctr.get_ports("q")), list(cmp_.get_ports("a")))
    router.route(list(target.get_ports("out")), list(cmp_.get_ports("b")))

    sim = Simulator(router.device, router.jbits)
    print("cycle | counter | monitor | count==11")
    print("------+---------+---------+----------")
    for _ in range(16):
        q = sim.read_bus(ctr.get_ports("q"))
        m = sim.read_bus(mon.get_ports("q"))
        eq = sim.read_bus(cmp_.get_ports("eq"))
        print(f"{sim.cycle:5d} | {q:7d} | {m:7d} | {'  <-- hit' if eq else ''}")
        sim.step()

    # run-time reparameterisation: change the match target, keep running
    print("\nretargeting comparator to 3 (LUT rewrite, no re-routing)...")
    target.set_value(3)
    for _ in range(6):
        q = sim.read_bus(ctr.get_ports("q"))
        eq = sim.read_bus(cmp_.get_ports("eq"))
        print(f"{sim.cycle:5d} | {q:7d} |         | {'  <-- hit' if eq else ''}")
        sim.step()


if __name__ == "__main__":
    main()
