"""Distributed LUT-RAM: a scratchpad memory with routed ports.

Builds a 16x8 RAM from LUT memory (the CLB-fabric counterpart of the
Block RAM the paper lists as future work), writes a pattern through
routed data ports, reads it back, and shows that the memory contents
live in the configuration bits — a partial readback captures them.
Run::

    python examples/scratchpad_ram.py
"""

from repro import JRouter
from repro.cores import LutRamCore
from repro.jbits import write_bitstream
from repro.sim import Simulator


def main() -> None:
    router = JRouter(part="XCV100")
    ram = LutRamCore(router, "scratch", 4, 4, width=8,
                     init=(0xDE, 0xAD, 0xBE, 0xEF))
    print("initial contents:",
          " ".join(f"{v:02X}" for v in ram.read_contents()))

    sim = Simulator(router.device, router.jbits)

    # asynchronous reads of the init pattern
    for addr in range(4):
        sim.drive_bus(ram.get_ports("addr"), addr)
        print(f"  read [{addr}] -> {sim.read_bus(ram.get_ports('dout')):02X}")

    # write a counting pattern into the upper half
    router.jbits.memory.clear_dirty()
    sim.drive_bus(ram.get_ports("we"), 1)
    for addr in range(8, 16):
        sim.drive_bus(ram.get_ports("addr"), addr)
        sim.drive_bus(ram.get_ports("din"), addr * 16 + addr)
        sim.step()
    sim.drive_bus(ram.get_ports("we"), 0)
    print("after writes:   ",
          " ".join(f"{v:02X}" for v in ram.read_contents()))

    # the writes live in configuration bits: ship them as a partial stream
    dirty = router.jbits.memory.dirty_frames
    partial = write_bitstream(router.jbits.memory, dirty)
    print(f"memory state captured by {len(dirty)} dirty frames "
          f"({len(partial):,} bytes of partial bitstream)")


if __name__ == "__main__":
    main()
