"""Quickstart: the paper's Section 3.1 running example, at every level.

Routes S1_YQ at CLB (5,7) to S0F3 at CLB (6,8) four ways — explicit PIPs,
a Path, a Template, and full auto-routing — tracing and unrouting between
attempts.  Run::

    python examples/quickstart.py
"""

from repro import JRouter, Path, Pin, Template, wires
from repro.arch.templates import TemplateValue as TV


def main() -> None:
    router = JRouter(part="XCV50")
    src = Pin(5, 7, wires.S1_YQ)
    sink = Pin(6, 8, wires.S0F[3])

    # Level 1 — the user decides the path, one PIP at a time
    print("== level 1: explicit PIPs ==")
    router.route(5, 7, wires.S1_YQ, wires.OUT[1])
    router.route(5, 7, wires.OUT[1], wires.SINGLE_E[5])
    router.route(5, 8, wires.SINGLE_W[5], wires.SINGLE_N[0])
    router.route(6, 8, wires.SINGLE_S[0], wires.S0F[3])
    print(router.trace(src).describe(router.device))
    router.unroute(src)

    # Level 2 — a Path object names the resources; the router walks tiles
    print("\n== level 2: Path ==")
    path = Path(5, 7, [wires.S1_YQ, wires.OUT[1], wires.SINGLE_E[5],
                       wires.SINGLE_N[0], wires.S0F[3]])
    router.route(path)
    print(router.trace(src).describe(router.device))
    router.unroute(src)

    # Level 3 — a Template names only direction/resource classes
    print("\n== level 3: Template ==")
    template = Template([TV.OUTMUX, TV.EAST1, TV.NORTH1, TV.CLBIN])
    router.route(src, wires.S0F[3], template)
    print(router.trace(src).describe(router.device))
    router.unroute(src)

    # Level 4 — auto-routing: predefined templates, maze fallback
    print("\n== level 4: auto point-to-point ==")
    router.route(src, sink)
    print(router.trace(src).describe(router.device))
    print(f"(template hits: {router.p2p_template_hits}, "
          f"maze fallbacks: {router.p2p_maze_fallbacks})")

    # Level 5 — one source, many sinks (greedy fanout with tree reuse)
    print("\n== level 5: fanout ==")
    router.unroute(src)
    sinks = [sink, Pin(9, 12, wires.S0G[1]), Pin(3, 2, wires.S1F[2])]
    router.route(src, sinks)
    trace = router.trace(src)
    print(f"net reaches {len(trace.sinks)} sinks through "
          f"{len(trace.pips)} PIPs")

    # reverse operations: trace a sink back, free one branch
    print("\n== reverse trace / reverse unroute ==")
    branch = router.reverse_trace(sinks[1])
    print(f"branch to {sinks[1]}: {len(branch)} PIPs")
    router.reverse_unroute(sinks[1])
    print(f"after reverse_unroute: {len(router.trace(src).sinks)} sinks remain")

    router.unroute(src)
    assert router.device.state.n_pips_on == 0
    print("\nall connections removed; device is clean")


if __name__ == "__main__":
    main()
