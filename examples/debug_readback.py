"""BoardScope-style debugging: state views, readback, bitstream shipping.

Demonstrates the Section 3.5 debug features plus the bit-level plumbing
underneath: tracing nets from the configuration bits alone, verifying
bit/state coherence, and moving a design between devices as a bitstream.
Run::

    python examples/debug_readback.py
"""

from repro import JRouter, Pin, wires
from repro.debug import BoardScope, export_netlist, netlist_stats, replay_netlist
from repro.jbits import apply_bitstream, decode_pips, write_bitstream


def main() -> None:
    router = JRouter(part="XCV50")

    # a few nets to look at
    src_a = Pin(5, 7, wires.S1_YQ)
    router.route(src_a, [Pin(6, 8, wires.S0F[3]), Pin(9, 12, wires.S0G[1])])
    src_b = Pin(2, 2, wires.S0_X)
    router.route(src_b, Pin(12, 20, wires.S1F[1]))

    scope = BoardScope(router.device, router.jbits)
    print("summary:", scope.summary())

    print("\nnets on the device:")
    for trace in scope.nets():
        print(trace.describe(router.device))
        print()

    # the same net, reconstructed purely from configuration bits
    canon = router.device.resolve(5, 7, wires.S1_YQ)
    bit_trace = scope.trace_from_bitstream(canon)
    print(f"bitstream-derived trace: {len(bit_trace.pips)} PIPs, "
          f"{len(bit_trace.sinks)} sinks — matches state: "
          f"{sorted(bit_trace.sinks) == sorted(router.trace(src_a).sinks)}")

    print("\nwire report:")
    print(scope.wire_report(5, 8, wires.SINGLE_W[5]))

    # ship the design to a second device as a full bitstream
    stream = write_bitstream(router.jbits.memory)
    other = JRouter(part="XCV50")
    apply_bitstream(stream, other.jbits.memory)
    same = decode_pips(other.jbits.memory) == decode_pips(router.jbits.memory)
    print(f"\nshipped {len(stream):,}-byte bitstream to a second device; "
          f"identical configuration: {same}")

    # netlist export / replay (router-level save & restore)
    netlist = export_netlist(router.device)
    print("netlist:", netlist_stats(netlist))
    third = JRouter(part="XCV50")
    replay_netlist(third, netlist)
    print("replayed netlist; coherent:",
          BoardScope(third.device, third.jbits).crosscheck() == [])


if __name__ == "__main__":
    main()
